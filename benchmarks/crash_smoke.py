"""Crash-smoke drill: SIGKILL a real durable ingest, resume, byte-diff.

The in-process kill/resume fuzz (``tests/property`` ``resumed`` column)
exercises every backend at arbitrary cut points, but it simulates the crash
by cancelling the applier task.  This script is the outside-the-process
complement the CI crash-smoke job runs:

1. generate the 5k-event NDJSON/CSV fixture pair
   (:mod:`benchmarks.gen_stream_fixture`);
2. start a **real** ``repro-crowd ingest --follow --durable`` subprocess
   tailing a growing feed file, and feed it the fixture in small chunks;
3. ``SIGKILL`` the child at a random point while the WAL is growing —
   a genuine crash: no atexit hooks, no flushes, possibly a half-written
   record and a half-applied batch;
4. resume by re-running ``ingest`` over the **full** fixture against the
   same ``--durable`` directory (the CLI's create-or-resume front door) —
   replay restores the acknowledged state, re-fed events are idempotent
   last-write-wins upserts;
5. byte-diff the resumed estimate table against a from-scratch
   ``evaluate --backend dense`` over the paired CSV.

Any divergence — a lost acknowledged batch, a double-applied record, crash
residue parsed as data — shows up as a table diff and a non-zero exit.

``--writers N`` (N > 1) runs the same drill against the multi-writer
session: the child ingests through N consistent-hash partitions, each
appending to its own ``wal-<p>.ndjson`` segment, and the SIGKILL lands
while the segments are growing concurrently — so the resume exercises the
per-segment tail truncation and the k-way merge, not just single-WAL
replay.  The byte-diff acceptance is identical.

Usage::

    PYTHONPATH=src python benchmarks/crash_smoke.py [--seed N] [--events N]
    PYTHONPATH=src python benchmarks/crash_smoke.py --writers 3
"""

from __future__ import annotations

import argparse
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _cli_env() -> dict[str, str]:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _run_cli(args: list[str], output_path: str) -> None:
    with open(output_path, "w", encoding="utf-8") as handle:
        subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            stdout=handle,
            stderr=subprocess.PIPE,
            env=_cli_env(),
            check=True,
            text=True,
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1157,
                        help="controls the feed chunking and the kill point")
    parser.add_argument("--events", type=int, default=5000)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--snapshot-every", type=int, default=5,
                        help="snapshot cadence of the killed session (batches)")
    parser.add_argument("--writers", type=int, default=1,
                        help="ingest partition count of the killed session "
                        "(>1 drills the multi-writer segment layout)")
    args = parser.parse_args(argv)
    rng = random.Random(args.seed)

    with tempfile.TemporaryDirectory(prefix="crash-smoke-") as root:
        ndjson = os.path.join(root, "stream_events.ndjson")
        csv = os.path.join(root, "stream_responses.csv")
        subprocess.run(
            [
                sys.executable,
                os.path.join(REPO_ROOT, "benchmarks", "gen_stream_fixture.py"),
                "--events", str(args.events),
                "--ndjson", ndjson,
                "--csv", csv,
            ],
            env=_cli_env(),
            check=True,
        )
        with open(ndjson, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        print(f"fixture: {len(lines)} events")

        durable_dir = os.path.join(root, "durable")
        feed = os.path.join(root, "feed.ndjson")
        with open(feed, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:50])

        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "ingest", feed,
                "--follow", "--idle-timeout", "120",
                "--batch-size", str(args.batch_size),
                "--durable", durable_dir,
                "--snapshot-every", str(args.snapshot_every),
                "--writers", str(args.writers),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=_cli_env(),
            text=True,
        )
        try:
            # Feed the rest in random chunks, then poll the WAL and kill
            # once it passes a random fraction of the expected full size —
            # mid-stream, mid-batch, possibly mid-snapshot, wherever the
            # scheduler lands.  ~12 WAL bytes per applied event (the
            # compact [w,t,l] encoding plus amortized record overhead).
            kill_fraction = rng.uniform(0.2, 0.8)
            threshold = int(12 * kill_fraction * len(lines))
            offset = 50
            killed = False

            def wal_size() -> int:
                # Sum across the log files of either layout: wal.ndjson
                # single-writer, wal-<p>.ndjson segments multi-writer.
                if not os.path.isdir(durable_dir):
                    return 0
                return sum(
                    os.path.getsize(os.path.join(durable_dir, name))
                    for name in os.listdir(durable_dir)
                    if name.startswith("wal") and name.endswith(".ndjson")
                )

            def kill_child(fed: int) -> None:
                os.kill(child.pid, signal.SIGKILL)
                child.wait()
                print(
                    f"SIGKILL after feeding {fed} events (WAL at "
                    f"{wal_size()} bytes, threshold {threshold}, "
                    f"kill fraction {kill_fraction:.2f})"
                )

            while offset < len(lines):
                step = rng.randint(20, 200)
                with open(feed, "a", encoding="utf-8") as handle:
                    handle.writelines(lines[offset : offset + step])
                offset += step
                time.sleep(0.005)
                if child.poll() is not None:
                    print(child.stderr.read(), file=sys.stderr)
                    print("FAIL: ingest child exited before the kill",
                          file=sys.stderr)
                    return 1
                if wal_size() > threshold:
                    kill_child(offset)
                    killed = True
                    break
            if not killed:
                # Fed everything before the WAL caught up — poll the
                # applier's backlog draining into the log and kill
                # mid-drain (or after it, on a machine fast enough to
                # finish; resume-after-complete must hold too).
                deadline = time.monotonic() + 30
                while (
                    wal_size() <= threshold
                    and child.poll() is None
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                if child.poll() is not None:
                    print(child.stderr.read(), file=sys.stderr)
                    print("FAIL: ingest child exited before the kill",
                          file=sys.stderr)
                    return 1
                kill_child(offset)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup on error
                child.kill()
                child.wait()

        snapshots = sorted(
            name for name in os.listdir(durable_dir) if name.endswith(".snap")
        )
        logs = sorted(
            name
            for name in os.listdir(durable_dir)
            if name.startswith("wal") and name.endswith(".ndjson")
        )
        print(
            f"durable dir after crash: {wal_size()} WAL bytes across "
            f"{len(logs)} log file(s) {logs}, {len(snapshots)} snapshot(s)"
        )

        # Resume over the full fixture: the CLI resumes the directory,
        # replays the WAL delta (merging segments in the multi-writer
        # layout), then re-feeds the file (idempotent).
        resumed_out = os.path.join(root, "resumed.txt")
        batch_out = os.path.join(root, "batch.txt")
        _run_cli(
            [
                "ingest", ndjson,
                "--durable", durable_dir,
                "--writers", str(args.writers),
            ],
            resumed_out,
        )
        _run_cli(["evaluate", csv, "--backend", "dense"], batch_out)

        with open(resumed_out, "r", encoding="utf-8") as handle:
            resumed_table = handle.read()
        with open(batch_out, "r", encoding="utf-8") as handle:
            batch_table = handle.read()
        if resumed_table != batch_table:
            print("FAIL: resumed estimate table differs from batch evaluate",
                  file=sys.stderr)
            sys.stdout.write(resumed_table)
            sys.stdout.write(batch_table)
            return 1
        print("crash smoke: resumed estimates byte-identical to batch evaluate")
        return 0


if __name__ == "__main__":
    sys.exit(main())
