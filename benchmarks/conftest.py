"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one figure (or ablation) of the paper with
reduced repetition counts, prints the same series the figure plots, and
performs light qualitative-shape assertions (who wins, monotonicity,
coverage near the diagonal).  Pass ``--paper-scale`` to run with the paper's
full repetition counts and confidence grid (much slower).
"""

from __future__ import annotations

import pytest

from repro.evaluation.experiments import (
    DEFAULT_CONFIDENCE_GRID,
    PAPER_CONFIDENCE_GRID,
)
from repro.evaluation.reporting import format_experiment


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--paper-scale",
        action="store_true",
        default=False,
        help="run the benchmarks at the paper's full scale "
        "(500 repetitions, 19-point confidence grid)",
    )


@pytest.fixture
def bench_scale(request: pytest.FixtureRequest) -> dict:
    """Repetition counts and confidence grid for the current run mode."""
    if request.config.getoption("--paper-scale"):
        return {
            "confidence_grid": PAPER_CONFIDENCE_GRID,
            "repetitions": 500,
            "kary_repetitions": 100,
            "n_triples": 50,
        }
    return {
        "confidence_grid": DEFAULT_CONFIDENCE_GRID,
        "repetitions": 40,
        "kary_repetitions": 15,
        "n_triples": 12,
    }


def emit(result) -> None:
    """Print a reproduced figure in the paper-comparable table format."""
    print()
    print(format_experiment(result))
