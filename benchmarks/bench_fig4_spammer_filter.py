"""Figure 4: interval accuracy on the real-data stand-ins after spammer pruning.

Same setting as Figure 3, but workers whose disagreement-with-majority
exceeds 0.4 are removed before estimation (Section III-E2).  Expected shape:
accuracy at high confidence levels improves relative to Figure 3 (pruning the
near-spammers removes the agreement-rate singularities that hurt coverage).
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.evaluation.experiments import (
    figure3_real_data_accuracy,
    figure4_spammer_filtered_accuracy,
)


def bench_fig4_spammer_filter(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure4_spammer_filtered_accuracy,
        kwargs={
            "datasets": ("ic", "rte", "tem"),
            "confidence_grid": bench_scale["confidence_grid"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Compare against the unfiltered run (Figure 3) at the top confidence
    # levels, where the paper reports the improvement.
    unfiltered = figure3_real_data_accuracy(
        datasets=("ic", "rte", "tem"),
        confidence_grid=bench_scale["confidence_grid"][-2:],
        seed=7,
    )
    top_confidences = bench_scale["confidence_grid"][-2:]
    improvements = []
    for label in result.sweep.labels:
        filtered_series = result.sweep.series[label]
        unfiltered_series = unfiltered.sweep.series[label]
        for confidence in top_confidences:
            improvements.append(
                filtered_series.y_at(confidence) - unfiltered_series.y_at(confidence)
            )
    mean_improvement = float(np.mean(improvements))
    print(
        f"\nmean accuracy change at the top confidence levels after spammer "
        f"filtering: {mean_improvement:+.3f}"
    )
    assert mean_improvement > -0.05, (
        "spammer filtering should not hurt high-confidence accuracy on average"
    )
