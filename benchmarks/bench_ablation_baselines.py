"""Ablation: point-estimate quality of the paper's method vs EM and majority.

The paper's contribution is the *intervals*, but its point estimates should
be competitive with the classical alternatives.  This bench compares, on
simulated non-regular binary data, the RMSE (against the true error rates)
of:

* the paper's interval centres,
* Dawid-Skene EM error rates,
* the disagreement-with-majority proxy,

plus the interval coverage that only the paper's method provides.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.dawid_skene import dawid_skene
from repro.baselines.majority_vote import majority_disagreement_rates
from repro.core.m_worker import MWorkerEstimator
from repro.evaluation.reporting import format_table
from repro.simulation.binary import simulate_binary_responses
from repro.types import EstimateStatus


def _run_baseline_comparison(
    n_workers: int, n_tasks: int, density: float, confidence: float,
    n_repetitions: int, seed: int,
) -> dict[str, float]:
    rng = np.random.default_rng(seed)
    paper_errors, em_errors, majority_errors = [], [], []
    covered = []
    for _ in range(n_repetitions):
        matrix, true_rates = simulate_binary_responses(
            n_workers, n_tasks, rng, density=density
        )
        estimates = MWorkerEstimator(confidence=confidence).evaluate_all(matrix)
        em_result = dawid_skene(matrix)
        majority = majority_disagreement_rates(matrix)
        for worker in range(n_workers):
            truth = float(true_rates[worker])
            estimate = estimates[worker]
            if estimate.status is not EstimateStatus.DEGENERATE:
                paper_errors.append((estimate.interval.mean - truth) ** 2)
                covered.append(estimate.interval.contains(truth))
            em_errors.append((em_result.worker_error_rate(worker) - truth) ** 2)
            proxy = majority[worker]
            if proxy is not None:
                majority_errors.append((proxy - truth) ** 2)
    return {
        "paper_rmse": float(np.sqrt(np.mean(paper_errors))),
        "em_rmse": float(np.sqrt(np.mean(em_errors))),
        "majority_rmse": float(np.sqrt(np.mean(majority_errors))),
        "paper_coverage": float(np.mean(covered)),
        "confidence": confidence,
    }


def bench_ablation_baselines(benchmark, bench_scale):
    metrics = benchmark.pedantic(
        _run_baseline_comparison,
        kwargs={
            "n_workers": 7,
            "n_tasks": 150,
            "density": 0.8,
            "confidence": 0.8,
            "n_repetitions": max(10, bench_scale["repetitions"] // 2),
            "seed": 29,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("ablation: point-estimate quality and coverage vs baselines "
          "(7 workers, 150 tasks, density 0.8)")
    header = ["method", "RMSE vs true error rate", "coverage @ 0.8"]
    rows = [
        ["paper (interval centres)", f"{metrics['paper_rmse']:.4f}",
         f"{metrics['paper_coverage']:.3f}"],
        ["Dawid-Skene EM", f"{metrics['em_rmse']:.4f}", "n/a (no intervals)"],
        ["majority disagreement", f"{metrics['majority_rmse']:.4f}", "n/a (no intervals)"],
    ]
    print(format_table(header, rows))

    # The paper's contribution is the intervals, not sharper point estimates:
    # its point estimates should be in the same league as the point-only
    # baselines (EM, majority proxy), and its coverage near the nominal level
    # — which is the guarantee the baselines cannot give at all.
    best_baseline_rmse = min(metrics["em_rmse"], metrics["majority_rmse"])
    assert metrics["paper_rmse"] <= best_baseline_rmse * 1.5, (
        "the paper's point estimates should be in the same league as the "
        "point-only baselines"
    )
    assert metrics["paper_coverage"] >= metrics["confidence"] - 0.12, (
        "coverage should stay near the nominal level"
    )
