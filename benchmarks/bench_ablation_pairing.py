"""Ablation: greedy triple selection (Section III-C1) vs random pairing.

The paper argues that pairing the evaluated worker with partners that share
many tasks — and letting the weight optimization down-weight the poor
triples — yields tighter intervals than an arbitrary pairing.  This bench
measures the mean interval size under both strategies on non-regular data
with a per-worker density ramp (so partner choice actually matters).
"""

from __future__ import annotations

import numpy as np

from repro.core.m_worker import MWorkerEstimator
from repro.evaluation.sweeps import SweepResult
from repro.evaluation.reporting import format_table, series_to_rows
from repro.simulation.binary import BinaryWorkerPopulation, sample_error_rates
from repro.simulation.density import per_worker_density_ramp
from repro.types import EstimateStatus


def _mean_size(estimates) -> float:
    sizes = [
        e.interval.size for e in estimates if e.status is not EstimateStatus.DEGENERATE
    ]
    return float(np.mean(sizes)) if sizes else float("nan")


def _run_pairing_ablation(
    n_workers: int, n_tasks: int, confidence: float, n_repetitions: int, seed: int
) -> SweepResult:
    rng = np.random.default_rng(seed)
    densities = per_worker_density_ramp(n_workers)
    sweep = SweepResult(
        name="ablation-pairing",
        x_label="confidence level",
        y_label="mean interval size",
    )
    greedy_sizes = []
    random_sizes = []
    for _ in range(n_repetitions):
        population = BinaryWorkerPopulation(
            error_rates=sample_error_rates(n_workers, rng)
        )
        matrix = population.generate(n_tasks, rng, densities=densities)
        greedy = MWorkerEstimator(confidence=confidence, pairing_strategy="greedy")
        random_strategy = MWorkerEstimator(
            confidence=confidence, pairing_strategy="random", rng=rng
        )
        greedy_sizes.append(_mean_size(greedy.evaluate_all(matrix)))
        random_sizes.append(_mean_size(random_strategy.evaluate_all(matrix)))
    sweep.add_point("greedy pairing", confidence, float(np.nanmean(greedy_sizes)))
    sweep.add_point("random pairing", confidence, float(np.nanmean(random_sizes)))
    return sweep


def bench_ablation_pairing(benchmark, bench_scale):
    confidence = 0.8
    sweep = benchmark.pedantic(
        _run_pairing_ablation,
        kwargs={
            "n_workers": 9,
            "n_tasks": 100,
            "confidence": confidence,
            "n_repetitions": bench_scale["repetitions"],
            "seed": 23,
        },
        rounds=1,
        iterations=1,
    )
    header, rows = series_to_rows(sweep)
    print()
    print("ablation: greedy vs random triple pairing (9 workers, 100 tasks, density ramp)")
    print(format_table(header, rows))

    greedy_size = sweep.series["greedy pairing"].y_at(confidence)
    random_size = sweep.series["random pairing"].y_at(confidence)
    print(f"\ngreedy {greedy_size:.4f} vs random {random_size:.4f}")
    # Greedy should not be worse than random by any meaningful margin.
    assert greedy_size <= random_size * 1.05, (
        "greedy pairing should be at least as tight as random pairing"
    )
