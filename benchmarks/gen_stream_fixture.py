"""Generate the paired NDJSON / CSV fixture for the stream-smoke gate.

Simulates one binary response matrix, writes its responses twice — as a
shuffled newline-JSON event stream (what ``repro-crowd ingest`` consumes)
and as the response CSV (what ``repro-crowd evaluate`` consumes) — so CI
can diff the two commands' estimate tables byte for byte.  The shuffle is
the point: the streamed order is *not* the CSV order, so a clean diff
certifies order-independence of the final estimates, not just a replay.

Usage::

    PYTHONPATH=src python benchmarks/gen_stream_fixture.py \
        --events 5000 --ndjson events.ndjson --csv responses.csv
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.data.loaders import save_response_matrix_csv
from repro.simulation.binary import simulate_binary_responses


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=5000,
                        help="approximate event count (default 5000)")
    parser.add_argument("--workers", type=int, default=25)
    parser.add_argument("--seed", type=int, default=20150413)
    parser.add_argument("--density", type=float, default=0.75)
    parser.add_argument("--ndjson", default="stream_events.ndjson")
    parser.add_argument("--csv", default="stream_responses.csv")
    args = parser.parse_args(argv)

    # tasks sized so workers x tasks x density ~ the requested event count.
    n_tasks = max(10, int(round(args.events / (args.workers * args.density))))
    rng = np.random.default_rng(args.seed)
    matrix, _ = simulate_binary_responses(
        args.workers, n_tasks, rng, density=args.density
    )
    records = list(matrix.iter_responses())
    rng.shuffle(records)
    with open(args.ndjson, "w", encoding="utf-8") as handle:
        for worker, task, label in records:
            handle.write(
                json.dumps({"worker": worker, "task": task, "label": label}) + "\n"
            )
    save_response_matrix_csv(matrix, args.csv)
    print(
        f"wrote {len(records)} events ({args.workers} workers x {n_tasks} "
        f"tasks) to {args.ndjson} and {args.csv}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
