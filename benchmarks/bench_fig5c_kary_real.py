"""Figure 5(c): k-ary interval accuracy on the MOOC / WSD / WS stand-ins.

Paper setting: random worker triples with at least t tasks in common
(t = 60/100/30 on the originals; scaled to the stand-ins' overlap structure
here), 50 triples, gold-derived confusion matrices as the truth.  Expected
shape: accuracy near the diagonal, somewhat conservative at low confidence,
approaching the ideal line at high confidence.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure5c_kary_real_data


def bench_fig5c_kary_real(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure5c_kary_real_data,
        kwargs={
            "datasets": ("mooc", "wsd", "ws"),
            "confidence_grid": bench_scale["confidence_grid"],
            "n_triples": bench_scale["n_triples"],
            "seed": 17,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    top_confidence = bench_scale["confidence_grid"][-1]
    low_confidence = bench_scale["confidence_grid"][0]
    for label, series in result.sweep.series.items():
        # Conservative (at or above nominal) at the low end of the grid.
        assert series.y_at(low_confidence) >= low_confidence - 0.05, (
            f"{label}: accuracy at c={low_confidence} fell clearly below nominal"
        )
        # Not catastrophically under-covering at the top of the grid.
        assert series.y_at(top_confidence) >= top_confidence - 0.2, (
            f"{label}: accuracy at c={top_confidence} is too far below nominal"
        )
