"""Figure 2(c): interval size with Lemma-5 optimal weights vs uniform weights.

Paper setting: m = 7 workers, n = 100 tasks, per-worker density ramp
d_i = (0.5 i + m - i) / m so triples differ strongly in quality.  Expected
shape: optimized weights give clearly smaller intervals than uniform weights
at every confidence level (about 2x in the paper at c = 0.5).
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure2c_weight_optimization


def bench_fig2c_weights(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure2c_weight_optimization,
        kwargs={
            "n_workers": 7,
            "n_tasks": 100,
            "confidence_grid": bench_scale["confidence_grid"],
            "n_repetitions": bench_scale["repetitions"],
            "seed": 3,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    optimized = result.sweep.series["with optimization"]
    uniform = result.sweep.series["no optimization"]
    for (confidence, size_opt), (_, size_uni) in zip(optimized.points, uniform.points):
        assert size_opt < size_uni, (
            f"optimized weights should give tighter intervals at c={confidence}: "
            f"{size_opt:.3f} vs {size_uni:.3f}"
        )
    # At mid confidence the gap is substantial (paper reports roughly 2x).
    mid = 0.5 if 0.5 in [round(c, 2) for c in optimized.xs] else optimized.xs[len(optimized.xs) // 2]
    assert uniform.y_at(mid) > 1.3 * optimized.y_at(mid), (
        "weight optimization should reduce the interval size substantially "
        f"at c={mid}: {optimized.y_at(mid):.3f} vs {uniform.y_at(mid):.3f}"
    )
