"""Figure 2(b): interval size vs data density at c = 0.8.

Paper setting: (m, n) in {(7, 100), (3, 300), (7, 300)}, densities 0.5-0.95.
Expected shape: interval size decreases as density increases (roughly
proportional to 1/density), and larger (m, n) gives smaller intervals.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure2b_density


def bench_fig2b_density(benchmark, bench_scale):
    densities = (0.5, 0.6, 0.7, 0.8, 0.9)
    result = benchmark.pedantic(
        figure2b_density,
        kwargs={
            "configurations": ((7, 100), (3, 300), (7, 300)),
            "densities": densities,
            "confidence": 0.8,
            "n_repetitions": bench_scale["repetitions"],
            "seed": 2,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Qualitative shape: lowest-density intervals are the widest, and the
    # size trend over the density grid is decreasing end-to-end.
    for label, series in result.sweep.series.items():
        size_low = series.y_at(densities[0])
        size_high = series.y_at(densities[-1])
        assert size_high < size_low, (
            f"{label}: interval size should shrink with density "
            f"({size_low:.3f} at d={densities[0]} vs {size_high:.3f} at d={densities[-1]})"
        )
    # The best-provisioned configuration (7 workers, 300 tasks) is tightest.
    for density in densities:
        best = result.sweep.series["7 workers, 300 tasks"].y_at(density)
        small = result.sweep.series["7 workers, 100 tasks"].y_at(density)
        assert best < small, (
            f"7x300 should beat 7x100 at density {density}: {best:.3f} vs {small:.3f}"
        )
