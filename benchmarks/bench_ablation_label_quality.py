"""Ablation: label-aggregation quality using the paper's worker estimates.

The paper's pitch is that better worker assessment improves downstream crowd
algorithms.  This bench measures the most direct downstream effect — task
label accuracy — for four aggregators on the same simulated non-regular data:

* plain majority vote,
* Karger-Oh-Shah message passing,
* Dawid-Skene EM posteriors,
* quality-weighted voting using the paper's interval estimates
  (:func:`repro.core.task_inference.infer_binary_labels`).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.dawid_skene import dawid_skene
from repro.baselines.karger_oh_shah import karger_oh_shah
from repro.baselines.majority_vote import majority_vote_labels
from repro.core.estimator import evaluate_workers
from repro.core.task_inference import infer_binary_labels, label_accuracy
from repro.evaluation.reporting import format_table
from repro.simulation.binary import BinaryWorkerPopulation, sample_error_rates


def _run_label_quality(
    n_workers: int, n_tasks: int, density: float, n_repetitions: int, seed: int
) -> dict[str, float]:
    rng = np.random.default_rng(seed)
    accuracies: dict[str, list[float]] = {
        "majority vote": [],
        "Karger-Oh-Shah": [],
        "Dawid-Skene EM": [],
        "paper estimates + weighted vote": [],
    }
    # A wide quality spread (including near-spammers) is where weighting matters.
    palette = (0.05, 0.1, 0.2, 0.35, 0.45)
    for _ in range(n_repetitions):
        population = BinaryWorkerPopulation(
            error_rates=sample_error_rates(n_workers, rng, palette=palette)
        )
        matrix = population.generate(n_tasks, rng, densities=density)
        accuracies["majority vote"].append(
            label_accuracy(matrix, majority_vote_labels(matrix))
        )
        accuracies["Karger-Oh-Shah"].append(
            label_accuracy(matrix, karger_oh_shah(matrix).labels)
        )
        accuracies["Dawid-Skene EM"].append(
            label_accuracy(matrix, dawid_skene(matrix).most_likely_labels())
        )
        estimates = evaluate_workers(matrix, confidence=0.9)
        accuracies["paper estimates + weighted vote"].append(
            label_accuracy(matrix, infer_binary_labels(matrix, estimates))
        )
    return {name: float(np.mean(values)) for name, values in accuracies.items()}


def bench_ablation_label_quality(benchmark, bench_scale):
    results = benchmark.pedantic(
        _run_label_quality,
        kwargs={
            "n_workers": 7,
            "n_tasks": 120,
            "density": 0.8,
            "n_repetitions": max(8, bench_scale["repetitions"] // 4),
            "seed": 37,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("ablation: task-label accuracy by aggregator "
          "(7 workers incl. near-spammers, 120 tasks, density 0.8)")
    header = ["aggregator", "label accuracy"]
    rows = [[name, f"{accuracy:.4f}"] for name, accuracy in results.items()]
    print(format_table(header, rows))

    weighted = results["paper estimates + weighted vote"]
    majority = results["majority vote"]
    assert weighted >= majority - 0.01, (
        "quality-weighted voting should not be worse than plain majority vote"
    )
