"""Scaling benchmark: the batch-evaluation execution paths, head to head.

Times ``MWorkerEstimator.evaluate_all`` on a non-regular binary matrix under
every execution path, verifies all paths return bit-identical intervals, and
reports the speedups:

* ``dict``          — the original dict-of-dicts statistics (pure Python);
* ``dense_scalar``  — vectorized statistics, sequential per-triple loop
  (the fast path introduced by PR 1);
* ``dense_batched`` — vectorized statistics plus the batched per-triple
  stage (all of a worker's triples in one NumPy pass);
* ``sharded``       — the batched path partitioned across a process pool
  over shared-memory statistics arrays (``--shards``; wall-clock wins need
  actual cores, so this mainly tracks the orchestration overhead on CI).

The headline configuration (200 workers x 2000 tasks, density 0.6) is where
the per-worker Python overhead dominates once the statistics are dense.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py          # full
    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py --smoke  # CI

The results are written to ``BENCH_agreement.json`` (override with
``--output``) so the performance trajectory can be tracked across PRs; the
pre-existing ``legacy_seconds``/``dense_seconds``/``speedup`` keys are kept
(``dense_seconds`` now reports the best in-process dense path).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.core.m_worker import MWorkerEstimator
from repro.simulation.binary import simulate_binary_responses


def _identical(a, b) -> bool:
    return (
        a.interval.mean == b.interval.mean
        and a.interval.lower == b.interval.lower
        and a.interval.upper == b.interval.upper
        and a.interval.deviation == b.interval.deviation
        and a.weights == b.weights
        and a.status is b.status
    )


def _paths(shards: int, skip_dict: bool) -> dict[str, dict]:
    paths = {}
    if not skip_dict:
        paths["dict"] = {"backend": "dict"}
    paths["dense_scalar"] = {"backend": "dense", "batch_triples": False}
    paths["dense_batched"] = {"backend": "dense", "batch_triples": True}
    if shards > 1:
        paths["sharded"] = {
            "backend": "dense",
            "batch_triples": True,
            "shards": shards,
        }
    return paths


def run(
    n_workers: int,
    n_tasks: int,
    density: float,
    seed: int,
    confidence: float = 0.95,
    shards: int = 2,
    skip_dict: bool = False,
    repeats: int = 3,
) -> dict:
    """Time every execution path on one matrix and check bit-identity."""
    rng = np.random.default_rng(seed)
    matrix, _ = simulate_binary_responses(n_workers, n_tasks, rng, density=density)
    print(
        f"matrix: {n_workers} workers x {n_tasks} tasks, "
        f"{matrix.n_responses} responses (density {matrix.density:.2f})"
    )

    seconds: dict[str, float] = {}
    estimates: dict[str, list] = {}
    for name, config in _paths(shards, skip_dict).items():
        # Best-of-N timing (single pass for the very slow dict reference):
        # the minimum is the standard low-noise estimator on shared hosts.
        repetitions = 1 if name in ("dict", "sharded") else repeats
        best = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            estimates[name] = MWorkerEstimator(
                confidence=confidence, **config
            ).evaluate_all(matrix)
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        print(f"{name:>14}:  evaluate_all in {seconds[name]:8.2f}s")

    reference_name = next(iter(estimates))
    reference = estimates[reference_name]
    identical = all(
        len(result) == len(reference)
        and all(_identical(a, b) for a, b in zip(reference, result))
        for result in estimates.values()
    )
    batched_speedup = (
        seconds["dense_scalar"] / seconds["dense_batched"]
        if seconds["dense_batched"] > 0
        else float("inf")
    )
    print(
        f"batched-triple speedup over dense_scalar: {batched_speedup:.1f}x   "
        f"bit-identical across all paths: {identical}"
    )
    result = {
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "density": density,
        "n_responses": matrix.n_responses,
        "seed": seed,
        "path_seconds": seconds,
        "batched_speedup": batched_speedup,
        "bit_identical": identical,
        # Trajectory-compatible keys (PR 1 recorded dict vs best-dense).
        "dense_seconds": seconds["dense_batched"],
    }
    if "dict" in seconds:
        result["legacy_seconds"] = seconds["dict"]
        result["speedup"] = (
            seconds["dict"] / seconds["dense_batched"]
            if seconds["dense_batched"] > 0
            else float("inf")
        )
        print(f"overall dict -> dense_batched speedup: {result['speedup']:.1f}x")
    return result


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=200)
    parser.add_argument("--tasks", type=int, default=2000)
    parser.add_argument("--density", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the sharded path (<=1 skips it)",
    )
    parser.add_argument(
        "--skip-dict",
        action="store_true",
        help="skip the (very slow) dict-of-dicts reference timing",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per dense path; the minimum is reported",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI (overrides --workers/--tasks)",
    )
    parser.add_argument("--output", default="BENCH_agreement.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the dict -> dense_batched speedup reaches "
        "this factor",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the dense_scalar -> dense_batched speedup "
        "reaches this factor",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers, args.tasks = 40, 400

    result = run(
        args.workers,
        args.tasks,
        args.density,
        args.seed,
        shards=args.shards,
        skip_dict=args.skip_dict,
        repeats=args.repeats,
    )
    result["python"] = platform.python_version()
    result["smoke"] = args.smoke
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["bit_identical"]:
        print("FAIL: execution paths disagree", file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        if "speedup" not in result:
            print("FAIL: --min-speedup requires the dict timing", file=sys.stderr)
            return 1
        if result["speedup"] < args.min_speedup:
            print(
                f"FAIL: speedup {result['speedup']:.1f}x below required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
    if (
        args.min_batched_speedup is not None
        and result["batched_speedup"] < args.min_batched_speedup
    ):
        print(
            f"FAIL: batched speedup {result['batched_speedup']:.1f}x below "
            f"required {args.min_batched_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
