"""Scaling benchmark: vectorized vs dict-of-dicts agreement statistics.

Times ``MWorkerEstimator.evaluate_all`` on a non-regular binary matrix with
both statistics backends, verifies the intervals are bit-identical, and
reports the speedup.  The headline configuration (200 workers x 2000 tasks,
density 0.6) is where the dict-of-dicts path's O(m^3) Lemma-4 assembly and
O(m^2 n) set intersections dominate; the dense backend replaces both with
matrix products.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py          # full
    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py --smoke  # CI

The results are written to ``BENCH_agreement.json`` (override with
``--output``) so the performance trajectory can be tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.core.m_worker import MWorkerEstimator
from repro.simulation.binary import simulate_binary_responses


def _identical(a, b) -> bool:
    return (
        a.interval.mean == b.interval.mean
        and a.interval.lower == b.interval.lower
        and a.interval.upper == b.interval.upper
        and a.interval.deviation == b.interval.deviation
        and a.weights == b.weights
        and a.status is b.status
    )


def run(
    n_workers: int,
    n_tasks: int,
    density: float,
    seed: int,
    confidence: float = 0.95,
) -> dict:
    """Time both backends on one matrix and check bit-identity."""
    rng = np.random.default_rng(seed)
    matrix, _ = simulate_binary_responses(n_workers, n_tasks, rng, density=density)
    print(
        f"matrix: {n_workers} workers x {n_tasks} tasks, "
        f"{matrix.n_responses} responses (density {matrix.density:.2f})"
    )

    start = time.perf_counter()
    dense = MWorkerEstimator(confidence=confidence, backend="dense").evaluate_all(
        matrix
    )
    dense_seconds = time.perf_counter() - start
    print(f"dense backend:  evaluate_all in {dense_seconds:8.2f}s")

    start = time.perf_counter()
    legacy = MWorkerEstimator(confidence=confidence, backend="dict").evaluate_all(
        matrix
    )
    legacy_seconds = time.perf_counter() - start
    print(f"dict  backend:  evaluate_all in {legacy_seconds:8.2f}s")

    identical = all(_identical(a, b) for a, b in zip(legacy, dense))
    speedup = legacy_seconds / dense_seconds if dense_seconds > 0 else float("inf")
    print(f"speedup: {speedup:.1f}x   bit-identical intervals: {identical}")
    return {
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "density": density,
        "n_responses": matrix.n_responses,
        "seed": seed,
        "legacy_seconds": legacy_seconds,
        "dense_seconds": dense_seconds,
        "speedup": speedup,
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=200)
    parser.add_argument("--tasks", type=int, default=2000)
    parser.add_argument("--density", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI (overrides --workers/--tasks)",
    )
    parser.add_argument("--output", default="BENCH_agreement.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the speedup reaches this factor",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers, args.tasks = 40, 400

    result = run(args.workers, args.tasks, args.density, args.seed)
    result["python"] = platform.python_version()
    result["smoke"] = args.smoke
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if not result["bit_identical"]:
        print("FAIL: backends disagree", file=sys.stderr)
        return 1
    if args.min_speedup is not None and result["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {result['speedup']:.1f}x below required "
            f"{args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
