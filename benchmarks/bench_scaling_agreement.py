"""Scaling benchmark: the batch-evaluation execution paths, head to head.

Times ``MWorkerEstimator.evaluate_all`` on a non-regular binary matrix under
every execution path, verifies all paths return bit-identical intervals, and
reports the speedups:

* ``dict``           — the original dict-of-dicts statistics (pure Python);
* ``dense_scalar``   — vectorized statistics, sequential per-triple loop
  (the fast path introduced by PR 1);
* ``dense_batched``  — vectorized statistics plus the batched per-triple
  stage (all of a worker's triples in one NumPy pass; the PR 2 path);
* ``batched_lemma4`` — the batched triple stage plus the grouped Lemma-4/5
  aggregation (triple-count tensor, stacked covariance grids, one batched
  solve per group);
* ``sharded``        — the fully batched path partitioned across the
  reusable process pool over shared-memory statistics arrays (``--shards``;
  wall-clock wins need actual cores, so this mainly tracks the
  orchestration overhead on CI — the repeated passes time the steady state
  with the pool already spawned).

``--shard-sweep`` additionally times the execution *tiers* (serial /
``thread:2`` / ``process:2`` / ``"auto"``) head to head on the headline
matrix, records what the cost model resolved ``"auto"`` to on this host,
verifies bit-identity across tiers, and appends its own trajectory entry;
``--min-shard-speedup`` turns the serial -> ``"auto"`` ratio into a gate
(vacuously passing on hosts where ``"auto"`` resolves serial).

The headline configuration (200 workers x 2000 tasks, density 0.6) is where
the per-worker Python overhead dominates once the statistics are dense.

``--sparse-regime`` additionally times the *sparse* workload (default 500
workers x 20000 tasks at 2% fill — the regime real crowdsourcing matrices
live in) under the fully batched ``dense``, ``sparse`` (scipy CSR pair
counts + fill-restricted triple grids) and ``bitset`` (packed-rows
low-memory) backends, verifies they are bit-identical, and appends its own
entry to the trajectory.  The dict reference is always skipped there (it is
minutes-slow at this size; the differential test suite pins the
backend-equality contract on small matrices instead).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py          # full
    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py --smoke  # CI
    PYTHONPATH=src python benchmarks/bench_scaling_agreement.py \
        --sparse-regime                       # + the 500x20000 @ 2% scenario

The results are written to ``BENCH_agreement.json`` (override with
``--output``) and *appended* to the file's dated ``trajectory`` list, so the
performance trend is tracked across commits; a trend gate compares the new
run's fully-batched timing against the most recent comparable trajectory
entry and prints a ``PERF WARNING`` when it regresses beyond the tolerance
(``--trend-tolerance``).  The gate is warn-only by default; ``--trend-fail``
promotes it to failing (the CI ``bench-gate`` job runs that mode now that
the committed trajectory has accumulated baseline entries).  The
pre-existing ``legacy_seconds``/
``dense_seconds``/``speedup`` keys are kept (``dense_seconds`` reports the
best in-process dense path).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

import numpy as np

from repro.core.m_worker import MWorkerEstimator
from repro.simulation.binary import simulate_binary_responses

#: The headline path of the current PR; trajectory entries and the trend
#: gate key off it (falling back to ``dense_batched`` for older entries).
HEADLINE_PATH = "batched_lemma4"


def _identical(a, b) -> bool:
    return (
        a.interval.mean == b.interval.mean
        and a.interval.lower == b.interval.lower
        and a.interval.upper == b.interval.upper
        and a.interval.deviation == b.interval.deviation
        and a.weights == b.weights
        and a.status is b.status
    )


def _paths(shards: int, skip_dict: bool) -> dict[str, dict]:
    paths = {}
    if not skip_dict:
        paths["dict"] = {"backend": "dict"}
    paths["dense_scalar"] = {
        "backend": "dense", "batch_triples": False, "batch_lemma4": False,
    }
    paths["dense_batched"] = {
        "backend": "dense", "batch_triples": True, "batch_lemma4": False,
    }
    paths["batched_lemma4"] = {
        "backend": "dense", "batch_triples": True, "batch_lemma4": True,
    }
    if shards > 1:
        paths["sharded"] = {
            "backend": "dense",
            "batch_triples": True,
            "batch_lemma4": True,
            "shards": shards,
        }
    return paths


def run(
    n_workers: int,
    n_tasks: int,
    density: float,
    seed: int,
    confidence: float = 0.95,
    shards: int = 2,
    skip_dict: bool = False,
    repeats: int = 3,
) -> dict:
    """Time every execution path on one matrix and check bit-identity."""
    rng = np.random.default_rng(seed)
    matrix, _ = simulate_binary_responses(n_workers, n_tasks, rng, density=density)
    print(
        f"matrix: {n_workers} workers x {n_tasks} tasks, "
        f"{matrix.n_responses} responses (density {matrix.density:.2f})"
    )

    seconds: dict[str, float] = {}
    estimates: dict[str, list] = {}
    for name, config in _paths(shards, skip_dict).items():
        # Best-of-N timing (single pass for the very slow dict reference):
        # the minimum is the standard low-noise estimator on shared hosts.
        # The sharded path gets the full repeats now that the executor
        # caches its pool — later passes time the steady state, which is
        # exactly what the reusable-executor refactor is meant to improve.
        repetitions = 1 if name == "dict" else repeats
        best = float("inf")
        for _ in range(repetitions):
            start = time.perf_counter()
            estimates[name] = MWorkerEstimator(
                confidence=confidence, **config
            ).evaluate_all(matrix)
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        print(f"{name:>14}:  evaluate_all in {seconds[name]:8.2f}s")

    reference_name = next(iter(estimates))
    reference = estimates[reference_name]
    identical = all(
        len(result) == len(reference)
        and all(_identical(a, b) for a, b in zip(reference, result))
        for result in estimates.values()
    )
    batched_speedup = (
        seconds["dense_scalar"] / seconds["dense_batched"]
        if seconds["dense_batched"] > 0
        else float("inf")
    )
    lemma4_speedup = (
        seconds["dense_batched"] / seconds[HEADLINE_PATH]
        if seconds[HEADLINE_PATH] > 0
        else float("inf")
    )
    print(
        f"batched-triple speedup over dense_scalar: {batched_speedup:.1f}x   "
        f"grouped-Lemma-4 speedup over dense_batched: {lemma4_speedup:.2f}x   "
        f"bit-identical across all paths: {identical}"
    )
    result = {
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "density": density,
        "n_responses": matrix.n_responses,
        "seed": seed,
        "path_seconds": seconds,
        "batched_speedup": batched_speedup,
        "lemma4_speedup": lemma4_speedup,
        "bit_identical": identical,
        # Trajectory-compatible keys (PR 1 recorded dict vs best-dense).
        "dense_seconds": seconds[HEADLINE_PATH],
    }
    if "dict" in seconds:
        result["legacy_seconds"] = seconds["dict"]
        result["speedup"] = (
            seconds["dict"] / seconds[HEADLINE_PATH]
            if seconds[HEADLINE_PATH] > 0
            else float("inf")
        )
        print(f"overall dict -> {HEADLINE_PATH} speedup: {result['speedup']:.1f}x")
    return result


def run_sparse_regime(
    n_workers: int,
    n_tasks: int,
    density: float,
    seed: int,
    confidence: float = 0.95,
    repeats: int = 1,
) -> dict:
    """Time the sparse-regime backends on one low-fill matrix.

    The dense path is included as the baseline the sparse/bitset backends
    are meant to beat here; the dict reference is skipped (minutes-slow).
    When scipy is unavailable the sparse path is dropped and the entry
    records only dense vs bitset.
    """
    from repro.data.sparse_backend import scipy_available

    rng = np.random.default_rng(seed)
    matrix, _ = simulate_binary_responses(n_workers, n_tasks, rng, density=density)
    print(
        f"sparse-regime matrix: {n_workers} workers x {n_tasks} tasks, "
        f"{matrix.n_responses} responses (density {matrix.density:.3f})"
    )
    batched = {"batch_triples": True, "batch_lemma4": True}
    paths: dict[str, dict] = {"dense_batched": {"backend": "dense", **batched}}
    if scipy_available():
        paths["sparse"] = {"backend": "sparse", **batched}
    else:
        print("scipy unavailable: skipping the sparse path (bitset still runs)")
    paths["bitset"] = {"backend": "bitset", **batched}

    seconds: dict[str, float] = {}
    estimates: dict[str, list] = {}
    for name, config in paths.items():
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            estimates[name] = MWorkerEstimator(
                confidence=confidence, **config
            ).evaluate_all(matrix)
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        print(f"{name:>14}:  evaluate_all in {seconds[name]:8.2f}s")

    reference = next(iter(estimates.values()))
    identical = all(
        len(result) == len(reference)
        and all(_identical(a, b) for a, b in zip(reference, result))
        for result in estimates.values()
    )
    result = {
        "scenario": "sparse-regime",
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "density": density,
        "n_responses": matrix.n_responses,
        "seed": seed,
        "path_seconds": seconds,
        "bit_identical": identical,
    }
    for name in ("sparse", "bitset"):
        if name in seconds and seconds[name] > 0:
            speedup = seconds["dense_batched"] / seconds[name]
            result[f"{name}_speedup"] = speedup
            print(f"dense -> {name} speedup on the sparse regime: {speedup:.2f}x")
    print(f"bit-identical across sparse-regime paths: {identical}")
    return result


def run_shard_sweep(
    n_workers: int,
    n_tasks: int,
    density: float,
    seed: int,
    confidence: float = 0.95,
    repeats: int = 3,
) -> dict:
    """Time the execution tiers head to head on the headline matrix.

    Runs the fully batched dense path serially and under every explicit
    tier spec plus ``"auto"``, checks bit-identity, and records what the
    cost model resolved ``"auto"`` to on this host.  On single-core CI
    hosts ``"auto"`` resolves serial (documented in the cost model), so the
    ``--min-shard-speedup`` gate only binds where parallel hardware exists.
    """
    from repro.core.parallel import auto_shard_choice, available_cores

    rng = np.random.default_rng(seed)
    matrix, _ = simulate_binary_responses(n_workers, n_tasks, rng, density=density)
    cores = available_cores()
    auto_tier, auto_shards = auto_shard_choice(
        matrix.n_workers, matrix.n_tasks, matrix.n_responses
    )
    print(
        f"shard-sweep matrix: {n_workers} workers x {n_tasks} tasks, "
        f"{matrix.n_responses} responses; {cores} usable cores; "
        f'"auto" resolves to {auto_tier}:{auto_shards}'
    )

    batched = {"backend": "dense", "batch_triples": True, "batch_lemma4": True}
    tiers: dict[str, int | str] = {
        "serial": 1,
        "thread:2": "thread:2",
        "process:2": "process:2",
        "auto": "auto",
    }
    seconds: dict[str, float] = {}
    estimates: dict[str, list] = {}
    for name, spec in tiers.items():
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            estimates[name] = MWorkerEstimator(
                confidence=confidence, shards=spec, **batched
            ).evaluate_all(matrix)
            best = min(best, time.perf_counter() - start)
        seconds[name] = best
        print(f"{name:>14}:  evaluate_all in {seconds[name]:8.2f}s")

    reference = estimates["serial"]
    identical = all(
        len(result) == len(reference)
        and all(_identical(a, b) for a, b in zip(reference, result))
        for result in estimates.values()
    )
    shard_speedup = (
        seconds["serial"] / seconds["auto"] if seconds["auto"] > 0 else float("inf")
    )
    print(
        f'serial -> "auto" speedup: {shard_speedup:.2f}x   '
        f"bit-identical across all tiers: {identical}"
    )
    return {
        "scenario": "shard-sweep",
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "density": density,
        "n_responses": matrix.n_responses,
        "seed": seed,
        "path_seconds": seconds,
        "cores": cores,
        "auto_tier": auto_tier,
        "auto_shards": auto_shards,
        "shard_speedup": shard_speedup,
        "bit_identical": identical,
    }


def _watched_path(entry: dict) -> str | None:
    """Which path a result/trajectory entry is trend-tracked on.

    Headline entries are tracked on the fully-batched dense path;
    sparse-regime entries on the sparse (or, scipy-less, bitset) path —
    the backend the scenario exists to keep fast; shard-sweep entries on
    the ``"auto"`` tier the cost model picked.
    """
    path_seconds = entry.get("path_seconds", {})
    if entry.get("scenario") == "sparse-regime":
        keys = ("sparse", "bitset", "dense_batched")
    elif entry.get("scenario") == "shard-sweep":
        keys = ("auto", "serial")
    else:
        keys = (HEADLINE_PATH, "dense_batched")
    for key in keys:
        if key in path_seconds:
            return key
    return None


def _headline_seconds(entry: dict) -> float | None:
    """The watched-path timing of one result/trajectory entry."""
    key = _watched_path(entry)
    if key is not None:
        return float(entry["path_seconds"][key])
    if "dense_seconds" in entry:
        return float(entry["dense_seconds"])
    return None


def _comparable(entry: dict, result: dict) -> bool:
    if not (
        entry.get("n_workers") == result["n_workers"]
        and entry.get("n_tasks") == result["n_tasks"]
        and entry.get("density") == result["density"]
        and entry.get("scenario") == result.get("scenario")
    ):
        return False
    # Sparse-regime entries watch whichever of sparse/bitset the
    # environment provides: never trend one backend's timing against the
    # other's just because scipy availability changed between runs.
    # (Headline entries keep the intentional batched-lemma4 -> older
    # dense_batched fallback comparison.)
    if result.get("scenario") == "sparse-regime":
        return _watched_path(entry) == _watched_path(result)
    return True


def load_trajectory(output_path: str, result: dict) -> list[dict]:
    """Previous trajectory entries from the committed benchmark file.

    A pre-trajectory file (PR 1/2 format: one flat result object) is
    adopted as the first entry so the trend has a baseline from day one.
    """
    try:
        with open(output_path, "r", encoding="utf-8") as handle:
            previous = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    trajectory = previous.get("trajectory")
    if trajectory is None:
        legacy = {
            key: value for key, value in previous.items() if key != "trajectory"
        }
        legacy.setdefault("date", "pre-trajectory")
        trajectory = [legacy]
    return list(trajectory)


def check_trend(
    trajectory: list[dict], result: dict, tolerance: float
) -> str | None:
    """Warn-only perf-trend gate: compare against the newest comparable entry.

    Returns the warning message (already printed) when the fully-batched
    timing regressed beyond ``tolerance`` relative to the baseline, else
    None.  Never fails the run — timings on shared CI hosts are noisy; the
    warning makes regressions visible in logs and in the committed file.
    """
    current = _headline_seconds(result)
    if current is None:
        return None
    for entry in reversed(trajectory):
        if not _comparable(entry, result):
            continue
        baseline = _headline_seconds(entry)
        if baseline is None or baseline <= 0:
            continue
        ratio = current / baseline
        if ratio > tolerance:
            message = (
                f"PERF WARNING: {_watched_path(result) or HEADLINE_PATH} path "
                f"took {current:.3f}s vs baseline {baseline:.3f}s "
                f"({ratio:.2f}x, tolerance {tolerance:.2f}x) from "
                f"{entry.get('date', 'unknown date')}"
            )
            print(message, file=sys.stderr)
            return message
        print(
            f"perf trend ok: {current:.3f}s vs baseline {baseline:.3f}s "
            f"({ratio:.2f}x <= {tolerance:.2f}x tolerance)"
        )
        return None
    print("perf trend: no comparable baseline entry yet")
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=200)
    parser.add_argument("--tasks", type=int, default=2000)
    parser.add_argument("--density", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=12345)
    parser.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard count for the sharded path (<=1 skips it)",
    )
    parser.add_argument(
        "--skip-dict",
        action="store_true",
        help="skip the (very slow) dict-of-dicts reference timing",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="repetitions per dense path; the minimum is reported",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small configuration for CI (overrides --workers/--tasks)",
    )
    parser.add_argument(
        "--sparse-regime",
        action="store_true",
        help="also run the low-fill scenario (dense vs sparse vs bitset "
        "backends; appends its own trajectory entry)",
    )
    parser.add_argument(
        "--sparse-workers", type=int, default=500,
        help="worker count for the sparse-regime scenario",
    )
    parser.add_argument(
        "--sparse-tasks", type=int, default=20000,
        help="task count for the sparse-regime scenario",
    )
    parser.add_argument(
        "--sparse-density", type=float, default=0.02,
        help="fill for the sparse-regime scenario",
    )
    parser.add_argument(
        "--shard-sweep",
        action="store_true",
        help="also time the execution tiers (serial / thread:2 / process:2 "
        "/ auto) on the headline matrix and append a shard-sweep "
        "trajectory entry",
    )
    parser.add_argument("--output", default="BENCH_agreement.json")
    parser.add_argument(
        "--min-shard-speedup",
        type=float,
        default=None,
        help='with --shard-sweep: exit non-zero unless the serial -> "auto" '
        'speedup reaches this factor; vacuously passes where "auto" '
        "resolves serial (fewer than two usable cores)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the dict -> dense_batched speedup reaches "
        "this factor",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the dense_scalar -> dense_batched speedup "
        "reaches this factor",
    )
    parser.add_argument(
        "--min-lemma4-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the dense_batched -> batched_lemma4 "
        "speedup reaches this factor",
    )
    parser.add_argument(
        "--trend-tolerance",
        type=float,
        default=1.25,
        help="warn when the fully-batched timing exceeds the last comparable "
        "trajectory entry by more than this factor (fails the run only "
        "with --trend-fail)",
    )
    parser.add_argument(
        "--trend-fail",
        action="store_true",
        help="promote the trend gate to failing: exit non-zero when any "
        "scenario regresses beyond --trend-tolerance (the dedicated CI "
        "bench-gate job runs this; the in-tree default stays warn-only "
        "for local runs)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.workers, args.tasks = 40, 400
        args.sparse_workers, args.sparse_tasks = 60, 1500
        args.sparse_density = max(args.sparse_density, 0.05)

    result = run(
        args.workers,
        args.tasks,
        args.density,
        args.seed,
        shards=args.shards,
        skip_dict=args.skip_dict,
        repeats=args.repeats,
    )
    result["python"] = platform.python_version()
    result["smoke"] = args.smoke
    result["date"] = time.strftime("%Y-%m-%d")

    sparse_result = None
    if args.sparse_regime:
        sparse_result = run_sparse_regime(
            args.sparse_workers,
            args.sparse_tasks,
            args.sparse_density,
            args.seed,
            repeats=args.repeats,
        )
        sparse_result["python"] = result["python"]
        sparse_result["smoke"] = args.smoke
        sparse_result["date"] = result["date"]

    sweep_result = None
    if args.shard_sweep:
        sweep_result = run_shard_sweep(
            args.workers,
            args.tasks,
            args.density,
            args.seed,
            repeats=args.repeats,
        )
        sweep_result["python"] = result["python"]
        sweep_result["smoke"] = args.smoke
        sweep_result["date"] = result["date"]

    trajectory = load_trajectory(args.output, result)
    comparable_pool = [
        entry for entry in trajectory if entry.get("smoke") == args.smoke
    ]
    warning = check_trend(comparable_pool, result, args.trend_tolerance)
    if warning is not None:
        result["trend_warning"] = warning
    if sparse_result is not None:
        # Same warn-only gate for the sparse-regime scenario (its entries
        # are matched by _comparable's scenario key and watched on the
        # sparse/bitset path).
        sparse_warning = check_trend(
            comparable_pool, sparse_result, args.trend_tolerance
        )
        if sparse_warning is not None:
            sparse_result["trend_warning"] = sparse_warning
        result["sparse_regime"] = dict(sparse_result)
    if sweep_result is not None:
        sweep_warning = check_trend(
            comparable_pool, sweep_result, args.trend_tolerance
        )
        if sweep_warning is not None:
            sweep_result["trend_warning"] = sweep_warning
        # Explicit vacuity marker: on a single-core runner "auto" resolves
        # serial, so a --min-shard-speedup gate passes without measuring
        # any sharding at all.  Record that in the result (and trajectory)
        # so a trend reader never mistakes a vacuous pass for a real one.
        sweep_result["vacuous"] = sweep_result["auto_tier"] == "serial"
        result["shard_sweep"] = dict(sweep_result)
    # The extra scenarios get their own trajectory entries; keep the
    # headline entry free of the nested copies.
    trajectory.append(
        {
            key: value
            for key, value in result.items()
            if key not in ("sparse_regime", "shard_sweep")
        }
    )
    if sparse_result is not None:
        trajectory.append(dict(sparse_result))
    if sweep_result is not None:
        trajectory.append(dict(sweep_result))
    result["trajectory"] = trajectory
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} ({len(trajectory)} trajectory entries)")

    if not result["bit_identical"]:
        print("FAIL: execution paths disagree", file=sys.stderr)
        return 1
    if sparse_result is not None and not sparse_result["bit_identical"]:
        print("FAIL: sparse-regime backends disagree", file=sys.stderr)
        return 1
    if sweep_result is not None and not sweep_result["bit_identical"]:
        print("FAIL: execution tiers disagree", file=sys.stderr)
        return 1
    if args.min_shard_speedup is not None:
        if sweep_result is None:
            print(
                "FAIL: --min-shard-speedup requires --shard-sweep",
                file=sys.stderr,
            )
            return 1
        if sweep_result["auto_tier"] == "serial":
            print(
                'shard-speedup gate: "auto" resolved serial on this host '
                f"({sweep_result['cores']} usable cores) — gate passes "
                "vacuously (sharding only engages with parallel hardware)"
            )
            # GitHub Actions annotation so the vacuous pass is visible on
            # the run summary, not just buried in the log and the JSON.
            print(
                "::notice title=shard-speedup gate vacuous::"
                '"auto" resolved serial on a '
                f"{sweep_result['cores']}-core runner; the "
                f"--min-shard-speedup {args.min_shard_speedup:g} gate "
                "measured no sharding (result marked \"vacuous\": true)"
            )
        elif sweep_result["shard_speedup"] < args.min_shard_speedup:
            print(
                f"FAIL: shard speedup {sweep_result['shard_speedup']:.2f}x "
                f"below required {args.min_shard_speedup:.2f}x "
                f"(auto={sweep_result['auto_tier']}:"
                f"{sweep_result['auto_shards']})",
                file=sys.stderr,
            )
            return 1
    if args.trend_fail:
        regressions = [
            message
            for message in (
                result.get("trend_warning"),
                (sparse_result or {}).get("trend_warning"),
                (sweep_result or {}).get("trend_warning"),
            )
            if message
        ]
        if regressions:
            for message in regressions:
                print(f"FAIL (trend gate): {message}", file=sys.stderr)
            return 1
    if args.min_speedup is not None:
        if "speedup" not in result:
            print("FAIL: --min-speedup requires the dict timing", file=sys.stderr)
            return 1
        if result["speedup"] < args.min_speedup:
            print(
                f"FAIL: speedup {result['speedup']:.1f}x below required "
                f"{args.min_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
    if (
        args.min_batched_speedup is not None
        and result["batched_speedup"] < args.min_batched_speedup
    ):
        print(
            f"FAIL: batched speedup {result['batched_speedup']:.1f}x below "
            f"required {args.min_batched_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_lemma4_speedup is not None
        and result["lemma4_speedup"] < args.min_lemma4_speedup
    ):
        print(
            f"FAIL: grouped-Lemma-4 speedup {result['lemma4_speedup']:.2f}x "
            f"below required {args.min_lemma4_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
