"""Ablation: CI-driven firing policy vs point-estimate firing policy.

The paper's operational claim (introduction and conclusion) is that interval-
driven retention decisions avoid firing good workers who were merely unlucky,
while still converging to a good pool.  This bench runs the worker-pool
simulation under both policies and reports final pool quality and the number
of wrongly fired good workers.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.reporting import format_table
from repro.workforce import (
    IntervalFiringPolicy,
    PointEstimateFiringPolicy,
    simulate_worker_pool,
)


def _run_workforce_ablation(n_runs: int, seed: int) -> dict[str, dict[str, float]]:
    threshold = 0.25
    outcomes: dict[str, dict[str, list[float]]] = {
        "interval policy": {"final": [], "fired_good": [], "fired_bad": []},
        "point policy": {"final": [], "fired_good": [], "fired_bad": []},
    }
    for run in range(n_runs):
        for label, policy in (
            ("interval policy", IntervalFiringPolicy(max_error_rate=threshold)),
            ("point policy", PointEstimateFiringPolicy(max_error_rate=threshold)),
        ):
            rng = np.random.default_rng(seed + run)
            result = simulate_worker_pool(
                policy,
                rng,
                n_workers=9,
                tasks_per_round=60,
                n_rounds=5,
                density=0.8,
                confidence=0.9,
                good_threshold=threshold,
            )
            outcomes[label]["final"].append(result.mean_final_error_rate)
            outcomes[label]["fired_good"].append(result.fired_good_workers)
            outcomes[label]["fired_bad"].append(result.fired_bad_workers)
    return {
        label: {metric: float(np.mean(values)) for metric, values in metrics.items()}
        for label, metrics in outcomes.items()
    }


def bench_ablation_workforce(benchmark, bench_scale):
    summary = benchmark.pedantic(
        _run_workforce_ablation,
        kwargs={"n_runs": max(5, bench_scale["repetitions"] // 5), "seed": 31},
        rounds=1,
        iterations=1,
    )
    print()
    print("ablation: interval-driven vs point-estimate firing "
          "(9 workers, 60 tasks/round, 5 rounds, threshold 0.25)")
    header = ["policy", "final pool error rate", "good workers fired", "bad workers fired"]
    rows = [
        [
            label,
            f"{metrics['final']:.3f}",
            f"{metrics['fired_good']:.1f}",
            f"{metrics['fired_bad']:.1f}",
        ]
        for label, metrics in summary.items()
    ]
    print(format_table(header, rows))

    interval_metrics = summary["interval policy"]
    point_metrics = summary["point policy"]
    # The interval policy fires clearly fewer good workers...
    assert interval_metrics["fired_good"] <= point_metrics["fired_good"], (
        "the interval policy should not fire more good workers than the "
        "point-estimate policy"
    )
    # ...while ending with a pool of comparable quality.
    assert interval_metrics["final"] <= point_metrics["final"] + 0.05, (
        "the interval policy's final pool should be of comparable quality"
    )
