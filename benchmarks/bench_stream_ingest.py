"""Streaming ingestion benchmark: singleton vs micro-batched delta applies.

Replays one shuffled response stream (default 10k events, including label
revisions) into an :class:`~repro.core.incremental.IncrementalEvaluator`
three ways and compares cost:

* ``singleton``  — ``add_response`` per event (one derived-cache
  invalidation pass per statistic-changing event);
* ``batched``    — ``apply_batch`` over fixed micro-batches (one
  invalidation pass per batch; grouped per-worker-row storage writes while
  no count matrix is materialized);
* ``session``    — the full asyncio path: ``StreamSession`` submit/flush
  with queue coalescing (what ``repro-crowd ingest`` runs).

All three must produce bit-identical estimates to a from-scratch batch
build over the accumulated matrix — verified on every run — and the batch
paths must cut the backend invalidation events by at least
``--min-invalidation-ratio`` (default 3x, the locked acceptance bound; the
unit suite pins the same bound in ``tests/unit/test_serve.py``).

``--durable-resume`` adds the durability scenario: the same stream is
persisted into two directories — one with periodic snapshots, one pure WAL
— and ``StreamSession.resume`` is timed on each.  Snapshot resume must be
at least ``--min-resume-speedup`` (default 5x) faster than the full WAL
replay on the 5k fixture, both resumes bit-identical to the batch build;
``--trajectory`` appends the result as a ``stream-resume`` entry to the
committed ``BENCH_agreement.json`` trend file.

``--with-shards`` adds the sharded-recompute scenario: the same stream is
ingested twice with periodic mid-stream ``evaluate_all`` calls — once with
serial recomputes (``shards=1``) and once under ``--shard-spec`` (default
``thread:2``, the footprint-ledger path) — and the *ingest-then-evaluate*
wall clock is compared.  Both runs must be bit-identical to the batch
build, and the sharded run must stay within ``--max-shard-overhead`` of
the serial wall clock (sharding may not win on a small CI fixture, but it
must never wreck live-stream evaluation); ``--trajectory`` appends a
``stream-shards`` entry alongside the resume one.

``--with-writers`` adds the multi-writer ingest scenario: the same stream
is persisted into a fresh durable directory once per ``--writer-counts``
entry through ``open_session`` with ``fsync=True`` — overlapping segment
fsyncs across partitions are the lever partitioned ingestion buys — and
the fastest multi-writer wall clock is compared against the single-writer
baseline.  Every count must be bit-identical to the batch build;
``--min-writer-speedup`` gates the speedup, except on single-core runners
where the entry is marked ``vacuous`` and the gate is skipped (the PR 8
convention for parallelism gates).  ``--trajectory`` appends a
``stream-multiwriter`` entry.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_ingest.py          # full
    PYTHONPATH=src python benchmarks/bench_stream_ingest.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time

import numpy as np

from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator
from repro.serve import SessionConfig, open_session
from repro.serve.durable import DurableStore


def make_stream(
    n_events: int, n_workers: int, n_tasks: int, seed: int
) -> list[tuple[int, int, int]]:
    """Random event stream with ~10% label revisions (cells hit twice)."""
    rng = np.random.default_rng(seed)
    workers = rng.integers(0, n_workers, size=n_events)
    tasks = rng.integers(0, n_tasks, size=n_events)
    labels = rng.integers(0, 2, size=n_events)
    return [
        (int(w), int(t), int(label))
        for w, t, label in zip(workers, tasks, labels)
    ]


def _identical(a, b) -> bool:
    return (
        a.interval.mean == b.interval.mean
        and a.interval.lower == b.interval.lower
        and a.interval.upper == b.interval.upper
        and a.interval.deviation == b.interval.deviation
        and a.weights == b.weights
        and a.status is b.status
    )


def run(
    n_events: int,
    n_workers: int,
    n_tasks: int,
    seed: int,
    batch_size: int,
    backend: str = "dense",
) -> dict:
    stream = make_stream(n_events, n_workers, n_tasks, seed)
    print(
        f"stream: {len(stream)} events over {n_workers} workers x "
        f"{n_tasks} tasks ({backend} backend, micro-batch {batch_size})"
    )
    results: dict[str, dict] = {}

    # -- singleton ----------------------------------------------------- #
    evaluator = IncrementalEvaluator(3, 1, backend=backend)
    start = time.perf_counter()
    for event in stream:
        evaluator.add_response(*event)
    seconds = time.perf_counter() - start
    singleton_estimates = evaluator.estimate_all()
    results["singleton"] = {
        "seconds": seconds,
        "invalidations": evaluator._backend.invalidation_events
        if evaluator._backend is not None
        else 0,
    }
    reference_matrix = evaluator.matrix

    # -- batched ------------------------------------------------------- #
    evaluator = IncrementalEvaluator(3, 1, backend=backend)
    start = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        evaluator.apply_batch(stream[offset : offset + batch_size])
    seconds = time.perf_counter() - start
    batched_estimates = evaluator.estimate_all()
    results["batched"] = {
        "seconds": seconds,
        "invalidations": evaluator._backend.invalidation_events
        if evaluator._backend is not None
        else 0,
    }

    # -- session (asyncio queue + applier) ------------------------------ #
    async def run_session():
        async with open_session(
            SessionConfig(backend=backend, max_batch=batch_size)
        ) as session:
            for event in stream:
                await session.submit(*event)
            await session.flush()
            return (
                await session.evaluate_all(),
                sum(
                    record.stats.backend_invalidations
                    for record in session.applied_batches
                ),
                len(session.applied_batches),
            )

    start = time.perf_counter()
    session_estimates, session_invalidations, session_batches = asyncio.run(
        run_session()
    )
    results["session"] = {
        "seconds": time.perf_counter() - start,
        "invalidations": session_invalidations,
        "batches": session_batches,
    }

    # -- bit-identity against a from-scratch batch build ---------------- #
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(backend="dict").evaluate_all(
            reference_matrix
        )
        if estimate.n_tasks > 0
    }
    identical = all(
        set(estimates) == set(reference)
        and all(_identical(estimates[w], reference[w]) for w in reference)
        for estimates in (singleton_estimates, batched_estimates, session_estimates)
    )

    for name, row in results.items():
        rate = n_events / row["seconds"] if row["seconds"] > 0 else float("inf")
        print(
            f"{name:>10}: {row['seconds']:7.3f}s  ({rate:9.0f} events/s, "
            f"{row['invalidations']} invalidation passes)"
        )
    ratio = (
        results["singleton"]["invalidations"] / results["batched"]["invalidations"]
        if results["batched"]["invalidations"]
        else float("inf")
    )
    speedup = (
        results["singleton"]["seconds"] / results["batched"]["seconds"]
        if results["batched"]["seconds"] > 0
        else float("inf")
    )
    print(
        f"invalidation reduction (singleton/batched): {ratio:.1f}x   "
        f"ingest speedup: {speedup:.1f}x   bit-identical: {identical}"
    )
    return {
        "n_events": n_events,
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "batch_size": batch_size,
        "backend": backend,
        "paths": results,
        "invalidation_ratio": ratio,
        "ingest_speedup": speedup,
        "bit_identical": identical,
    }


def _build_durable_dir(
    directory: str,
    stream: list[tuple[int, int, int]],
    batch_size: int,
    backend: str,
    snapshot_every: int | None,
) -> None:
    """Persist ``stream`` into ``directory`` as a clean durable session would.

    Writes the WAL batch-by-batch and, when ``snapshot_every`` is set, the
    periodic snapshots the session applier would have produced — giving the
    resume benchmark one snapshotted directory and one pure-WAL twin over
    the identical event sequence.
    """
    store = DurableStore(directory, snapshot_every=snapshot_every, fsync=False)
    store.open()
    try:
        evaluator = IncrementalEvaluator(3, 1, backend=backend)
        applied = 0
        for offset in range(0, len(stream), batch_size):
            batch = stream[offset : offset + batch_size]
            store.append_batch(applied + 1, applied + len(batch), batch)
            evaluator.apply_batch(batch, auto_extend=True)
            applied += len(batch)
            store.record_applied(evaluator, applied)
    finally:
        store.close()


def run_durable_resume(
    n_events: int,
    n_workers: int,
    n_tasks: int,
    seed: int,
    batch_size: int = 32,
    backend: str = "dense",
    snapshot_every: int = 8,
    repeats: int = 3,
) -> dict:
    """Time ``StreamSession.resume`` with snapshots vs full WAL replay.

    Only the resume itself is timed — both paths pay the identical
    ``estimate_all`` cost afterwards, so folding it in would just compress
    the ratio the snapshot is meant to expose.  Reported speedup is
    best-of-``repeats`` full-replay seconds over best-of snapshot seconds.
    """
    stream = make_stream(n_events, n_workers, n_tasks, seed)
    print(
        f"durable-resume: {len(stream)} events over {n_workers} workers x "
        f"{n_tasks} tasks ({backend} backend, micro-batch {batch_size}, "
        f"snapshot every {snapshot_every} batches vs pure WAL)"
    )

    reference_evaluator = IncrementalEvaluator(3, 1, backend="dict")
    reference_evaluator.apply_batch(stream, auto_extend=True)
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(backend="dict").evaluate_all(
            reference_evaluator.matrix
        )
        if estimate.n_tasks > 0
    }

    def timed_resume(directory: str) -> tuple[float, bool]:
        best = float("inf")
        identical = False
        for _ in range(repeats):
            start = time.perf_counter()
            session = open_session(
                SessionConfig(durable=directory, backend=backend, fsync=False)
            )
            best = min(best, time.perf_counter() - start)
            estimates = session.evaluator.estimate_all()
            identical = set(estimates) == set(reference) and all(
                _identical(estimates[w], reference[w]) for w in reference
            )
            session.durable.close()
        return best, identical

    with tempfile.TemporaryDirectory() as root:
        snapshot_dir = os.path.join(root, "snapshots")
        wal_dir = os.path.join(root, "pure-wal")
        _build_durable_dir(snapshot_dir, stream, batch_size, backend, snapshot_every)
        _build_durable_dir(wal_dir, stream, batch_size, backend, None)
        resume_seconds, resume_identical = timed_resume(snapshot_dir)
        replay_seconds, replay_identical = timed_resume(wal_dir)

    speedup = replay_seconds / resume_seconds if resume_seconds > 0 else float("inf")
    identical = resume_identical and replay_identical
    print(
        f"  snapshot resume: {resume_seconds * 1000:8.2f} ms   "
        f"full WAL replay: {replay_seconds * 1000:8.2f} ms   "
        f"resume speedup: {speedup:.1f}x   bit-identical: {identical}"
    )
    return {
        "scenario": "stream-resume",
        "n_events": n_events,
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "batch_size": batch_size,
        "backend": backend,
        "snapshot_every": snapshot_every,
        "resume_seconds": resume_seconds,
        "full_replay_seconds": replay_seconds,
        "resume_speedup": speedup,
        "bit_identical": identical,
    }


def run_with_shards(
    n_events: int,
    n_workers: int,
    n_tasks: int,
    seed: int,
    batch_size: int,
    backend: str = "dense",
    shard_spec: str = "thread:2",
    eval_points: int = 8,
) -> dict:
    """Time ingest-then-evaluate wall clock: serial vs sharded recomputes.

    Replays one stream through two sessions with ``evaluate_all`` forced at
    ``eval_points`` evenly spaced stream positions (the live-dashboard
    pattern: ingest a while, evaluate, repeat).  The serial twin runs
    ``shards=1``; the sharded twin runs ``shard_spec``, whose incremental
    recomputes go through the dependency-ledger footprint path and the
    execution tiers.  Both must serve bit-identical estimates; the wall
    clock comparison is what the ``--max-shard-overhead`` gate consumes.
    """
    stream = make_stream(n_events, n_workers, n_tasks, seed)
    every = max(1, len(stream) // eval_points)
    print(
        f"with-shards: {len(stream)} events over {n_workers} workers x "
        f"{n_tasks} tasks ({backend} backend, micro-batch {batch_size}, "
        f"evaluate_all every {every} events, serial vs {shard_spec})"
    )

    def timed(spec):
        async def go():
            async with open_session(
                SessionConfig(backend=backend, max_batch=batch_size, shards=spec)
            ) as session:
                for index, event in enumerate(stream):
                    await session.submit(*event)
                    if (index + 1) % every == 0:
                        await session.flush()
                        await session.evaluate_all()
                await session.flush()
                return (
                    await session.evaluate_all(),
                    session.evaluator.matrix.copy(),
                )

        start = time.perf_counter()
        estimates, matrix = asyncio.run(go())
        return time.perf_counter() - start, estimates, matrix

    serial_seconds, serial_estimates, matrix = timed(1)
    sharded_seconds, sharded_estimates, _ = timed(shard_spec)
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(backend="dict").evaluate_all(matrix)
        if estimate.n_tasks > 0
    }
    identical = all(
        set(estimates) == set(reference)
        and all(_identical(estimates[w], reference[w]) for w in reference)
        for estimates in (serial_estimates, sharded_estimates)
    )
    overhead = (
        sharded_seconds / serial_seconds if serial_seconds > 0 else float("inf")
    )
    print(
        f"  serial ingest+evaluate: {serial_seconds:7.3f}s   "
        f"{shard_spec}: {sharded_seconds:7.3f}s   "
        f"overhead: {overhead:.2f}x   bit-identical: {identical}"
    )
    return {
        "scenario": "stream-shards",
        "n_events": n_events,
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "batch_size": batch_size,
        "backend": backend,
        "shard_spec": shard_spec,
        "eval_points": eval_points,
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "shard_overhead": overhead,
        "bit_identical": identical,
    }


def run_with_writers(
    n_events: int,
    n_workers: int,
    n_tasks: int,
    seed: int,
    batch_size: int = 64,
    backend: str = "dense",
    writer_counts: tuple[int, ...] = (1, 2, 3),
    repeats: int = 2,
) -> dict:
    """Time durable ingest wall clock across multi-writer partition counts.

    Each count persists the identical stream into its own fresh directory
    with ``fsync=True`` — the per-append fsync is the serial cost the
    partitioned WAL segments overlap, so it must stay in the measurement.
    Best-of-``repeats`` per count; the reported speedup is the
    single-writer wall clock over the best multi-writer one.  On
    single-core hosts the comparison is marked ``vacuous`` (there is no
    concurrency to buy) and callers skip the speedup gate.
    """
    stream = make_stream(n_events, n_workers, n_tasks, seed)
    print(
        f"with-writers: {len(stream)} events over {n_workers} workers x "
        f"{n_tasks} tasks ({backend} backend, micro-batch {batch_size}, "
        f"fsync on, writer counts {list(writer_counts)})"
    )

    reference_evaluator = IncrementalEvaluator(3, 1, backend="dict")
    reference_evaluator.apply_batch(stream, auto_extend=True)
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(backend="dict").evaluate_all(
            reference_evaluator.matrix
        )
        if estimate.n_tasks > 0
    }

    async def ingest(directory: str, writers: int):
        config = SessionConfig(
            writers=writers,
            durable=directory,
            backend=backend,
            max_batch=batch_size,
            fsync=True,
        )
        async with open_session(config) as session:
            for event in stream:
                await session.submit(*event)
            await session.flush()
            return await session.evaluate_all()

    seconds: dict[int, float] = {}
    identical = True
    for writers in writer_counts:
        best = float("inf")
        for repeat in range(repeats):
            with tempfile.TemporaryDirectory() as directory:
                start = time.perf_counter()
                estimates = asyncio.run(ingest(directory, writers))
                best = min(best, time.perf_counter() - start)
            identical = identical and set(estimates) == set(reference) and all(
                _identical(estimates[w], reference[w]) for w in reference
            )
        seconds[writers] = best
        rate = n_events / best if best > 0 else float("inf")
        print(f"  writers={writers}: {best:7.3f}s  ({rate:9.0f} events/s)")

    multi = [s for w, s in seconds.items() if w > 1]
    base = seconds.get(1)
    speedup = (
        base / min(multi) if base is not None and multi and min(multi) > 0
        else float("inf")
    )
    vacuous = (os.cpu_count() or 1) < 2
    print(
        f"  writer speedup (1-writer / best multi): {speedup:.2f}x   "
        f"bit-identical: {identical}   vacuous: {vacuous}"
    )
    return {
        "scenario": "stream-multiwriter",
        "n_events": n_events,
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "batch_size": batch_size,
        "backend": backend,
        "writer_counts": list(writer_counts),
        "seconds": {str(w): s for w, s in seconds.items()},
        "writer_speedup": speedup,
        "bit_identical": identical,
        "vacuous": vacuous,
    }


def _append_trajectory(path: str, result: dict, smoke: bool) -> None:
    """Append a scenario result to the committed trend file's trajectory.

    Entries are scenario-keyed (``bench_scaling_agreement._comparable``
    only trends entries whose ``scenario`` matches), so ``stream-resume``
    and ``stream-shards`` rows ride in the same list without perturbing
    the scaling trend gate.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    entry = dict(result)
    entry.update(
        {
            "python": platform.python_version(),
            "smoke": smoke,
            "date": time.strftime("%Y-%m-%d"),
        }
    )
    data.setdefault("trajectory", []).append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")
    print(f"appended {entry['scenario']} trajectory entry to {path}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=10_000)
    parser.add_argument("--workers", type=int, default=60)
    parser.add_argument("--tasks", type=int, default=600)
    parser.add_argument("--seed", type=int, default=977)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--backend", default="dense",
                        choices=["dense", "sparse", "bitset", "dict", "auto"])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configuration for CI (overrides --events/--workers/--tasks)",
    )
    parser.add_argument(
        "--min-invalidation-ratio", type=float, default=3.0,
        help="exit non-zero unless batching cuts invalidation passes by this "
        "factor (default 3; deterministic, unlike wall-clock gates)",
    )
    parser.add_argument("--output", default=None,
                        help="optional JSON output path")
    parser.add_argument(
        "--durable-resume", action="store_true",
        help="also run the durability scenario: snapshot resume vs full WAL "
        "replay on a 5k-event stream (see --min-resume-speedup)",
    )
    parser.add_argument(
        "--resume-events", type=int, default=5000,
        help="stream length for the durable-resume scenario (default 5000, "
        "the locked fixture size; independent of --events/--smoke)",
    )
    parser.add_argument(
        "--min-resume-speedup", type=float, default=5.0,
        help="exit non-zero unless snapshot resume beats full WAL replay by "
        "this factor (default 5; only with --durable-resume)",
    )
    parser.add_argument(
        "--with-shards", action="store_true",
        help="also run the sharded-recompute scenario: ingest-then-evaluate "
        "wall clock, serial vs --shard-spec (see --max-shard-overhead)",
    )
    parser.add_argument(
        "--shard-spec", default="thread:2",
        help="shard spec for the --with-shards scenario (default thread:2)",
    )
    parser.add_argument(
        "--max-shard-overhead", type=float, default=2.0,
        help="exit non-zero if the sharded ingest-then-evaluate wall clock "
        "exceeds the serial twin by this factor (default 2; only with "
        "--with-shards)",
    )
    parser.add_argument(
        "--with-writers", action="store_true",
        help="also run the multi-writer ingest scenario: fsynced durable "
        "ingest wall clock across --writer-counts (see "
        "--min-writer-speedup)",
    )
    parser.add_argument(
        "--writer-counts", default="1,2,3",
        help="comma-separated writer counts for the --with-writers scenario "
        "(default 1,2,3; must include 1, the baseline)",
    )
    parser.add_argument(
        "--min-writer-speedup", type=float, default=1.0,
        help="exit non-zero unless the best multi-writer ingest beats the "
        "single-writer baseline by this factor (default 1; skipped on "
        "single-core runners, where the entry is marked vacuous)",
    )
    parser.add_argument(
        "--trajectory", default=None,
        help="trend file (BENCH_agreement.json) to append the stream-resume, "
        "stream-shards and stream-multiwriter entries to",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.events, args.workers, args.tasks = 3000, 30, 250

    result = run(
        args.events, args.workers, args.tasks, args.seed,
        args.batch_size, backend=args.backend,
    )
    resume_result = None
    if args.durable_resume:
        resume_result = run_durable_resume(
            args.resume_events, args.workers, args.tasks, args.seed,
            backend="dense" if args.backend in ("dict", "auto") else args.backend,
        )
        result["durable_resume"] = resume_result
        if args.trajectory:
            _append_trajectory(args.trajectory, resume_result, args.smoke)
    shards_result = None
    if args.with_shards:
        shards_result = run_with_shards(
            args.events, args.workers, args.tasks, args.seed,
            args.batch_size,
            backend="dense" if args.backend in ("dict", "auto") else args.backend,
            shard_spec=args.shard_spec,
        )
        result["with_shards"] = shards_result
        if args.trajectory:
            _append_trajectory(args.trajectory, shards_result, args.smoke)
    writers_result = None
    if args.with_writers:
        try:
            writer_counts = tuple(
                int(token) for token in args.writer_counts.split(",") if token
            )
        except ValueError:
            print(
                f"FAIL: malformed --writer-counts {args.writer_counts!r}",
                file=sys.stderr,
            )
            return 2
        if 1 not in writer_counts or not any(w > 1 for w in writer_counts):
            print(
                "FAIL: --writer-counts needs the 1-writer baseline and at "
                "least one multi-writer count",
                file=sys.stderr,
            )
            return 2
        writers_result = run_with_writers(
            min(args.events, 4000), args.workers, args.tasks, args.seed,
            backend="dense" if args.backend in ("dict", "auto") else args.backend,
            writer_counts=writer_counts,
        )
        result["with_writers"] = writers_result
        if args.trajectory:
            _append_trajectory(args.trajectory, writers_result, args.smoke)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not result["bit_identical"]:
        print("FAIL: streamed paths disagree with the batch build", file=sys.stderr)
        return 1
    if (
        args.backend != "dict"
        and result["invalidation_ratio"] < args.min_invalidation_ratio
    ):
        print(
            f"FAIL: invalidation reduction {result['invalidation_ratio']:.1f}x "
            f"below required {args.min_invalidation_ratio:.1f}x",
            file=sys.stderr,
        )
        return 1
    if resume_result is not None:
        if not resume_result["bit_identical"]:
            print(
                "FAIL: resumed sessions disagree with the batch build",
                file=sys.stderr,
            )
            return 1
        if resume_result["resume_speedup"] < args.min_resume_speedup:
            print(
                f"FAIL: resume speedup {resume_result['resume_speedup']:.1f}x "
                f"below required {args.min_resume_speedup:.1f}x",
                file=sys.stderr,
            )
            return 1
    if shards_result is not None:
        if not shards_result["bit_identical"]:
            print(
                "FAIL: sharded streamed evaluation disagrees with the batch "
                "build",
                file=sys.stderr,
            )
            return 1
        if shards_result["shard_overhead"] > args.max_shard_overhead:
            print(
                "FAIL: sharded ingest-then-evaluate wall clock "
                f"{shards_result['shard_overhead']:.2f}x serial exceeds the "
                f"allowed {args.max_shard_overhead:.2f}x",
                file=sys.stderr,
            )
            return 1
    if writers_result is not None:
        if not writers_result["bit_identical"]:
            print(
                "FAIL: multi-writer ingest disagrees with the batch build",
                file=sys.stderr,
            )
            return 1
        if writers_result["vacuous"]:
            print(
                "writer-speedup gate skipped: single-core runner "
                "(entry marked vacuous)"
            )
        elif writers_result["writer_speedup"] < args.min_writer_speedup:
            print(
                f"FAIL: writer speedup {writers_result['writer_speedup']:.2f}x "
                f"below required {args.min_writer_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
