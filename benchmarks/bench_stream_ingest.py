"""Streaming ingestion benchmark: singleton vs micro-batched delta applies.

Replays one shuffled response stream (default 10k events, including label
revisions) into an :class:`~repro.core.incremental.IncrementalEvaluator`
three ways and compares cost:

* ``singleton``  — ``add_response`` per event (one derived-cache
  invalidation pass per statistic-changing event);
* ``batched``    — ``apply_batch`` over fixed micro-batches (one
  invalidation pass per batch; grouped per-worker-row storage writes while
  no count matrix is materialized);
* ``session``    — the full asyncio path: ``StreamSession`` submit/flush
  with queue coalescing (what ``repro-crowd ingest`` runs).

All three must produce bit-identical estimates to a from-scratch batch
build over the accumulated matrix — verified on every run — and the batch
paths must cut the backend invalidation events by at least
``--min-invalidation-ratio`` (default 3x, the locked acceptance bound; the
unit suite pins the same bound in ``tests/unit/test_serve.py``).

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_ingest.py          # full
    PYTHONPATH=src python benchmarks/bench_stream_ingest.py --smoke  # CI
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time

import numpy as np

from repro.core.incremental import IncrementalEvaluator
from repro.core.m_worker import MWorkerEstimator
from repro.serve.session import StreamSession


def make_stream(
    n_events: int, n_workers: int, n_tasks: int, seed: int
) -> list[tuple[int, int, int]]:
    """Random event stream with ~10% label revisions (cells hit twice)."""
    rng = np.random.default_rng(seed)
    workers = rng.integers(0, n_workers, size=n_events)
    tasks = rng.integers(0, n_tasks, size=n_events)
    labels = rng.integers(0, 2, size=n_events)
    return [
        (int(w), int(t), int(label))
        for w, t, label in zip(workers, tasks, labels)
    ]


def _identical(a, b) -> bool:
    return (
        a.interval.mean == b.interval.mean
        and a.interval.lower == b.interval.lower
        and a.interval.upper == b.interval.upper
        and a.interval.deviation == b.interval.deviation
        and a.weights == b.weights
        and a.status is b.status
    )


def run(
    n_events: int,
    n_workers: int,
    n_tasks: int,
    seed: int,
    batch_size: int,
    backend: str = "dense",
) -> dict:
    stream = make_stream(n_events, n_workers, n_tasks, seed)
    print(
        f"stream: {len(stream)} events over {n_workers} workers x "
        f"{n_tasks} tasks ({backend} backend, micro-batch {batch_size})"
    )
    results: dict[str, dict] = {}

    # -- singleton ----------------------------------------------------- #
    evaluator = IncrementalEvaluator(3, 1, backend=backend)
    start = time.perf_counter()
    for event in stream:
        evaluator.add_response(*event)
    seconds = time.perf_counter() - start
    singleton_estimates = evaluator.estimate_all()
    results["singleton"] = {
        "seconds": seconds,
        "invalidations": evaluator._backend.invalidation_events
        if evaluator._backend is not None
        else 0,
    }
    reference_matrix = evaluator.matrix

    # -- batched ------------------------------------------------------- #
    evaluator = IncrementalEvaluator(3, 1, backend=backend)
    start = time.perf_counter()
    for offset in range(0, len(stream), batch_size):
        evaluator.apply_batch(stream[offset : offset + batch_size])
    seconds = time.perf_counter() - start
    batched_estimates = evaluator.estimate_all()
    results["batched"] = {
        "seconds": seconds,
        "invalidations": evaluator._backend.invalidation_events
        if evaluator._backend is not None
        else 0,
    }

    # -- session (asyncio queue + applier) ------------------------------ #
    async def run_session():
        async with StreamSession(backend=backend, max_batch=batch_size) as session:
            for event in stream:
                await session.submit(*event)
            await session.flush()
            return (
                await session.evaluate_all(),
                sum(
                    record.stats.backend_invalidations
                    for record in session.applied_batches
                ),
                len(session.applied_batches),
            )

    start = time.perf_counter()
    session_estimates, session_invalidations, session_batches = asyncio.run(
        run_session()
    )
    results["session"] = {
        "seconds": time.perf_counter() - start,
        "invalidations": session_invalidations,
        "batches": session_batches,
    }

    # -- bit-identity against a from-scratch batch build ---------------- #
    reference = {
        estimate.worker: estimate
        for estimate in MWorkerEstimator(backend="dict").evaluate_all(
            reference_matrix
        )
        if estimate.n_tasks > 0
    }
    identical = all(
        set(estimates) == set(reference)
        and all(_identical(estimates[w], reference[w]) for w in reference)
        for estimates in (singleton_estimates, batched_estimates, session_estimates)
    )

    for name, row in results.items():
        rate = n_events / row["seconds"] if row["seconds"] > 0 else float("inf")
        print(
            f"{name:>10}: {row['seconds']:7.3f}s  ({rate:9.0f} events/s, "
            f"{row['invalidations']} invalidation passes)"
        )
    ratio = (
        results["singleton"]["invalidations"] / results["batched"]["invalidations"]
        if results["batched"]["invalidations"]
        else float("inf")
    )
    speedup = (
        results["singleton"]["seconds"] / results["batched"]["seconds"]
        if results["batched"]["seconds"] > 0
        else float("inf")
    )
    print(
        f"invalidation reduction (singleton/batched): {ratio:.1f}x   "
        f"ingest speedup: {speedup:.1f}x   bit-identical: {identical}"
    )
    return {
        "n_events": n_events,
        "n_workers": n_workers,
        "n_tasks": n_tasks,
        "batch_size": batch_size,
        "backend": backend,
        "paths": results,
        "invalidation_ratio": ratio,
        "ingest_speedup": speedup,
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=10_000)
    parser.add_argument("--workers", type=int, default=60)
    parser.add_argument("--tasks", type=int, default=600)
    parser.add_argument("--seed", type=int, default=977)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--backend", default="dense",
                        choices=["dense", "sparse", "bitset", "dict", "auto"])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small configuration for CI (overrides --events/--workers/--tasks)",
    )
    parser.add_argument(
        "--min-invalidation-ratio", type=float, default=3.0,
        help="exit non-zero unless batching cuts invalidation passes by this "
        "factor (default 3; deterministic, unlike wall-clock gates)",
    )
    parser.add_argument("--output", default=None,
                        help="optional JSON output path")
    args = parser.parse_args(argv)
    if args.smoke:
        args.events, args.workers, args.tasks = 3000, 30, 250

    result = run(
        args.events, args.workers, args.tasks, args.seed,
        args.batch_size, backend=args.backend,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    if not result["bit_identical"]:
        print("FAIL: streamed paths disagree with the batch build", file=sys.stderr)
        return 1
    if (
        args.backend != "dict"
        and result["invalidation_ratio"] < args.min_invalidation_ratio
    ):
        print(
            f"FAIL: invalidation reduction {result['invalidation_ratio']:.1f}x "
            f"below required {args.min_invalidation_ratio:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
