"""Figure 1: interval size vs confidence level, new technique vs old technique.

Paper setting: n = 100 tasks, m in {3, 7} workers, regular data, worker error
rates drawn from {0.1, 0.2, 0.3}, 500 repetitions.  Expected shape: the new
(delta-method) intervals are strictly smaller than the old (super-worker,
conservative) intervals at every confidence level, with roughly a 30-40 %
reduction at moderate confidence, and 7 workers give smaller intervals than 3.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure1_old_vs_new


def bench_fig1_old_vs_new(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure1_old_vs_new,
        kwargs={
            "n_tasks": 100,
            "worker_counts": (3, 7),
            "confidence_grid": bench_scale["confidence_grid"],
            "n_repetitions": bench_scale["repetitions"],
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Qualitative shape: new is tighter than old for every m and c.
    for n_workers in (3, 7):
        new_series = result.sweep.series[f"new technique, {n_workers} workers"]
        old_series = result.sweep.series[f"old technique, {n_workers} workers"]
        for (confidence, new_size), (_, old_size) in zip(
            new_series.points, old_series.points
        ):
            assert new_size < old_size, (
                f"new technique should be tighter than old at m={n_workers}, "
                f"c={confidence}: {new_size:.3f} vs {old_size:.3f}"
            )
    # More workers give tighter intervals at the same confidence.
    new_3 = result.sweep.series["new technique, 3 workers"]
    new_7 = result.sweep.series["new technique, 7 workers"]
    for (confidence, size_3), (_, size_7) in zip(new_3.points, new_7.points):
        assert size_7 < size_3, (
            f"7-worker intervals should be tighter than 3-worker at c={confidence}"
        )
