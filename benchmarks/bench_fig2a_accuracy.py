"""Figure 2(a): interval-accuracy vs confidence, m-worker binary non-regular.

Paper setting: (m, n) in {3, 7} x {100, 300}, density 0.8, 500 repetitions.
Expected shape: interval-accuracy tracks the ideal y = x diagonal closely.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure2a_accuracy


def bench_fig2a_accuracy(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure2a_accuracy,
        kwargs={
            "configurations": ((3, 100), (3, 300), (7, 100), (7, 300)),
            "density": 0.8,
            "confidence_grid": bench_scale["confidence_grid"],
            "n_repetitions": bench_scale["repetitions"],
            "seed": 1,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Qualitative shape: coverage close to the diagonal.  With the reduced
    # repetition counts the Monte-Carlo noise is a few points, so the check is
    # a band around the ideal value rather than equality.
    tolerance = 0.18
    for label, series in result.sweep.series.items():
        for confidence, accuracy in series.points:
            assert accuracy >= confidence - tolerance, (
                f"{label}: accuracy {accuracy:.2f} too far below the nominal "
                f"confidence {confidence:.2f}"
            )
            if confidence >= 0.7:
                assert accuracy <= min(1.0, confidence + tolerance), (
                    f"{label}: accuracy {accuracy:.2f} unexpectedly above "
                    f"{confidence:.2f} + {tolerance}"
                )
