"""Gauntlet benchmark: adversarial coverage grid as a tracked trend.

Runs the scenario gauntlet (:mod:`repro.evaluation.gauntlet`) over the full
(scenario family x backend x estimator path) grid and gates on its
structural health:

* gap detection must report **zero** untested cells — every registered
  scenario family is measured on every backend/estimator-path the
  capability matrix licenses;
* the report must be well-formed: every cell carries coverage, calibration
  error, width and the shared accounting fields (``n_degenerate``,
  ``n_skipped_repetitions`` / ``n_repetitions``);
* the collusion family must measurably degrade coverage against the
  in-grid independent control (correlated errors violate the independence
  assumption behind the paper's variance bound — if the gauntlet stops
  showing that, the scenario generator broke);
* no cell may silently lose most of its repetitions (usable fraction gate).

``--trajectory`` appends one scenario-keyed entry per family
(``gauntlet-<family>``) to the committed ``BENCH_agreement.json`` trend
file, so per-family coverage under violation rides the same trend list as
the perf scenarios without perturbing the scaling gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_gauntlet.py          # full
    PYTHONPATH=src python benchmarks/bench_gauntlet.py --smoke  # CI leg
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import sys
import time
import warnings

from repro.evaluation.gauntlet import GauntletResults, format_gauntlet_report
from repro.simulation.gauntlet import GAUNTLET_FAMILIES

REQUIRED_CELL_FIELDS = (
    "family",
    "backend",
    "path",
    "scenario",
    "n_intervals",
    "coverage",
    "calibration_error",
    "mean_size",
    "mean_absolute_error",
    "n_degenerate",
    "n_skipped_repetitions",
    "n_repetitions",
)

#: The collusion family must lose at least this much coverage against the
#: independent control for the gauntlet to count as demonstrating the
#: independence violation (full ring, strength 1.0, collapses far below it).
MIN_COLLUSION_DEGRADATION = 0.2

#: No cell may lose more than half its repetitions without failing the run.
MIN_USABLE_FRACTION = 0.5


def _check_report(report: dict) -> list[str]:
    """Structural gates on the rendered report; returns failure strings."""
    failures: list[str] = []
    if report["gaps"]:
        failures.append(
            f"gap detection flagged {len(report['gaps'])} untested cells: "
            + ", ".join(report["gaps"][:5])
        )
    for cell in report["cells"]:
        key = f"{cell.get('family')}/{cell.get('backend')}/{cell.get('path')}"
        missing = [field for field in REQUIRED_CELL_FIELDS if field not in cell]
        if missing:
            failures.append(f"{key}: report cell missing fields {missing}")
            continue
        if cell["n_intervals"] > 0 and not (0.0 <= cell["coverage"] <= 1.0):
            failures.append(f"{key}: coverage {cell['coverage']} outside [0, 1]")
        usable = (
            cell["n_repetitions"] - cell["n_skipped_repetitions"]
        ) / cell["n_repetitions"]
        if usable < MIN_USABLE_FRACTION:
            failures.append(
                f"{key}: only {usable:.2f} of repetitions usable "
                f"(< {MIN_USABLE_FRACTION})"
            )
    return failures


def _family_means(report: dict) -> dict[str, float]:
    """Mean measured coverage per family over its interval-bearing cells."""
    sums: dict[str, list[float]] = {}
    for cell in report["cells"]:
        if cell["n_intervals"] > 0:
            sums.setdefault(cell["family"], []).append(cell["coverage"])
    return {
        family: sum(values) / len(values) for family, values in sums.items()
    }


def _append_trajectory(path: str, report: dict, elapsed: float, smoke: bool) -> None:
    """Append one ``gauntlet-<family>`` entry per family to the trend file."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    means = _family_means(report)
    stamp = {
        "python": platform.python_version(),
        "smoke": smoke,
        "date": time.strftime("%Y-%m-%d"),
    }
    for family, mean_coverage in sorted(means.items()):
        cells = [c for c in report["cells"] if c["family"] == family]
        entry = {
            "scenario": f"gauntlet-{family}",
            "confidence": report["confidence"],
            "n_repetitions": report["n_repetitions"],
            "seed": report["seed"],
            "n_cells": len(cells),
            "mean_coverage": mean_coverage,
            "worst_calibration_error": max(
                (c["calibration_error"] for c in cells if c["n_intervals"] > 0),
                key=abs,
            ),
            "n_degenerate": sum(c["n_degenerate"] for c in cells),
            "n_skipped_repetitions": sum(
                c["n_skipped_repetitions"] for c in cells
            ),
            "grid_seconds": elapsed,
        }
        entry.update(stamp)
        data.setdefault("trajectory", []).append(entry)
        print(f"appended {entry['scenario']} trajectory entry to {path}")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2)
        handle.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repetitions", type=int, default=10)
    parser.add_argument("--tasks", type=int, default=None,
                        help="override every scenario's task count")
    parser.add_argument("--confidence", type=float, default=0.9)
    parser.add_argument("--seed", type=int, default=20150413)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced CI leg: 3 repetitions, 60 tasks")
    parser.add_argument("--trajectory", default=None,
                        help="trend file (BENCH_agreement.json) to append "
                        "per-family gauntlet entries to")
    parser.add_argument("--json", default=None,
                        help="also write the full JSON report to this path")
    args = parser.parse_args(argv)

    repetitions = 3 if args.smoke else args.repetitions
    tasks = (60 if args.smoke else None) if args.tasks is None else args.tasks
    overrides = (
        {name: {"n_tasks": tasks} for name in GAUNTLET_FAMILIES}
        if tasks is not None
        else None
    )

    results = GauntletResults(
        n_repetitions=repetitions,
        confidence=args.confidence,
        seed=args.seed,
        scenario_overrides=overrides,
    )
    start = time.perf_counter()
    with warnings.catch_warnings():
        # The usable-fraction gate below is this benchmark's (stricter,
        # failing) version of the coverage-accounting warning.
        warnings.simplefilter("ignore")
        report = results.to_report()
    elapsed = time.perf_counter() - start
    print(format_gauntlet_report(results))
    print(
        f"\n{len(report['cells'])} cells x {repetitions} repetitions "
        f"in {elapsed:.2f}s"
    )

    failures = _check_report(report)
    means = _family_means(report)
    independent = means.get("independent", math.nan)
    collusion = means.get("collusion", math.nan)
    degradation = independent - collusion
    print(
        f"independent coverage {independent:.3f} vs collusion {collusion:.3f} "
        f"(degradation {degradation:+.3f}, gate >= {MIN_COLLUSION_DEGRADATION})"
    )
    if not (degradation >= MIN_COLLUSION_DEGRADATION):
        failures.append(
            f"collusion did not degrade coverage enough: {degradation:+.3f} "
            f"< {MIN_COLLUSION_DEGRADATION}"
        )

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"JSON report written to {args.json}")
    if args.trajectory:
        _append_trajectory(args.trajectory, report, elapsed, args.smoke)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gauntlet gates passed: zero gaps, well-formed report, "
          "collusion degradation demonstrated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
