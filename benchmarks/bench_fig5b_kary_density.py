"""Figure 5(b): average k-ary interval size vs density and arity.

Paper setting: n = 500 tasks, c = 0.8, arity k in {2, 3, 4}, densities
0.5-0.95.  Expected shape: interval size decreases with density and increases
with arity (more parameters to estimate from the same data).
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure5b_kary_density


def bench_fig5b_kary_density(benchmark, bench_scale):
    densities = (0.5, 0.7, 0.9)
    result = benchmark.pedantic(
        figure5b_kary_density,
        kwargs={
            "arities": (2, 3, 4),
            "densities": densities,
            "n_tasks": 500,
            "confidence": 0.8,
            "n_repetitions": bench_scale["kary_repetitions"],
            "seed": 13,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Interval size shrinks with density for every arity...
    for label, series in result.sweep.series.items():
        assert series.y_at(densities[-1]) < series.y_at(densities[0]), (
            f"{label}: interval size should shrink as density grows"
        )
    # ...and grows with arity at every density.
    for density in densities:
        size_2 = result.sweep.series["arity 2"].y_at(density)
        size_4 = result.sweep.series["arity 4"].y_at(density)
        assert size_4 > size_2, (
            f"arity-4 intervals should be wider than arity-2 at density {density}: "
            f"{size_4:.3f} vs {size_2:.3f}"
        )
