"""Figure 5(a): k-ary interval accuracy vs confidence level.

Paper setting: arity k in {2, 3, 4}, n in {100, 1000} tasks, 3 workers using
the paper's response-probability matrices, 500 repetitions.  Expected shape:
accuracy close to the diagonal; for small n and arity > 2 the method is
somewhat conservative (accuracy above the diagonal), and with n = 1000 it is
close to ideal.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure5a_kary_accuracy


def bench_fig5a_kary_accuracy(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure5a_kary_accuracy,
        kwargs={
            "arities": (2, 3, 4),
            "task_counts": (100, 1000),
            "confidence_grid": bench_scale["confidence_grid"],
            "n_repetitions": bench_scale["kary_repetitions"],
            "seed": 11,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Qualitative shape: at the highest confidence level every configuration
    # reaches high accuracy, and no configuration undershoots the nominal
    # level catastrophically.
    top_confidence = bench_scale["confidence_grid"][-1]
    for label, series in result.sweep.series.items():
        top_accuracy = series.y_at(top_confidence)
        assert top_accuracy >= top_confidence - 0.15, (
            f"{label}: accuracy {top_accuracy:.2f} at c={top_confidence} is too "
            "far below the nominal level"
        )
