"""Ablation: delta-method intervals (the paper) vs nonparametric bootstrap.

The bootstrap is the obvious do-it-yourself alternative to the paper's
analytical intervals.  This bench compares the two on the same simulated
non-regular data along three axes: coverage, mean interval width, and wall
time per dataset.  The expected outcome, matching the paper's motivation for
closed-form intervals: comparable coverage, with the bootstrap costing two to
three orders of magnitude more compute (hundreds of re-estimations per
dataset).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.bootstrap import BootstrapEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.evaluation.reporting import format_table
from repro.simulation.binary import simulate_binary_responses
from repro.types import EstimateStatus


def _run_bootstrap_comparison(
    n_workers: int,
    n_tasks: int,
    density: float,
    confidence: float,
    n_repetitions: int,
    n_resamples: int,
    seed: int,
) -> dict[str, dict[str, float]]:
    rng = np.random.default_rng(seed)
    metrics = {
        "paper (delta method)": {"covered": [], "sizes": [], "seconds": []},
        "bootstrap": {"covered": [], "sizes": [], "seconds": []},
    }
    delta_estimator = MWorkerEstimator(confidence=confidence)
    for repetition in range(n_repetitions):
        matrix, true_rates = simulate_binary_responses(
            n_workers, n_tasks, rng, density=density
        )
        start = time.perf_counter()
        delta_estimates = delta_estimator.evaluate_all(matrix)
        metrics["paper (delta method)"]["seconds"].append(time.perf_counter() - start)

        bootstrap_estimator = BootstrapEstimator(
            confidence=confidence, n_resamples=n_resamples, seed=seed + repetition
        )
        start = time.perf_counter()
        bootstrap_estimates = bootstrap_estimator.evaluate_all(matrix)
        metrics["bootstrap"]["seconds"].append(time.perf_counter() - start)

        for worker in range(n_workers):
            truth = float(true_rates[worker])
            delta = delta_estimates[worker]
            if delta.status is not EstimateStatus.DEGENERATE:
                metrics["paper (delta method)"]["covered"].append(
                    delta.interval.contains(truth)
                )
                metrics["paper (delta method)"]["sizes"].append(delta.interval.size)
            boot = bootstrap_estimates[worker]
            if boot.status is not EstimateStatus.DEGENERATE:
                metrics["bootstrap"]["covered"].append(boot.interval.contains(truth))
                metrics["bootstrap"]["sizes"].append(boot.interval.size)
    return {
        name: {
            "coverage": float(np.mean(values["covered"])),
            "mean_size": float(np.mean(values["sizes"])),
            "seconds_per_dataset": float(np.mean(values["seconds"])),
        }
        for name, values in metrics.items()
    }


def bench_ablation_bootstrap(benchmark, bench_scale):
    confidence = 0.8
    summary = benchmark.pedantic(
        _run_bootstrap_comparison,
        kwargs={
            "n_workers": 5,
            "n_tasks": 100,
            "density": 0.8,
            "confidence": confidence,
            "n_repetitions": max(5, bench_scale["repetitions"] // 8),
            "n_resamples": 100,
            "seed": 41,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print("ablation: analytical (delta-method) intervals vs bootstrap "
          "(5 workers, 100 tasks, density 0.8, c=0.8)")
    header = ["method", "coverage", "mean size", "seconds / dataset"]
    rows = [
        [
            name,
            f"{values['coverage']:.3f}",
            f"{values['mean_size']:.3f}",
            f"{values['seconds_per_dataset']:.3f}",
        ]
        for name, values in summary.items()
    ]
    print(format_table(header, rows))

    paper = summary["paper (delta method)"]
    bootstrap = summary["bootstrap"]
    # The analytical intervals keep coverage without the bootstrap's cost.
    assert paper["coverage"] >= confidence - 0.15
    assert paper["seconds_per_dataset"] < bootstrap["seconds_per_dataset"]
