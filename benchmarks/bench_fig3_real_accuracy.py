"""Figure 3: interval accuracy on the real-data stand-ins (no spammer filter).

Paper setting: IC (48x19, regular thinned to 80 %), RTE (800x164, sparse),
TEM (462x76, sparse); the "true" error rate is the gold-derived empirical
rate.  Expected shape: accuracy reasonably close to the diagonal, with some
points falling below it at high confidence — the shortfall that Figure 4's
spammer filter then repairs.
"""

from __future__ import annotations

from conftest import emit

from repro.evaluation.experiments import figure3_real_data_accuracy


def bench_fig3_real_accuracy(benchmark, bench_scale):
    result = benchmark.pedantic(
        figure3_real_data_accuracy,
        kwargs={
            "datasets": ("ic", "rte", "tem"),
            "confidence_grid": bench_scale["confidence_grid"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )
    emit(result)

    # Qualitative shape: accuracy increases with the confidence level for
    # every dataset, and is meaningfully high at the top of the grid.
    for label, series in result.sweep.series.items():
        accuracies = series.ys
        assert accuracies[-1] >= accuracies[0], (
            f"{label}: accuracy should not decrease from the lowest to the "
            "highest confidence level"
        )
        assert accuracies[-1] >= 0.6, (
            f"{label}: accuracy at the highest confidence level should be "
            f"substantial, got {accuracies[-1]:.2f}"
        )
