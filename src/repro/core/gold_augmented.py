"""Hybrid estimation: combining agreement-based intervals with a few gold tasks.

The paper's introduction argues that gold-standard tasks are expensive and
go stale, but in practice a requester often has a *small* number of them.
When both sources exist, the natural estimator combines them: the
agreement-based estimate of Algorithms A1/A2 and the gold-based binomial
estimate are (approximately) independent, approximately normal estimates of
the same error rate, so the minimum-variance combination is the classical
inverse-variance (precision) weighting — the same principle as Lemma 5,
applied across evidence sources instead of across triples.

The resulting interval is never wider than the better of the two inputs and
degrades gracefully: with no gold answers it equals the paper's interval,
with abundant gold answers it approaches the gold-standard interval.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.baselines.gold_standard import gold_standard_intervals
from repro.core.delta_method import confidence_interval_from_moments
from repro.core.m_worker import MWorkerEstimator
from repro.data.response_matrix import ResponseMatrix
from repro.types import EstimateStatus, WorkerErrorEstimate

__all__ = ["GoldAugmentedEvaluator", "combine_estimates"]

#: Deviations below this are treated as "essentially exact" to avoid dividing
#: by a zero variance when one source is degenerate the other way around.
_MIN_DEVIATION = 1e-6


def combine_estimates(
    agreement_estimate: WorkerErrorEstimate,
    gold_estimate: WorkerErrorEstimate | None,
    confidence: float,
) -> WorkerErrorEstimate:
    """Inverse-variance combination of an agreement-based and a gold-based estimate.

    Either input may be missing or degenerate, in which case the other one is
    returned (re-leveled to ``confidence``).  When *both* sources are
    degenerate the agreement estimate is preferred — it carries the
    ``triples``/``weights`` provenance — and its interval is still re-leveled
    to the requested ``confidence``, keeping the degenerate status.
    """
    usable_agreement = (
        agreement_estimate is not None
        and agreement_estimate.status is not EstimateStatus.DEGENERATE
        and agreement_estimate.interval.deviation > 0.0
    )
    usable_gold = (
        gold_estimate is not None
        and gold_estimate.status is not EstimateStatus.DEGENERATE
        and gold_estimate.interval.deviation > 0.0
    )
    if not usable_gold:
        # Single-source result: the agreement estimate when present (whether
        # usable or merely degenerate — it carries the triples/weights
        # provenance), else whatever gold evidence exists, re-leveled either
        # way.
        source = agreement_estimate if agreement_estimate is not None else gold_estimate
        interval = confidence_interval_from_moments(
            source.interval.mean, source.interval.deviation, confidence
        )
        return WorkerErrorEstimate(
            worker=source.worker,
            interval=interval,
            n_tasks=source.n_tasks,
            triples=source.triples,
            weights=source.weights,
            status=source.status,
        )
    if usable_gold and not usable_agreement:
        source = gold_estimate
        interval = confidence_interval_from_moments(
            source.interval.mean, source.interval.deviation, confidence
        )
        return WorkerErrorEstimate(
            worker=source.worker,
            interval=interval,
            n_tasks=source.n_tasks,
            status=source.status,
        )

    deviation_a = max(agreement_estimate.interval.deviation, _MIN_DEVIATION)
    deviation_g = max(gold_estimate.interval.deviation, _MIN_DEVIATION)
    precision_a = 1.0 / (deviation_a**2)
    precision_g = 1.0 / (deviation_g**2)
    total_precision = precision_a + precision_g
    mean = (
        precision_a * agreement_estimate.interval.mean
        + precision_g * gold_estimate.interval.mean
    ) / total_precision
    deviation = (1.0 / total_precision) ** 0.5
    interval = confidence_interval_from_moments(mean, deviation, confidence)
    status = (
        EstimateStatus.CLAMPED
        if EstimateStatus.CLAMPED
        in (agreement_estimate.status, gold_estimate.status)
        else EstimateStatus.OK
    )
    return WorkerErrorEstimate(
        worker=agreement_estimate.worker,
        interval=interval,
        n_tasks=max(agreement_estimate.n_tasks, gold_estimate.n_tasks),
        triples=agreement_estimate.triples,
        weights=agreement_estimate.weights,
        status=status,
    )


@dataclass
class GoldAugmentedEvaluator:
    """Evaluator that fuses agreement-based intervals with gold-task evidence.

    Parameters
    ----------
    confidence:
        Confidence level of the produced intervals.
    optimize_weights:
        Passed through to the agreement-based m-worker estimator.
    gold_method:
        Which gold-based interval to use (``"wilson"`` or ``"wald"``).
    backend, batch_triples, batch_lemma4, shards:
        Fast-path knobs passed through to the inner
        :class:`~repro.core.m_worker.MWorkerEstimator`, so the fused
        evaluator rides the same vectorized/batched/sharded paths as plain
        batch evaluation.  Throughput only — fused intervals are
        bit-identical across all settings.
    """

    confidence: float = 0.95
    optimize_weights: bool = True
    gold_method: str = "wilson"
    backend: str = "auto"
    batch_triples: bool = True
    batch_lemma4: bool = True
    shards: int = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )

    def evaluate_all(self, matrix: ResponseMatrix) -> dict[int, WorkerErrorEstimate]:
        """Fused intervals for every worker.

        Gold labels may cover any subset of tasks (including none, in which
        case the result equals the plain m-worker estimator's).
        """
        if not matrix.is_binary:
            raise ConfigurationError("gold-augmented evaluation handles binary data")
        if matrix.n_workers < 3:
            raise InsufficientDataError("at least 3 workers are required")
        agreement_estimates = MWorkerEstimator(
            confidence=self.confidence,
            optimize_weights=self.optimize_weights,
            backend=self.backend,
            batch_triples=self.batch_triples,
            batch_lemma4=self.batch_lemma4,
            shards=self.shards,
        ).evaluate_all(matrix)
        gold_estimates: dict[int, WorkerErrorEstimate] = {}
        if matrix.has_gold:
            gold_estimates = gold_standard_intervals(
                matrix, confidence=self.confidence, method=self.gold_method
            )
        fused: dict[int, WorkerErrorEstimate] = {}
        for estimate in agreement_estimates:
            fused[estimate.worker] = combine_estimates(
                estimate, gold_estimates.get(estimate.worker), self.confidence
            )
        return fused
