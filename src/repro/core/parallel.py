"""Reusable parallel execution layer for batch worker evaluation.

The m-worker batch (``MWorkerEstimator.evaluate_all``) is embarrassingly
parallel across workers, but the first sharded implementation (the removed
``repro.core.sharded`` module, whose stub now points here)
paid two costs that routinely made it *slower* than serial: every call
spawned a fresh process pool, and every shard rebuilt the count matrices,
vote table and triple-count tensor from the raw arrays.  This module fixes
both and generalizes the machinery to every vectorized backend:

* **Shared-state export** — every backend with
  ``supports_shared_export`` (dense, sparse *and* bitset) serializes its
  precomputed state (packed bit planes, count matrices, vote table, the
  dense triple-count tensor) into ``multiprocessing.shared_memory``
  segments via
  :meth:`~repro.data.dense_backend.AgreementBackendBase.export_shared_state`;
  shard processes attach read-only views
  (:meth:`~repro.data.dense_backend.AgreementBackendBase.attach_shared_state`)
  instead of rebuilding anything.
* **A process-wide reusable executor** — :class:`ShardExecutor` lazily
  spawns and caches one pool per shard count (plus thread pools for the
  thread tier), so the spawn cost amortizes across repeated
  ``evaluate_all`` / ``filter_spammers`` calls.  Pools are shut down at
  interpreter exit (or explicitly; the executor is a context manager).
* **A thread tier** — medium-sized matrices spend their time in NumPy
  kernels that release the GIL; :func:`evaluate_all_threaded` partitions
  the worker loop across a thread pool over the *same* statistics object
  (every lazily-built cache is materialized up front so the chunks only
  ever read frozen arrays).  No export, no spawn, no per-shard memory.
* **A cost model** — :func:`auto_shard_choice` resolves ``shards="auto"``
  to a tier and shard count from the work proxy ``m^2 * n * fill``
  (the Lemma-4 term count) and the host's usable core count:

  ===========================================  ==========================
  work proxy ``m^2 * n * fill``                resolved tier
  ===========================================  ==========================
  ``< AUTO_SHARD_THREAD_MIN_WORK`` (2^22)      serial (overhead dominates)
  ``< AUTO_SHARD_PROCESS_MIN_WORK`` (2^27)     thread
  otherwise                                    process
  ===========================================  ==========================

  On hosts with fewer than two usable cores ``"auto"`` always resolves to
  serial: no tier can beat the serial path without real parallel hardware,
  and pretending otherwise would regress the very benchmarks sharding is
  meant to win.

Every tier is bit-identical to serial evaluation — shards evaluate
contiguous worker ranges against the same frozen statistics and the parent
concatenates the per-range results in range order, which is worker order.
The cross-backend differential suite enforces this for the thread tier and
for process sharding over each exportable backend.  See
:class:`~repro.core.m_worker.MWorkerEstimator` for the full determinism
contract.

Both tiers can additionally ship per-shard **dependency footprints**
(:mod:`repro.core.deps`) back through the same result channel
(``collect_footprints=``), merged in worker order like the estimates —
which is what lets the incremental evaluator's recomputes run sharded via
:func:`evaluate_worker_subset` instead of falling back to serial under the
legacy per-read observer.
"""

from __future__ import annotations

import atexit
import itertools
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import TYPE_CHECKING

import numpy as np

from repro.core.agreement import AgreementStatistics
from repro.data.dense_backend import _popcount
from repro.exceptions import ConfigurationError
from repro.types import WorkerErrorEstimate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.m_worker import MWorkerEstimator
    from repro.data.dense_backend import AgreementBackendBase
    from repro.data.response_matrix import ResponseMatrix

__all__ = [
    "AUTO_SHARD_PROCESS_MIN_WORK",
    "AUTO_SHARD_THREAD_MIN_WORK",
    "MAX_AUTO_SHARDS",
    "ShardExecutor",
    "SharedMatrixView",
    "auto_shard_choice",
    "available_cores",
    "contiguous_ranges",
    "evaluate_all_process",
    "evaluate_all_threaded",
    "evaluate_worker_subset",
    "get_executor",
    "parse_shard_spec",
    "resolve_execution",
]

#: Below this much Lemma-4 work (``m^2 * n * fill``) even thread-tier
#: chunking costs more than it saves — ``"auto"`` stays serial.  2^22 is
#: roughly the 60x1500 half-filled smoke matrix.
AUTO_SHARD_THREAD_MIN_WORK: int = 1 << 22

#: Above this much work the per-call shared-memory export (a memcpy of the
#: precomputed state) amortizes against the evaluation itself and process
#: shards beat threads; between the two limits ``"auto"`` picks the thread
#: tier (no export, no spawn, NumPy kernels release the GIL).
AUTO_SHARD_PROCESS_MIN_WORK: int = 1 << 27

#: ``"auto"`` never resolves to more shards than this: the worker loop's
#: parallel efficiency falls off well before the per-shard overhead stops
#: growing.
MAX_AUTO_SHARDS: int = 8


def available_cores() -> int:
    """Usable CPU cores (affinity-aware where the platform reports it)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def parse_shard_spec(spec: int | str) -> tuple[str, int | None]:
    """Validate a ``shards=`` knob value into ``(tier, shard count)``.

    Accepted values:

    * a positive integer — ``1`` means serial, ``N > 1`` the process tier
      (the historical meaning of ``shards=N``);
    * ``"auto"`` — defer to :func:`auto_shard_choice` (returned count is
      ``None``);
    * ``"thread:N"`` / ``"process:N"`` — pin the tier explicitly
      (``N == 1`` collapses to serial).

    Zero, negatives and anything else raise
    :class:`~repro.exceptions.ConfigurationError` — a silently-serial typo
    would hide a misconfiguration forever.
    """
    if isinstance(spec, bool):
        raise ConfigurationError(f"shards must be an integer or spec string, got {spec!r}")
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text == "auto":
            return ("auto", None)
        tier = "serial"
        for prefix in ("thread", "process"):
            if text.startswith(prefix + ":"):
                tier, text = prefix, text[len(prefix) + 1 :]
                break
        try:
            count = int(text)
        except ValueError:
            raise ConfigurationError(
                f"invalid shards spec {spec!r}: expected a positive integer, "
                "'auto', 'thread:N' or 'process:N'"
            ) from None
        if count < 1:
            raise ConfigurationError(f"shards must be at least 1, got {count}")
        if count == 1:
            return ("serial", 1)
        return (tier if tier != "serial" else "process", count)
    if not isinstance(spec, int):
        raise ConfigurationError(
            f"shards must be an integer or spec string, got {type(spec).__name__}"
        )
    if spec < 1:
        raise ConfigurationError(f"shards must be at least 1, got {spec}")
    return ("serial", 1) if spec == 1 else ("process", spec)


def auto_shard_choice(
    n_workers: int,
    n_tasks: int,
    n_responses: int,
    cores: int | None = None,
) -> tuple[str, int]:
    """Cost model behind ``shards="auto"``: pick ``(tier, shard count)``.

    The work proxy is ``m^2 * n * fill`` — the Lemma-4 term count that
    dominates batch evaluation — weighed against the documented
    :data:`AUTO_SHARD_THREAD_MIN_WORK` / :data:`AUTO_SHARD_PROCESS_MIN_WORK`
    thresholds (see the module docstring for the decision table).  The
    shard count is ``min(cores, MAX_AUTO_SHARDS, m)`` so shards never idle
    or outnumber the workers they evaluate.  ``cores`` overrides the probed
    host core count (tests pin both branches with it); hosts with fewer
    than two usable cores always resolve serial.
    """
    if cores is None:
        cores = available_cores()
    if cores < 2 or n_workers < 4:
        return ("serial", 1)
    cells = n_workers * n_tasks
    fill = n_responses / cells if cells else 1.0
    work = n_workers * n_workers * n_tasks * fill
    if work < AUTO_SHARD_THREAD_MIN_WORK:
        return ("serial", 1)
    shards = max(2, min(cores, MAX_AUTO_SHARDS, n_workers))
    if work < AUTO_SHARD_PROCESS_MIN_WORK:
        return ("thread", shards)
    return ("process", shards)


def resolve_execution(
    estimator: "MWorkerEstimator",
    matrix: "ResponseMatrix",
    stats: AgreementStatistics,
) -> tuple[str, int]:
    """Resolve an estimator's ``shards`` knob for one ``evaluate_all`` call.

    Returns ``(tier, shard count)`` with tier one of ``"serial"``,
    ``"thread"`` or ``"process"``.  Beyond the spec itself the guards force
    serial whenever the determinism contract cannot hold or parallelism
    cannot help: a custom ``rng`` (sequential generator consumption cannot
    be replicated across shards), an attached statistics observer (the
    legacy per-read recorder must see every read — only the dict backend
    and the differential suite's reference path still attach one; ledger
    footprints shard freely), the dict path (no vectorized backend to
    chunk or export), non-binary data, fewer workers than shards, and —
    for the process tier — a backend without ``supports_shared_export``.
    """
    tier, shards = parse_shard_spec(estimator.shards)
    if tier == "auto":
        tier, shards = auto_shard_choice(
            matrix.n_workers, matrix.n_tasks, matrix.n_responses
        )
    if tier == "serial":
        return ("serial", 1)
    if (
        estimator.rng is not None
        or stats.observer is not None
        or not stats.has_dense_backend
        or not matrix.is_binary
        or matrix.n_workers < shards
    ):
        return ("serial", 1)
    if tier == "process" and not getattr(
        stats.backend, "supports_shared_export", False
    ):
        return ("serial", 1)
    return (tier, shards)


def contiguous_ranges(n_workers: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(n_workers)`` into ``shards`` contiguous ``[start, stop)``.

    Contiguity is what makes concatenating per-shard results in shard order
    equal worker order 0..m-1 (the merge step of the determinism contract).
    """
    boundaries = np.linspace(0, n_workers, shards + 1).astype(int)
    return [
        (int(boundaries[index]), int(boundaries[index + 1]))
        for index in range(shards)
    ]


# --------------------------------------------------------------------------- #
# Shared-memory plumbing
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _ArraySpec:
    """Name/shape/dtype triplet describing one shared-memory array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedMatrixView:
    """The slice of the :class:`ResponseMatrix` interface shards need.

    Worker evaluation only consults the matrix for its dimensions, arity
    and per-worker response counts — everything else flows through the
    statistics backend.  The per-worker counts are computed **once** by the
    exporting parent (one popcount pass over the attempt plane) and shipped
    as a length-``m`` array, so ``n_tasks_of`` is an O(1) lookup instead of
    the O(n) row sum every estimate used to pay.
    """

    def __init__(self, task_counts: np.ndarray, n_tasks: int, arity: int) -> None:
        self._task_counts = task_counts
        self._n_tasks = int(n_tasks)
        self._arity = int(arity)

    @property
    def n_workers(self) -> int:
        return self._task_counts.shape[0]

    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def is_binary(self) -> bool:
        return self._arity == 2

    def n_tasks_of(self, worker: int) -> int:
        return int(self._task_counts[worker])


def _export_array(array: np.ndarray) -> tuple[SharedMemory, _ArraySpec]:
    """Copy ``array`` into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    segment = SharedMemory(create=True, size=max(array.nbytes, 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return segment, _ArraySpec(segment.name, array.shape, array.dtype.str)


def _attach_array(spec: _ArraySpec) -> tuple[SharedMemory, np.ndarray]:
    """Map an exported segment without adopting ownership of it.

    Before Python 3.13 every ``SharedMemory`` attachment registers with the
    resource tracker, which then unlinks the segment when *any* attaching
    process exits; the parent owns these segments, so child attachments are
    de-registered (or created with ``track=False`` where available).
    """
    try:
        segment = SharedMemory(name=spec.name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        # Suppress registration during the attach instead of registering and
        # unregistering: with several shards attaching the same segment, the
        # register/unregister pairs race in the shared tracker process and
        # spray KeyError tracebacks on exit.
        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None  # type: ignore[assignment]
        try:
            segment = SharedMemory(name=spec.name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    return segment, array


def _backend_class(name: str) -> type["AgreementBackendBase"]:
    """Map an exported backend's ``name`` to its class (in any process)."""
    if name == "dense":
        from repro.data.dense_backend import DenseAgreementBackend

        return DenseAgreementBackend
    if name == "sparse":
        from repro.data.sparse_backend import SparseAgreementBackend

        return SparseAgreementBackend
    if name == "bitset":
        from repro.data.sparse_backend import BitsetAgreementBackend

        return BitsetAgreementBackend
    raise ConfigurationError(f"backend {name!r} has no shared-state export")


# --------------------------------------------------------------------------- #
# The reusable executor
# --------------------------------------------------------------------------- #


class ShardExecutor:
    """Process-wide cache of spawn pools and thread pools, keyed by size.

    The first sharded implementation spawned a fresh ``"spawn"`` pool per
    ``evaluate_all`` call, which cost more than the evaluation it
    parallelized.  This executor creates each pool lazily on first use and
    keeps it alive, so repeated calls (the benchmark's best-of-N loop, a
    long-lived service answering many evaluations) pay the spawn once.
    Pools carry **no** per-call state: every task payload ships the
    shared-memory specs it needs and the pool workers cache their
    attachment keyed by export token (:func:`_run_shard`).

    Use :func:`get_executor` for the shared instance; construct directly
    (the class is a context manager) for an isolated, explicitly-scoped
    executor.  ``shutdown`` closes pools gracefully — workers drain and
    exit — and is idempotent.
    """

    def __init__(self) -> None:
        self._process_pools: dict[int, object] = {}
        self._thread_pools: dict[int, ThreadPoolExecutor] = {}
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def process_pool(self, shards: int):
        """The cached ``"spawn"`` pool with ``shards`` workers (lazily built)."""
        self._ensure_open()
        pool = self._process_pools.get(shards)
        if pool is None:
            pool = get_context("spawn").Pool(processes=shards)
            self._process_pools[shards] = pool
        return pool

    def thread_pool(self, shards: int) -> ThreadPoolExecutor:
        """The cached thread pool with ``shards`` workers (lazily built)."""
        self._ensure_open()
        pool = self._thread_pools.get(shards)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=shards, thread_name_prefix="repro-shard"
            )
            self._thread_pools[shards] = pool
        return pool

    def _ensure_open(self) -> None:
        if self._closed:
            raise ConfigurationError(
                "the shard executor has been shut down; call get_executor() "
                "for a fresh one"
            )

    def shutdown(self) -> None:
        """Close every cached pool (graceful drain); safe to call twice."""
        if self._closed:
            return
        self._closed = True
        for pool in self._process_pools.values():
            pool.close()
            pool.join()
        for thread_pool in self._thread_pools.values():
            thread_pool.shutdown(wait=True)
        self._process_pools.clear()
        self._thread_pools.clear()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()


_EXECUTOR: ShardExecutor | None = None


def get_executor() -> ShardExecutor:
    """The process-wide shared executor (recreated after a shutdown)."""
    global _EXECUTOR
    if _EXECUTOR is None or _EXECUTOR.closed:
        _EXECUTOR = ShardExecutor()
    return _EXECUTOR


@atexit.register
def _shutdown_executor_at_exit() -> None:  # pragma: no cover - interpreter exit
    if _EXECUTOR is not None:
        _EXECUTOR.shutdown()


# --------------------------------------------------------------------------- #
# Process tier
# --------------------------------------------------------------------------- #

#: Parent-side export token source: pool workers cache their shared-memory
#: attachment keyed by this, so the several ranges one call maps onto a
#: worker attach once per call, not once per range.
_EXPORT_TOKENS = itertools.count()

#: Pool-worker-side state: the current attachment (segments kept alive),
#: backend, matrix view and estimator, keyed by the export token.
_WORKER_STATE: dict[str, object] = {}


def _estimator_config(estimator: "MWorkerEstimator") -> dict[str, object]:
    """Every estimator field except the ones the sharded path redefines.

    ``shards`` (pool workers must stay serial) and ``rng`` (guarded to None
    by :func:`resolve_execution` — generators cannot be consumed in a pool
    without diverging from the serial sequence) are excluded; deriving the
    set from ``dataclasses.fields`` keeps future fields from being silently
    dropped.
    """
    return {
        field.name: getattr(estimator, field.name)
        for field in fields(estimator)
        if field.name not in ("shards", "rng")
    }


def _install_shard_state(
    token: str,
    specs: dict[str, _ArraySpec],
    meta: tuple[str, int, int, int, dict[str, object]],
) -> None:
    """Attach this call's shared arrays and rebuild the evaluation objects.

    Runs in a pool worker on the first range of a new export token.  Any
    previously attached segments are closed first — a long-lived pool must
    not pin the shared memory of every evaluation it ever served.
    """
    from repro.core.m_worker import MWorkerEstimator

    backend_name, arity, n_workers, n_tasks, estimator_config = meta
    for segment in _WORKER_STATE.get("segments", ()):  # type: ignore[union-attr]
        segment.close()
    _WORKER_STATE.clear()
    segments = []
    arrays: dict[str, np.ndarray] = {}
    for key, spec in specs.items():
        segment, array = _attach_array(spec)
        segments.append(segment)
        arrays[key] = array
    task_counts = arrays.pop("task_counts")
    backend = _backend_class(backend_name).attach_shared_state(
        arrays, n_workers=n_workers, n_tasks=n_tasks, arity=arity
    )
    _WORKER_STATE["token"] = token
    _WORKER_STATE["segments"] = segments
    _WORKER_STATE["matrix"] = SharedMatrixView(task_counts, n_tasks, arity)
    _WORKER_STATE["stats"] = AgreementStatistics(matrix=None, backend=backend)
    _WORKER_STATE["estimator"] = MWorkerEstimator(shards=1, **estimator_config)


def _run_shard(payload):
    """Evaluate one contiguous worker chunk in a pool worker.

    Delegates to :meth:`MWorkerEstimator.evaluate_worker_range`, so a shard
    runs the same cross-worker batched stage — and, with ``batch_lemma4``,
    the same grouped Lemma-4/5 aggregation — over its range that the serial
    path runs over all workers; results are identical either way because
    every batched operation is per-slice.  The chunk is either a
    ``(start, stop)`` range (the full-matrix batch) or an explicit worker
    id list (the incremental evaluator's dirty subset).  With
    ``collect_footprints`` the shard returns ``(estimates, footprints)`` —
    the per-shard dependency log rides the same result channel as the
    estimates and is merged in worker order by the parent.
    """
    token, specs, meta, chunk, collect_footprints = payload
    if _WORKER_STATE.get("token") != token:
        _install_shard_state(token, specs, meta)
    estimator = _WORKER_STATE["estimator"]
    matrix = _WORKER_STATE["matrix"]
    stats = _WORKER_STATE["stats"]
    if isinstance(chunk, tuple):
        workers = list(range(chunk[0], chunk[1]))
    else:
        workers = list(chunk)
    return estimator.evaluate_worker_range(
        matrix, stats, workers, collect_footprints=collect_footprints
    )


def _worker_chunks(
    matrix: "ResponseMatrix", shards: int, workers: list[int] | None
) -> list:
    """Contiguous per-shard chunks: ranges for a full batch, lists otherwise."""
    if workers is None:
        return contiguous_ranges(matrix.n_workers, shards)
    return [
        chunk.tolist()
        for chunk in np.array_split(np.asarray(workers, dtype=np.int64), shards)
        if chunk.size
    ]


def evaluate_all_process(
    estimator: "MWorkerEstimator",
    matrix: "ResponseMatrix",
    stats: AgreementStatistics,
    shards: int,
    *,
    workers: list[int] | None = None,
    collect_footprints: bool = False,
):
    """Evaluate every worker, sharded across the reusable process pool.

    The parent materializes the backend's precomputed state once, exports
    it through shared memory, and maps contiguous worker ranges over the
    cached spawn pool; shard workers attach views (no rebuilds) and the
    segments are closed and unlinked when the call returns — including when
    the export, pool dispatch or a shard fails partway, so an aborted call
    never leaks shared memory.

    ``workers`` restricts evaluation to an ordered subset (the incremental
    evaluator's dirty workers) and ``collect_footprints`` makes the return
    value ``(estimates, footprints)`` with each shard's dependency log
    shipped back through the result channel and merged in worker order.

    Callers must have checked :func:`resolve_execution`; in particular
    ``stats`` must carry a backend with ``supports_shared_export`` and
    at least ``shards`` workers to evaluate.
    """
    backend = stats.backend
    assert backend is not None and backend.supports_shared_export, (
        "process-sharded evaluation requires a backend with shared-state export"
    )
    exports = dict(backend.export_shared_state())
    exports["task_counts"] = _popcount(backend._packed_rows).sum(
        axis=1, dtype=np.int64
    )
    meta = (
        backend.name,
        matrix.arity,
        matrix.n_workers,
        matrix.n_tasks,
        _estimator_config(estimator),
    )
    token = f"{os.getpid()}:{next(_EXPORT_TOKENS)}"
    chunks = _worker_chunks(matrix, shards, workers)
    segments: list[SharedMemory] = []
    specs: dict[str, _ArraySpec] = {}
    try:
        for key, array in exports.items():
            segment, spec = _export_array(array)
            segments.append(segment)
            specs[key] = spec
        pool = get_executor().process_pool(shards)
        shard_results = pool.map(
            _run_shard,
            [(token, specs, meta, c, collect_footprints) for c in chunks],
        )
    finally:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
    # Contiguous ranges concatenated in shard order == worker order 0..m-1.
    if collect_footprints:
        return (
            [estimate for ests, _ in shard_results for estimate in ests],
            [footprint for _, fps in shard_results for footprint in fps],
        )
    return [estimate for shard in shard_results for estimate in shard]


# --------------------------------------------------------------------------- #
# Thread tier
# --------------------------------------------------------------------------- #


def evaluate_all_threaded(
    estimator: "MWorkerEstimator",
    matrix: "ResponseMatrix",
    stats: AgreementStatistics,
    shards: int,
    *,
    workers: list[int] | None = None,
    collect_footprints: bool = False,
):
    """Evaluate every worker across the cached thread pool, no export needed.

    The chunks share the parent's statistics object directly, which is only
    sound because every lazily-built cache they could race to build is
    materialized **before** the fan-out; afterwards the chunks exclusively
    read frozen arrays (the NumPy kernels release the GIL, which is where
    the tier's parallelism comes from).  Results are concatenated in range
    order — worker order — and are bit-identical to serial evaluation: each
    worker's numbers depend only on the frozen statistics and the estimator
    configuration, never on chunk membership (the determinism contract of
    :class:`~repro.core.m_worker.MWorkerEstimator`).

    ``workers`` / ``collect_footprints`` mirror
    :func:`evaluate_all_process`: evaluate an ordered subset, and return
    ``(estimates, footprints)`` with the per-chunk dependency logs merged
    in worker order.
    """
    backend = stats.backend
    assert backend is not None, "the thread tier requires a vectorized backend"
    # Materialize every lazily-built cache the chunks read: pair counts,
    # their float64/list mirrors, the pre-clamped rates for this estimator's
    # margin, packed rows (triple counts) and the triple tensor / float32
    # attempts where the backend caches them.
    backend.common_counts
    backend.agreement_counts
    backend.common_counts_f64
    backend.common_counts_list
    backend.clamped_rate_data(estimator.clamp_margin)
    backend._packed_rows
    backend.triple_count_tensor()
    getattr(backend, "_attempts_as_f32", None)
    pool = get_executor().thread_pool(shards)
    futures = [
        pool.submit(
            estimator.evaluate_worker_range,
            matrix,
            stats,
            list(range(chunk[0], chunk[1])) if isinstance(chunk, tuple) else chunk,
            collect_footprints=collect_footprints,
        )
        for chunk in _worker_chunks(matrix, shards, workers)
    ]
    if collect_footprints:
        results: list[WorkerErrorEstimate] = []
        footprints = []
        for future in futures:
            chunk_results, chunk_footprints = future.result()
            results.extend(chunk_results)
            footprints.extend(chunk_footprints)
        return results, footprints
    results = []
    for future in futures:
        results.extend(future.result())
    return results


def evaluate_worker_subset(
    estimator: "MWorkerEstimator",
    matrix: "ResponseMatrix",
    stats: AgreementStatistics,
    workers: list[int],
    *,
    collect_footprints: bool = False,
):
    """Evaluate an ordered worker subset under the estimator's ``shards`` spec.

    The incremental evaluator's bulk-recompute entry point: resolves the
    execution tier exactly like ``evaluate_all`` (same cost model, same
    serial-fallback guards) but partitions only the given workers — with
    the additional guard that fewer dirty workers than shards stay serial
    (a shard per worker cannot amortize its overhead).  Returns the
    estimates in ``workers`` order, or ``(estimates, footprints)`` when
    ``collect_footprints`` is set.
    """
    tier, shards = resolve_execution(estimator, matrix, stats)
    if len(workers) < shards:
        tier = "serial"
    if tier == "process":
        return evaluate_all_process(
            estimator,
            matrix,
            stats,
            shards,
            workers=workers,
            collect_footprints=collect_footprints,
        )
    if tier == "thread":
        return evaluate_all_threaded(
            estimator,
            matrix,
            stats,
            shards,
            workers=workers,
            collect_footprints=collect_footprints,
        )
    return estimator.evaluate_worker_range(
        matrix, stats, workers, collect_footprints=collect_footprints
    )
