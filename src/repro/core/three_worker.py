"""Algorithm A1: 3-worker binary estimation (regular and non-regular data).

The error rate of worker ``i`` is recovered from the three pairwise
agreement rates via Eq. (1)::

    p_i = 1/2 - 1/2 * sqrt( (2 q_ij - 1)(2 q_ik - 1) / (2 q_jk - 1) )

and the confidence interval follows from Theorem 1 using

* the partial derivatives of that function (Lemma 2), and
* the covariances of the agreement-rate estimators (Lemma 1 for regular
  data; Lemma 3 generalizes it to non-regular data, with Lemma 1 as the
  special case ``c_ij = n``).

The module also exposes the building blocks (:func:`error_rate_from_agreements`,
:func:`error_rate_gradient`, :func:`agreement_covariance_matrix`) that the
m-worker estimator of Algorithm A2 reuses per triple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DegenerateEstimateError,
    InsufficientDataError,
)
from repro.core.agreement import AgreementStatistics
from repro.core.delta_method import DeltaMethodModel, batched_deviations_3
from repro.data.dense_backend import resolve_triple_backend
from repro.stats.linalg import quadratic_form_3
from repro.data.response_matrix import ResponseMatrix
from repro.types import (
    ConfidenceInterval,
    EstimateStatus,
    TripleEstimate,
    WorkerErrorEstimate,
)

__all__ = [
    "MIN_AGREEMENT_MARGIN",
    "smoothed_variance_rate",
    "clamp_agreement",
    "error_rate_from_agreements",
    "error_rate_gradient",
    "agreement_covariance_matrix",
    "ThreeWorkerResult",
    "BatchedTripleArrays",
    "evaluate_three_workers",
    "evaluate_worker_in_triple",
    "evaluate_triples_batched",
    "evaluate_triples_batched_arrays",
]

#: Minimum allowed distance of an agreement rate above 1/2.  Eq. (1) has a
#: singularity at q = 1/2 (Section III-E2 discusses the resulting volatility),
#: so rates at or below 1/2 + margin are clamped and the estimate is flagged.
MIN_AGREEMENT_MARGIN: float = 1e-3


def smoothed_variance_rate(q: float, common_tasks: int) -> float:
    """Laplace-smoothed agreement rate used inside variance formulas.

    On sparse data a pair of workers often agrees on *every* one of a handful
    of common tasks, making the plug-in variance ``q (1 - q) / c`` collapse to
    zero and producing zero-width intervals that can never cover the truth.
    Smoothing the rate as ``(agreements + 1) / (c + 2)`` for the *variance*
    computation only (the point estimate still uses the raw rate) keeps the
    uncertainty honest at the boundary; for moderate ``c`` the correction is
    negligible.
    """
    if common_tasks <= 0:
        raise InsufficientDataError("variance smoothing requires at least one common task")
    agreements = q * common_tasks
    return (agreements + 1.0) / (common_tasks + 2.0)


def clamp_agreement(q: float, margin: float = MIN_AGREEMENT_MARGIN) -> tuple[float, bool]:
    """Clamp an agreement rate into ``(1/2 + margin, 1]``.

    Returns the (possibly clamped) rate and a flag saying whether clamping
    happened.  Rates above 1 (impossible, but guarded) are clamped down to 1.
    """
    clamped = False
    if q > 1.0:
        q, clamped = 1.0, True
    if q < 0.5 + margin:
        q, clamped = 0.5 + margin, True
    return q, clamped


def error_rate_from_agreements(q_ij: float, q_ik: float, q_jk: float) -> float:
    """Eq. (1): the error rate of worker ``i`` from the three agreement rates.

    ``q_ij`` and ``q_ik`` are the agreements of worker ``i`` with the other
    two workers; ``q_jk`` is the agreement between the other two.  All three
    must exceed 1/2 (clamp first with :func:`clamp_agreement` if necessary).
    """
    for name, q in (("q_ij", q_ij), ("q_ik", q_ik), ("q_jk", q_jk)):
        if q <= 0.5:
            raise DegenerateEstimateError(
                f"agreement rate {name}={q} is not above 1/2; "
                "Eq. (1) is undefined (clamp or prune spammers first)"
            )
    ratio = (2.0 * q_ij - 1.0) * (2.0 * q_ik - 1.0) / (2.0 * q_jk - 1.0)
    return 0.5 - 0.5 * math.sqrt(ratio)


def error_rate_gradient(q_ij: float, q_ik: float, q_jk: float) -> np.ndarray:
    """Lemma 2: partial derivatives of Eq. (1) w.r.t. ``(q_ij, q_ik, q_jk)``.

    Returns the gradient vector ``[df/dq_ij, df/dq_ik, df/dq_jk]``.
    """
    for name, q in (("q_ij", q_ij), ("q_ik", q_ik), ("q_jk", q_jk)):
        if q <= 0.5:
            raise DegenerateEstimateError(
                f"agreement rate {name}={q} is not above 1/2; "
                "the gradient of Eq. (1) is undefined"
            )
    a = q_ij - 0.5
    b = q_ik - 0.5
    c = q_jk - 0.5
    # c**3 is spelled as explicit multiplications: libm pow(c, 3) and NumPy's
    # vectorized cube can disagree in the last ulp, whereas a * a sequence of
    # IEEE multiplies is identical scalar or batched.
    c_cubed = (c * c) * c
    d_ij = -math.sqrt(b / (8.0 * a * c))
    d_ik = -math.sqrt(a / (8.0 * b * c))
    d_jk = math.sqrt(a * b / (8.0 * c_cubed))
    return np.array([d_ij, d_ik, d_jk])


def agreement_covariance_matrix(
    q: dict[tuple[int, int], float],
    c_pair: dict[tuple[int, int], int],
    c_triple: int,
    error_rates: dict[int, float],
    workers: tuple[int, int, int],
) -> np.ndarray:
    """Lemma 3 (and its special case Lemma 1): covariance of the three Q's.

    Parameters
    ----------
    q:
        Agreement rates keyed by sorted worker pair.
    c_pair:
        Common-task counts keyed by sorted worker pair.
    c_triple:
        Number of tasks attempted by all three workers.
    error_rates:
        Plug-in error-rate estimates ``p_i`` keyed by worker (needed for the
        off-diagonal terms).
    workers:
        The triple ``(i, j, k)``; the returned matrix is ordered as
        ``(Q_ij, Q_ik, Q_jk)``.

    Notes
    -----
    * Diagonal: ``Var(Q_ab) = q_ab (1 - q_ab) / c_ab``.
    * Off-diagonal, pairs sharing worker ``b``:
      ``Cov(Q_ab, Q_bc) = c_abc * p_b (1 - p_b) (2 q_ac - 1) / (c_ab c_bc)``.
    """
    i, j, k = workers
    pairs = [(i, j), (i, k), (j, k)]
    keys = [tuple(sorted(p)) for p in pairs]
    cov = np.zeros((3, 3))
    for idx, key in enumerate(keys):
        c_ab = c_pair[key]
        if c_ab <= 0:
            raise InsufficientDataError(
                f"workers {key} share no common task; covariance undefined"
            )
        q_ab = smoothed_variance_rate(q[key], c_ab)
        cov[idx, idx] = q_ab * (1.0 - q_ab) / c_ab
    # Off-diagonal terms: each pair of the three Q's shares exactly one worker.
    pair_indices = [(0, 1), (0, 2), (1, 2)]
    for idx_a, idx_b in pair_indices:
        workers_a = set(pairs[idx_a])
        workers_b = set(pairs[idx_b])
        shared = workers_a & workers_b
        others = tuple(sorted(workers_a.symmetric_difference(workers_b)))
        shared_worker = shared.pop()
        p_shared = error_rates[shared_worker]
        q_others = q[others]
        c_a = c_pair[tuple(sorted(pairs[idx_a]))]
        c_b = c_pair[tuple(sorted(pairs[idx_b]))]
        value = c_triple * p_shared * (1.0 - p_shared) * (2.0 * q_others - 1.0) / (c_a * c_b)
        cov[idx_a, idx_b] = value
        cov[idx_b, idx_a] = value
    return cov


@dataclass(frozen=True)
class ThreeWorkerResult:
    """Intermediate result of the 3-worker procedure for one worker.

    Carries everything Algorithm A2 needs to aggregate across triples: the
    point estimate, its standard deviation, and the partial derivatives with
    respect to the agreement rates involving the evaluated worker.
    """

    worker: int
    partners: tuple[int, int]
    error_rate: float
    deviation: float
    #: derivative of the estimate with respect to ``q_{worker, partner}``
    derivative_by_partner: dict[int, float]
    #: derivative with respect to the partners' mutual agreement rate
    derivative_partners: float
    status: EstimateStatus

    def interval(self, confidence: float) -> ConfidenceInterval:
        """The c-confidence interval implied by (error_rate, deviation)."""
        model = DeltaMethodModel(
            value=self.error_rate,
            gradient=np.array([1.0]),
            covariance=np.array([[self.deviation**2]]),
        )
        return model.interval(confidence)


def _triple_estimates(
    stats: AgreementStatistics,
    workers: tuple[int, int, int],
    clamp_margin: float,
) -> tuple[dict[tuple[int, int], float], dict[tuple[int, int], int], int, dict[int, float], bool]:
    """Agreement rates, pair counts, triple count and plug-in error rates.

    Shared preparation for evaluating any worker of a triple.  Returns a
    clamping flag so callers can mark the estimate status.
    """
    i, j, k = workers
    keys = [tuple(sorted(p)) for p in ((i, j), (i, k), (j, k))]
    q: dict[tuple[int, int], float] = {}
    c_pair: dict[tuple[int, int], int] = {}
    clamped_any = False
    for key in keys:
        common = stats.common_count(*key)
        if common == 0:
            raise InsufficientDataError(
                f"workers {key} share no common task; the triple {workers} "
                "cannot be evaluated"
            )
        rate, clamped = clamp_agreement(stats.agreement_rate(*key), clamp_margin)
        clamped_any = clamped_any or clamped
        q[key] = rate
        c_pair[key] = common
    c_triple = stats.triple_common_count(i, j, k)
    # Plug-in point estimates for all three workers (needed by Lemma 3).
    error_rates: dict[int, float] = {}
    for worker in workers:
        others = [w for w in workers if w != worker]
        q_ij = q[tuple(sorted((worker, others[0])))]
        q_ik = q[tuple(sorted((worker, others[1])))]
        q_jk = q[tuple(sorted((others[0], others[1])))]
        estimate = error_rate_from_agreements(q_ij, q_ik, q_jk)
        error_rates[worker] = float(min(max(estimate, 0.0), 0.5))
    return q, c_pair, c_triple, error_rates, clamped_any


def evaluate_worker_in_triple(
    stats: AgreementStatistics,
    worker: int,
    partners: tuple[int, int],
    clamp_margin: float = MIN_AGREEMENT_MARGIN,
) -> ThreeWorkerResult:
    """Run the 3-worker procedure of Section III-B for one worker of a triple.

    This is Step 2 of Algorithm A2 — everything except the final conversion
    to a confidence interval, so the caller can aggregate multiple triples.
    """
    j1, j2 = partners
    if len({worker, j1, j2}) != 3:
        raise ConfigurationError("a triple requires three distinct workers")
    workers = (worker, j1, j2)
    q, c_pair, c_triple, error_rates, clamped = _triple_estimates(
        stats, workers, clamp_margin
    )
    key_ij = tuple(sorted((worker, j1)))
    key_ik = tuple(sorted((worker, j2)))
    key_jk = tuple(sorted((j1, j2)))
    q_ij, q_ik, q_jk = q[key_ij], q[key_ik], q[key_jk]

    estimate = error_rate_from_agreements(q_ij, q_ik, q_jk)
    gradient = error_rate_gradient(q_ij, q_ik, q_jk)
    covariance = agreement_covariance_matrix(q, c_pair, c_triple, error_rates, workers)
    # Theorem 1 with the pinned-order quadratic form (not BLAS g @ C @ g) so
    # the batched stage can replay the identical operation sequence.
    deviation = math.sqrt(max(quadratic_form_3(gradient, covariance), 0.0))

    status = EstimateStatus.CLAMPED if clamped else EstimateStatus.OK
    return ThreeWorkerResult(
        worker=worker,
        partners=(j1, j2),
        error_rate=estimate,
        deviation=deviation,
        derivative_by_partner={j1: float(gradient[0]), j2: float(gradient[1])},
        derivative_partners=float(gradient[2]),
        status=status,
    )


@dataclass(frozen=True)
class BatchedTripleArrays:
    """Raw per-triple outputs of the batched 3-worker procedure.

    All arrays are aligned with the requested pair list.  ``usable`` marks
    triples the scalar loop would have evaluated (the rest would raise
    :class:`~repro.exceptions.InsufficientDataError` there);
    ``needs_scalar`` marks usable triples whose batched evaluation hit a
    non-finite anomaly and must be delegated to the scalar path (should be
    unreachable; kept as a safety net so anomalies surface exactly as the
    sequential loop would surface them).
    """

    usable: np.ndarray
    needs_scalar: np.ndarray
    estimates: np.ndarray
    deviations: np.ndarray
    d_partner_a: np.ndarray
    d_partner_b: np.ndarray
    d_partners: np.ndarray
    clamped: np.ndarray

    def slice(self, start: int, stop: int) -> "BatchedTripleArrays":
        """The ``[start, stop)`` window — one worker's rows of a
        cross-worker batch."""
        return BatchedTripleArrays(
            usable=self.usable[start:stop],
            needs_scalar=self.needs_scalar[start:stop],
            estimates=self.estimates[start:stop],
            deviations=self.deviations[start:stop],
            d_partner_a=self.d_partner_a[start:stop],
            d_partner_b=self.d_partner_b[start:stop],
            d_partners=self.d_partners[start:stop],
            clamped=self.clamped[start:stop],
        )


def evaluate_triples_batched_arrays(
    stats: AgreementStatistics,
    worker: int | np.ndarray,
    pairs: list[tuple[int, int]],
    clamp_margin: float = MIN_AGREEMENT_MARGIN,
) -> BatchedTripleArrays:
    """Array-level core of :func:`evaluate_triples_batched`.

    The m-worker estimator consumes these arrays directly (building its
    :class:`~repro.types.TripleEstimate` records without an intermediate
    :class:`ThreeWorkerResult` per triple); the public wrapper materializes
    the per-triple result objects.  See :func:`evaluate_triples_batched`
    for the bit-identity contract.

    ``worker`` may be a single id (all triples evaluate that worker) or an
    array aligned with ``pairs`` — the cross-worker form in which
    ``MWorkerEstimator.evaluate_all`` concatenates every worker's triples
    into one stage invocation.  The cross-worker form requires the fast
    cached inputs (a vectorized backend, no observer).
    """
    if not stats.has_dense_backend:
        raise ConfigurationError(
            "evaluate_triples_batched requires a vectorized statistics "
            "backend; use AgreementStatistics.precompute or backend='dense'"
        )
    if not pairs:
        empty = np.zeros(0)
        empty_mask = np.zeros(0, dtype=bool)
        return BatchedTripleArrays(
            empty_mask, empty_mask, empty, empty, empty, empty, empty, empty_mask
        )
    partners_a = np.fromiter((p[0] for p in pairs), dtype=np.int64, count=len(pairs))
    partners_b = np.fromiter((p[1] for p in pairs), dtype=np.int64, count=len(pairs))
    multi_worker = np.ndim(worker) != 0
    if multi_worker:
        workers = np.asarray(worker, dtype=np.int64)
        if workers.shape != partners_a.shape:
            raise ConfigurationError(
                "a worker array must have one entry per triple"
            )
        distinct = (
            (workers != partners_a)
            & (workers != partners_b)
            & (partners_a != partners_b)
        )
        if not bool(distinct.all()):
            raise ConfigurationError("a triple requires three distinct workers")
    else:
        for j1, j2 in pairs:
            if len({worker, j1, j2}) != 3:
                raise ConfigurationError(
                    "a triple requires three distinct workers"
                )
    fast_inputs = stats.triple_stage_inputs_fast(
        worker, partners_a, partners_b, clamp_margin
    )
    if fast_inputs is None and multi_worker:
        raise ConfigurationError(
            "the cross-worker batch requires the cached fast inputs "
            "(dense backend without an observer)"
        )
    if fast_inputs is not None:
        # Rates, 2q-1 terms and clamp flags gathered from the batch-level
        # caches (identical values to the inline computation below).
        (
            c_1, c_2, c_3,
            q_1, q_2, q_3,
            t_1, t_2, t_3,
            clamped_1, clamped_2, clamped_3,
            c_t,
        ) = fast_inputs
    else:
        inputs = stats.triple_stage_inputs(worker, partners_a, partners_b)
        c_1, c_2, c_3 = inputs.common_wa, inputs.common_wb, inputs.common_ab
        c_t = inputs.triple_counts
        lower = 0.5 + clamp_margin

        def clamp(
            agreements: np.ndarray, common: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray]:
            # Elementwise replica of clamp_agreement's two sequential guards.
            with np.errstate(divide="ignore", invalid="ignore"):
                q = agreements / common
            over = q > 1.0
            q = np.where(over, 1.0, q)
            under = q < lower
            q = np.where(under, lower, q)
            return q, over | under

        q_1, clamped_1 = clamp(inputs.agree_wa, c_1)
        q_2, clamped_2 = clamp(inputs.agree_wb, c_2)
        q_3, clamped_3 = clamp(inputs.agree_ab, c_3)
        t_1 = 2.0 * q_1 - 1.0
        t_2 = 2.0 * q_2 - 1.0
        t_3 = 2.0 * q_3 - 1.0
    usable = (c_1 > 0) & (c_2 > 0) & (c_3 > 0)
    clamped = clamped_1 | clamped_2 | clamped_3

    degenerate = usable & ((q_1 <= 0.5) | (q_2 <= 0.5) | (q_3 <= 0.5))
    if bool(degenerate.any()):
        # The sequential loop raises at the first degenerate triple; replay
        # that triple through the scalar path for the identical exception.
        first = int(np.flatnonzero(degenerate)[0])
        first_worker = int(workers[first]) if multi_worker else worker
        evaluate_worker_in_triple(
            stats, first_worker, pairs[first], clamp_margin=clamp_margin
        )
        raise DegenerateEstimateError(  # pragma: no cover - scalar raises above
            "batched triple stage detected a degenerate agreement rate"
        )

    def eq1(t_a: np.ndarray, t_b: np.ndarray, t_c: np.ndarray) -> np.ndarray:
        # 0.5 - 0.5 * sqrt((2 q_a - 1)(2 q_b - 1) / (2 q_c - 1)), elementwise
        # in error_rate_from_agreements' operation order (the 2q - 1 terms
        # are shared subexpressions across the three plug-in estimates).
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = t_a * t_b / t_c
            return 0.5 - 0.5 * np.sqrt(ratio)

    def clip_rate(estimate: np.ndarray) -> np.ndarray:
        # float(min(max(estimate, 0.0), 0.5)) elementwise.
        clipped = np.where(estimate < 0.0, 0.0, estimate)
        return np.where(clipped > 0.5, 0.5, clipped)

    # Eq. (1) for the evaluated worker, and the plug-in rates of all three
    # triple members (Lemma 3 needs the partners' too).
    estimates = eq1(t_1, t_2, t_3)
    p_worker = clip_rate(estimates)
    p_a = clip_rate(eq1(t_1, t_3, t_2))
    p_b = clip_rate(eq1(t_2, t_3, t_1))

    # Lemma 2 gradients (same spelled-out cube as error_rate_gradient).
    a = q_1 - 0.5
    b = q_2 - 0.5
    c = q_3 - 0.5
    c_cubed = (c * c) * c
    with np.errstate(divide="ignore", invalid="ignore"):
        d_1 = -np.sqrt(b / (8.0 * a * c))
        d_2 = -np.sqrt(a / (8.0 * b * c))
        d_3 = np.sqrt(a * b / (8.0 * c_cubed))

    # Lemma 1/3 covariance entries, in agreement_covariance_matrix's order.
    def smoothed(q: np.ndarray, common: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return (q * common + 1.0) / (common + 2.0)

    def diagonal(q: np.ndarray, common: np.ndarray) -> np.ndarray:
        rate = smoothed(q, common)
        with np.errstate(divide="ignore", invalid="ignore"):
            return rate * (1.0 - rate) / common

    with np.errstate(divide="ignore", invalid="ignore"):
        cov_01 = c_t * p_worker * (1.0 - p_worker) * t_3 / (c_1 * c_2)
        cov_02 = c_t * p_a * (1.0 - p_a) * t_2 / (c_1 * c_3)
        cov_12 = c_t * p_b * (1.0 - p_b) * t_1 / (c_2 * c_3)

    covariances = np.empty((len(pairs), 3, 3))
    covariances[:, 0, 0] = diagonal(q_1, c_1)
    covariances[:, 1, 1] = diagonal(q_2, c_2)
    covariances[:, 2, 2] = diagonal(q_3, c_3)
    covariances[:, 0, 1] = covariances[:, 1, 0] = cov_01
    covariances[:, 0, 2] = covariances[:, 2, 0] = cov_02
    covariances[:, 1, 2] = covariances[:, 2, 1] = cov_12
    gradients = np.stack([d_1, d_2, d_3], axis=1)
    deviations = batched_deviations_3(gradients, covariances)

    finite = (
        np.isfinite(estimates)
        & np.isfinite(deviations)
        & np.all(np.isfinite(gradients), axis=1)
    )
    return BatchedTripleArrays(
        usable=usable,
        needs_scalar=usable & ~finite,
        estimates=estimates,
        deviations=deviations,
        d_partner_a=d_1,
        d_partner_b=d_2,
        d_partners=d_3,
        clamped=clamped,
    )


def evaluate_triples_batched(
    stats: AgreementStatistics,
    worker: int,
    pairs: list[tuple[int, int]],
    clamp_margin: float = MIN_AGREEMENT_MARGIN,
) -> list[ThreeWorkerResult | None]:
    """Run the 3-worker procedure on every triple of a batch in one shot.

    The batched equivalent of calling :func:`evaluate_worker_in_triple` once
    per ``(worker, j1, j2)`` triple: the agreement rates of all triples are
    stacked into arrays, and the Eq. (1) estimates, Lemma-2 gradients,
    Lemma-1/3 covariance entries and Theorem-1 deviations are evaluated with
    elementwise NumPy arithmetic that replays the scalar code's exact IEEE
    operation sequence — every returned :class:`ThreeWorkerResult` is
    bit-identical to its scalar counterpart.  Requires a dense statistics
    backend.

    Divergences from the scalar calls are mapped, per triple, to the same
    observable behavior:

    * a triple whose scalar evaluation would raise
      :class:`~repro.exceptions.InsufficientDataError` (some pair shares no
      task) yields ``None`` in its slot instead — callers aggregating
      triples skip those either way;
    * a triple whose scalar evaluation would raise any other error (e.g.
      :class:`~repro.exceptions.DegenerateEstimateError` when
      ``clamp_margin <= 0`` lets a rate hit 1/2 exactly) is re-evaluated
      through the scalar path so the identical exception propagates, and it
      is raised at the same batch position the sequential loop would have
      reached first.
    """
    arrays = evaluate_triples_batched_arrays(
        stats, worker, pairs, clamp_margin=clamp_margin
    )
    results: list[ThreeWorkerResult | None] = [None] * len(pairs)
    for t in np.flatnonzero(arrays.usable):
        t = int(t)
        if arrays.needs_scalar[t]:
            results[t] = evaluate_worker_in_triple(
                stats, worker, pairs[t], clamp_margin=clamp_margin
            )
            continue
        j1, j2 = pairs[t]
        results[t] = ThreeWorkerResult(
            worker=worker,
            partners=(j1, j2),
            error_rate=float(arrays.estimates[t]),
            deviation=float(arrays.deviations[t]),
            derivative_by_partner={
                j1: float(arrays.d_partner_a[t]),
                j2: float(arrays.d_partner_b[t]),
            },
            derivative_partners=float(arrays.d_partners[t]),
            status=EstimateStatus.CLAMPED if arrays.clamped[t] else EstimateStatus.OK,
        )
    return results


def evaluate_three_workers(
    matrix: ResponseMatrix,
    confidence: float,
    workers: tuple[int, int, int] | None = None,
    clamp_margin: float = MIN_AGREEMENT_MARGIN,
    backend: str = "auto",
) -> list[WorkerErrorEstimate]:
    """Algorithm A1: confidence intervals for all three workers of a triple.

    Works for both regular and non-regular data — the only difference is the
    covariance formula, and Lemma 3 covers both.

    Parameters
    ----------
    matrix:
        Binary response data.
    confidence:
        Confidence level ``c`` of the intervals.
    workers:
        The triple to evaluate; defaults to workers ``(0, 1, 2)`` and is
        required when the matrix has more than three workers.
    clamp_margin:
        How far above 1/2 agreement rates are forced to stay (numerical
        guard around the Eq. (1) singularity).
    backend:
        Agreement-statistics backend (``"auto"``, ``"dense"``, ``"sparse"``,
        ``"bitset"`` or ``"dict"``); the choice does not affect the produced
        intervals.
    """
    if not matrix.is_binary:
        raise ConfigurationError(
            "evaluate_three_workers handles binary data; use the k-ary "
            "estimator for higher arities"
        )
    if workers is None:
        if matrix.n_workers != 3:
            raise ConfigurationError(
                "matrix has more than three workers; pass the triple explicitly"
            )
        workers = (0, 1, 2)
    if len(set(workers)) != 3:
        raise ConfigurationError("the three workers must be distinct")
    # Triple-scoped query: under "auto", skip building a full dense backend
    # for large matrices just to read three workers' statistics.
    stats = AgreementStatistics(
        matrix=matrix, backend=resolve_triple_backend(matrix, backend)
    )
    results = []
    for worker in workers:
        partners = tuple(w for w in workers if w != worker)
        triple_result = evaluate_worker_in_triple(
            stats, worker, (partners[0], partners[1]), clamp_margin=clamp_margin
        )
        interval = triple_result.interval(confidence)
        # The 3-worker case has exactly one (implicit) triple; materialize it
        # so ``triples`` and ``weights`` stay aligned, as the
        # WorkerErrorEstimate invariant requires.
        implicit_triple = TripleEstimate(
            worker=worker,
            partners=triple_result.partners,
            error_rate=triple_result.error_rate,
            deviation=triple_result.deviation,
            derivatives=dict(triple_result.derivative_by_partner),
            status=triple_result.status,
        )
        results.append(
            WorkerErrorEstimate(
                worker=worker,
                interval=interval,
                n_tasks=matrix.n_tasks_of(worker),
                triples=(implicit_triple,),
                weights=(1.0,),
                status=triple_result.status,
            )
        )
    return results
