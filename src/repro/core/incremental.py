"""Incremental worker evaluation.

The paper's conclusion notes that the methods "can be easily modified to be
incremental, to keep efficiently updating worker error rates as more tasks
get done."  This module provides that mode of operation: an
:class:`IncrementalEvaluator` accepts responses one at a time (or in
batches), maintains the response store, and recomputes confidence intervals
on demand — only for the workers whose data actually changed since the last
computation, which is the efficient path when a stream of task completions
trickles in.

The estimates themselves are identical to running the batch estimator on the
accumulated data (the class delegates to :class:`MWorkerEstimator`); the
value added is the bookkeeping of what changed and the per-worker caching.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.agreement import compute_agreement_statistics
from repro.core.m_worker import MWorkerEstimator
from repro.data.response_matrix import ResponseMatrix
from repro.types import WorkerErrorEstimate

__all__ = ["IncrementalEvaluator"]


class IncrementalEvaluator:
    """Streaming wrapper around the m-worker binary estimator.

    Parameters
    ----------
    n_workers, n_tasks:
        Dimensions of the response matrix being filled in over time.  Tasks
        can be added lazily beyond ``n_tasks`` via :meth:`extend_tasks`.
    confidence:
        Confidence level of the produced intervals.
    optimize_weights:
        Passed through to :class:`MWorkerEstimator`.

    Notes
    -----
    Estimates are cached per worker.  Adding a response from worker ``w`` on
    task ``t`` invalidates the cache of ``w`` and of every other worker who
    answered ``t`` (their agreement rates with ``w`` changed), but leaves the
    rest untouched — on sparse streams most cached intervals survive.
    """

    def __init__(
        self,
        n_workers: int,
        n_tasks: int,
        confidence: float = 0.95,
        optimize_weights: bool = True,
    ) -> None:
        if n_workers < 3:
            raise ConfigurationError(
                "incremental evaluation needs at least 3 workers to ever produce "
                "an estimate"
            )
        self._matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
        self._estimator = MWorkerEstimator(
            confidence=confidence, optimize_weights=optimize_weights
        )
        self._cache: dict[int, WorkerErrorEstimate] = {}
        self._dirty: set[int] = set(range(n_workers))
        self._responses_seen = 0

    # ------------------------------------------------------------------ #
    # Data ingestion
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> ResponseMatrix:
        """The accumulated response data (do not mutate directly)."""
        return self._matrix

    @property
    def n_responses(self) -> int:
        """Number of responses ingested so far."""
        return self._responses_seen

    @property
    def dirty_workers(self) -> set[int]:
        """Workers whose cached estimate is stale (or missing)."""
        return set(self._dirty)

    def extend_tasks(self, additional_tasks: int) -> None:
        """Grow the task space (e.g. when a new batch of tasks is published)."""
        if additional_tasks <= 0:
            raise ConfigurationError(
                f"additional_tasks must be positive, got {additional_tasks}"
            )
        extended = ResponseMatrix(
            n_workers=self._matrix.n_workers,
            n_tasks=self._matrix.n_tasks + additional_tasks,
            arity=2,
        )
        for worker, task, label in self._matrix.iter_responses():
            extended.add_response(worker, task, label)
        for task, label in self._matrix.gold_labels.items():
            extended.set_gold_label(task, label)
        self._matrix = extended

    def add_response(self, worker: int, task: int, label: int) -> None:
        """Ingest one response and invalidate the affected caches."""
        affected = set(self._matrix.workers_of(task))
        self._matrix.add_response(worker, task, label)
        self._responses_seen += 1
        self._dirty.add(worker)
        self._dirty.update(affected)

    def add_responses(self, records: Iterable[tuple[int, int, int]]) -> int:
        """Ingest a batch of ``(worker, task, label)`` records; returns the count."""
        count = 0
        for worker, task, label in records:
            self.add_response(worker, task, label)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def estimate(self, worker: int, force: bool = False) -> WorkerErrorEstimate:
        """Current confidence interval for one worker.

        Cached results are reused unless the worker's data changed (or
        ``force`` is set).
        """
        if worker in self._cache and worker not in self._dirty and not force:
            return self._cache[worker]
        if self._matrix.n_tasks_of(worker) == 0:
            raise InsufficientDataError(
                f"worker {worker} has no responses yet; nothing to estimate"
            )
        estimate = self._estimator.evaluate_worker(self._matrix, worker)
        self._cache[worker] = estimate
        self._dirty.discard(worker)
        return estimate

    def estimate_all(self, force: bool = False) -> dict[int, WorkerErrorEstimate]:
        """Current intervals for every worker that has any responses.

        Workers with unchanged data are served from the cache; the rest are
        recomputed sharing one agreement-statistics cache.
        """
        results: dict[int, WorkerErrorEstimate] = {}
        to_recompute = [
            worker
            for worker in range(self._matrix.n_workers)
            if self._matrix.n_tasks_of(worker) > 0
            and (force or worker in self._dirty or worker not in self._cache)
        ]
        if to_recompute:
            stats = compute_agreement_statistics(self._matrix)
            for worker in to_recompute:
                self._cache[worker] = self._estimator.evaluate_worker(
                    self._matrix, worker, stats=stats
                )
                self._dirty.discard(worker)
        for worker in range(self._matrix.n_workers):
            if worker in self._cache:
                results[worker] = self._cache[worker]
        return results
