"""Incremental worker evaluation.

The paper's conclusion notes that the methods "can be easily modified to be
incremental, to keep efficiently updating worker error rates as more tasks
get done."  This module provides that mode of operation: an
:class:`IncrementalEvaluator` accepts responses one at a time (or in
batches), maintains the response store, and recomputes confidence intervals
on demand — only for the workers whose estimate can actually have changed
since the last computation, which is the efficient path when a stream of
task completions trickles in.

The estimates themselves are identical to running the batch estimator on the
accumulated data (the class delegates to :class:`MWorkerEstimator`); the
value added is the bookkeeping of what changed and the per-worker caching.

Correct invalidation
--------------------

A response by worker ``w`` on task ``t`` changes exactly the pair statistics
``(w, u)`` for the workers ``u`` who also answered ``t`` (and the triple
counts of triples contained in ``{w} | answered(t)``).  Which *cached
estimates* that invalidates is subtler than "``w`` and everyone on ``t``":
worker ``x``'s estimate also reads the partners' mutual rate ``q_{w,u}``
inside its Lemma-4 covariance whenever ``w`` and ``u`` are partners in
``x``'s triples, and the greedy pairing inspects arbitrary candidate pairs.
An earlier version of this class invalidated only ``{w} | answered(t)`` and
therefore served stale intervals for such third-party workers.

The fix: while computing an estimate, every pair statistic the computation
reads is recorded (via the ``observer`` hook of
:class:`~repro.core.agreement.AgreementStatistics`).  Because the estimator
is deterministic, a cached estimate stays valid exactly as long as none of
the statistics its computation read have changed — if every value read is
unchanged, a fresh run would follow the identical execution path.  Streamed
responses therefore invalidate precisely the cached estimates whose recorded
dependencies intersect the changed pairs, restoring the "identical to
batch" guarantee while still letting unrelated cached intervals survive.

Delta-updated statistics
------------------------

The evaluator maintains a vectorized statistics backend alongside the
response matrix (unless ``backend="dict"``): each ingested response patches
the cached pairwise common/agreement count matrices, bitset rows/planes and
vote table in O(co-attempters) time, so recomputation after a burst of
updates pays only for the affected workers' covariance assembly, never for
rebuilding the statistics from scratch.  Every backend of the
``backend=`` knob — dense, sparse, bitset — implements the same
``apply_response`` delta update, so streaming works identically under the
cost-based ``"auto"`` choice whichever backend it lands on.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.agreement import AgreementStatistics, pair_key
from repro.core.m_worker import MWorkerEstimator
from repro.data.dense_backend import AgreementBackendBase, resolve_backend
from repro.data.response_matrix import ResponseMatrix
from repro.types import WorkerErrorEstimate

__all__ = ["IncrementalEvaluator"]


class _DependencyTracker:
    """Records which pair statistics each cached estimate depended on.

    Fine-grained reads (``note_pair``) are indexed per pair key; vectorized
    bulk reads (``note_bulk``), which touch every pair among the evaluated
    worker and its partners at once, are summarized as a *support set* of
    worker ids — a changed pair invalidates the estimate when both endpoints
    lie in the support.  Reverse indexes make the invalidation lookup
    O(readers of the changed pair) instead of O(cached workers).
    """

    def __init__(self) -> None:
        self._target: int | None = None
        self._pair_deps: dict[int, set[tuple[int, int]]] = {}
        self._supports: dict[int, set[int]] = {}
        self._pair_readers: dict[tuple[int, int], set[int]] = {}
        self._support_members: dict[int, set[int]] = {}

    def begin(self, worker: int) -> None:
        """Start recording reads on behalf of ``worker``'s estimate."""
        self.forget(worker)
        self._target = worker
        self._pair_deps[worker] = set()
        self._supports[worker] = {worker}
        self._support_members.setdefault(worker, set()).add(worker)

    def finish(self) -> None:
        self._target = None

    def forget(self, worker: int) -> None:
        """Drop ``worker``'s recorded dependencies (before re-estimating)."""
        for key in self._pair_deps.pop(worker, ()):
            readers = self._pair_readers.get(key)
            if readers is not None:
                readers.discard(worker)
                if not readers:
                    del self._pair_readers[key]
        for member in self._supports.pop(worker, ()):
            members = self._support_members.get(member)
            if members is not None:
                members.discard(worker)
                if not members:
                    del self._support_members[member]

    # -- AgreementStatistics observer protocol ------------------------- #

    def note_pair(self, key: tuple[int, int]) -> None:
        if self._target is None:
            return
        deps = self._pair_deps[self._target]
        if key not in deps:
            deps.add(key)
            self._pair_readers.setdefault(key, set()).add(self._target)

    def note_bulk(self, worker: int, partners: np.ndarray) -> None:
        if self._target is None:
            return
        support = self._supports[self._target]
        for member in (worker, *(int(p) for p in partners)):
            if member not in support:
                support.add(member)
                self._support_members.setdefault(member, set()).add(self._target)

    # -- invalidation --------------------------------------------------- #

    def readers_of(self, key: tuple[int, int]) -> set[int]:
        """Cached workers whose estimate depended on the pair ``key``."""
        affected = set(self._pair_readers.get(key, ()))
        a, b = key
        in_a = self._support_members.get(a)
        in_b = self._support_members.get(b)
        if in_a and in_b:
            affected |= in_a & in_b
        return affected


class IncrementalEvaluator:
    """Streaming wrapper around the m-worker binary estimator.

    Parameters
    ----------
    n_workers, n_tasks:
        Dimensions of the response matrix being filled in over time.  Tasks
        can be added lazily beyond ``n_tasks`` via :meth:`extend_tasks`.
    confidence:
        Confidence level of the produced intervals.
    optimize_weights:
        Passed through to :class:`MWorkerEstimator`.
    backend:
        Statistics backend: ``"dense"``/``"sparse"``/``"bitset"`` keep
        delta-updated count structures (recommended), ``"dict"`` recomputes
        from the sparse store, ``"auto"`` applies the cost model over grid
        size and observed fill.  Results are identical either way.

    Notes
    -----
    Estimates are cached per worker.  Each cached estimate records the exact
    pair statistics its computation read; a streamed response invalidates the
    caches whose dependencies it touches (see the module docstring).  On
    sparse streams most cached intervals still survive, and every interval
    served equals what a fresh batch run over the accumulated data would
    produce.
    """

    def __init__(
        self,
        n_workers: int,
        n_tasks: int,
        confidence: float = 0.95,
        optimize_weights: bool = True,
        backend: str = "auto",
    ) -> None:
        if n_workers < 3:
            raise ConfigurationError(
                "incremental evaluation needs at least 3 workers to ever produce "
                "an estimate"
            )
        self._matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
        self._estimator = MWorkerEstimator(
            confidence=confidence, optimize_weights=optimize_weights, backend=backend
        )
        self._backend_choice = backend
        self._backend: AgreementBackendBase | None = resolve_backend(
            self._matrix, backend
        )
        self._tracker = _DependencyTracker()
        self._cache: dict[int, WorkerErrorEstimate] = {}
        self._dirty: set[int] = set(range(n_workers))
        self._responses_seen = 0

    # ------------------------------------------------------------------ #
    # Data ingestion
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> ResponseMatrix:
        """The accumulated response data (do not mutate directly)."""
        return self._matrix

    @property
    def n_responses(self) -> int:
        """Number of responses ingested so far."""
        return self._responses_seen

    @property
    def dirty_workers(self) -> set[int]:
        """Workers whose cached estimate is stale (or missing)."""
        return set(self._dirty)

    def extend_tasks(self, additional_tasks: int) -> None:
        """Grow the task space (e.g. when a new batch of tasks is published).

        Cached estimates stay valid: the added tasks carry no responses, so
        no statistic any cached computation read has changed.  Under
        ``backend="auto"`` the rebuild re-resolves the cost model against
        the grown cell count (and the now-lower observed fill) and may flip
        the evaluator between the dense, sparse, bitset and dict paths
        mid-stream; that only affects throughput — backends are
        bit-identical by contract, and the threshold-crossing regression
        tests (``tests/unit/test_incremental_and_new_baselines.py`` and
        ``tests/unit/test_sparse_backend.py``) pin that served intervals
        still equal a fresh batch run across every flip.
        """
        if additional_tasks <= 0:
            raise ConfigurationError(
                f"additional_tasks must be positive, got {additional_tasks}"
            )
        extended = ResponseMatrix(
            n_workers=self._matrix.n_workers,
            n_tasks=self._matrix.n_tasks + additional_tasks,
            arity=2,
        )
        for worker, task, label in self._matrix.iter_responses():
            extended.add_response(worker, task, label)
        for task, label in self._matrix.gold_labels.items():
            extended.set_gold_label(task, label)
        self._matrix = extended
        # The delta-updated arrays are shaped (m, n); rebuild for the new n.
        self._backend = resolve_backend(extended, self._backend_choice)

    def add_response(self, worker: int, task: int, label: int) -> None:
        """Ingest one response and invalidate exactly the affected caches."""
        previous = self._matrix.response(worker, task)
        co_attempters = [
            other for other in self._matrix.workers_of(task) if other != worker
        ]
        self._matrix.add_response(worker, task, label)
        if self._backend is not None:
            self._backend.apply_response(worker, task, label, previous)
        self._responses_seen += 1
        if previous is not None and previous == label:
            return  # re-affirmed response: no statistic changed, caches stay
        self._invalidate(worker)
        for other in co_attempters:
            changed_pair = pair_key(worker, other)
            for reader in self._tracker.readers_of(changed_pair):
                self._invalidate(reader)

    def add_responses(self, records: Iterable[tuple[int, int, int]]) -> int:
        """Ingest a batch of ``(worker, task, label)`` records; returns the count."""
        count = 0
        for worker, task, label in records:
            self.add_response(worker, task, label)
            count += 1
        return count

    def _invalidate(self, worker: int) -> None:
        self._dirty.add(worker)
        self._tracker.forget(worker)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def _recording_statistics(self) -> AgreementStatistics:
        return AgreementStatistics(
            matrix=self._matrix, backend=self._backend, observer=self._tracker
        )

    def _recompute(self, worker: int, stats: AgreementStatistics) -> WorkerErrorEstimate:
        self._tracker.begin(worker)
        try:
            estimate = self._estimator.evaluate_worker(
                self._matrix, worker, stats=stats
            )
        finally:
            self._tracker.finish()
        self._cache[worker] = estimate
        self._dirty.discard(worker)
        return estimate

    def estimate(self, worker: int, force: bool = False) -> WorkerErrorEstimate:
        """Current confidence interval for one worker.

        Cached results are reused unless a statistic their computation read
        changed (or ``force`` is set).
        """
        if worker in self._cache and worker not in self._dirty and not force:
            return self._cache[worker]
        if self._matrix.n_tasks_of(worker) == 0:
            raise InsufficientDataError(
                f"worker {worker} has no responses yet; nothing to estimate"
            )
        return self._recompute(worker, self._recording_statistics())

    def estimate_all(self, force: bool = False) -> dict[int, WorkerErrorEstimate]:
        """Current intervals for every worker that has any responses.

        Workers with unchanged dependencies are served from the cache; the
        rest are recomputed sharing one agreement-statistics object.
        """
        to_recompute = [
            worker
            for worker in range(self._matrix.n_workers)
            if self._matrix.n_tasks_of(worker) > 0
            and (force or worker in self._dirty or worker not in self._cache)
        ]
        if to_recompute:
            stats = self._recording_statistics()
            for worker in to_recompute:
                self._recompute(worker, stats)
        return {
            worker: self._cache[worker]
            for worker in range(self._matrix.n_workers)
            if worker in self._cache
        }
