"""Incremental worker evaluation.

The paper's conclusion notes that the methods "can be easily modified to be
incremental, to keep efficiently updating worker error rates as more tasks
get done."  This module provides that mode of operation: an
:class:`IncrementalEvaluator` accepts responses one at a time (or in
batches), maintains the response store, and recomputes confidence intervals
on demand — only for the workers whose estimate can actually have changed
since the last computation, which is the efficient path when a stream of
task completions trickles in.

The estimates themselves are identical to running the batch estimator on the
accumulated data (the class delegates to :class:`MWorkerEstimator`); the
value added is the bookkeeping of what changed and the per-worker caching.

Correct invalidation: the dependency ledger
-------------------------------------------

A response by worker ``w`` on task ``t`` changes exactly the pair statistics
``(w, u)`` for the workers ``u`` who also answered ``t`` (and the triple
counts of triples contained in ``{w} | answered(t)``).  Which *cached
estimates* that invalidates is subtler than "``w`` and everyone on ``t``":
worker ``x``'s estimate also reads the partners' mutual rate ``q_{w,u}``
inside its Lemma-4 covariance whenever ``w`` and ``u`` are partners in
``x``'s triples, and the greedy pairing inspects arbitrary candidate pairs.
An earlier version of this class invalidated only ``{w} | answered(t)`` and
therefore served stale intervals for such third-party workers.

On the vectorized backends every recompute *returns* a compact
:class:`~repro.core.deps.WorkerFootprint` alongside the estimate — the
pairing scan log, the formed partners' support set and the touch-target
flag, derived from the array operations the evaluation actually executed
(see :mod:`repro.core.deps` for the exact semantics).  Footprints are
aggregated into a :class:`~repro.core.deps.DependencyLedger`, and each
micro-batch's invalidation is a handful of NumPy membership tests against
the batch's changed-pair array — one vectorized intersection pass, not a
per-pair Python set probe.  Because the estimator is deterministic, a
cached estimate stays valid exactly as long as none of the statistics its
computation read have changed; streamed responses therefore invalidate
precisely the cached estimates whose footprints intersect the changed
pairs, preserving the "identical to batch" guarantee while letting
unrelated cached intervals survive.

Footprints are recorded on **every** execution tier — the batched serial
path and the thread/process shards ship their per-shard dependency logs
back with the estimates (see
:func:`~repro.core.parallel.evaluate_worker_subset`) — so incremental
recomputes honour ``shards=`` like any batch run.  The remaining serial
fallbacks are the documented ones: the dict backend (whose scalar path
still records dependencies through the legacy per-read observer,
:class:`~repro.core.deps.ObserverDependencyTracker`), a custom ``rng``,
and fewer dirty workers than shards.  The ledger is durable: it is
persisted by :meth:`IncrementalEvaluator.export_state` together with the
clean cached estimates, so a resumed session serves warm caches without
recomputing untouched workers.

Delta-updated statistics
------------------------

The evaluator maintains a vectorized statistics backend alongside the
response matrix (unless ``backend="dict"``): each ingested response patches
the cached pairwise common/agreement count matrices, bitset rows/planes and
vote table in O(co-attempters) time, so recomputation after a burst of
updates pays only for the affected workers' covariance assembly, never for
rebuilding the statistics from scratch.  Every backend of the
``backend=`` knob — dense, sparse, bitset — implements the same
``apply_response`` delta update, so streaming works identically under the
cost-based ``"auto"`` choice whichever backend it lands on.

Micro-batched ingestion
-----------------------

:meth:`IncrementalEvaluator.apply_batch` is the batched form the async
ingestion subsystem (:mod:`repro.serve`) drives: one backend
``apply_responses`` call per micro-batch (a single derived-cache
invalidation pass, grouped per-worker-row storage writes while no count
matrix is materialized), unseen worker/task ids grown once per batch via
the delta extension path (no backend rebuild —
:attr:`IncrementalEvaluator.backend_rebuilds` counts the exceptions), and
the dependency-tracked cache invalidation run over the batch's changed
pairs as a set.  Results are bit-identical to per-event ingestion for any
chopping of the stream; see the streaming determinism contract in
:mod:`repro.core.agreement`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    InsufficientDataError,
)
from repro.core.agreement import AgreementStatistics, pair_key
from repro.core.deps import (
    DependencyLedger,
    ObserverDependencyTracker,
    WorkerFootprint,
)
from repro.core.m_worker import MWorkerEstimator
from repro.data.dense_backend import (
    AgreementBackendBase,
    auto_backend_choice,
    resolve_backend,
)
from repro.data.response_matrix import ResponseMatrix
from repro.types import (
    ConfidenceInterval,
    EstimateStatus,
    TripleEstimate,
    WorkerErrorEstimate,
)

__all__ = ["BatchApplyStats", "IncrementalEvaluator"]


@dataclass(frozen=True)
class BatchApplyStats:
    """Bookkeeping of one :meth:`IncrementalEvaluator.apply_batch` call.

    Attributes
    ----------
    n_events:
        Number of records in the batch (including reaffirmations).
    n_changed:
        Records that actually changed a statistic (fresh or flipped labels).
    invalidated:
        Worker ids whose estimate was invalidated by the batch (responders,
        co-attempters, and third-party readers of a changed pair).
    cached_invalidated:
        How many of those had a live cached estimate before the batch (the
        recomputation the batch actually costs at the next query).
    backend_invalidations:
        Derived-cache invalidation passes the statistics backend paid for
        this batch (1 for any statistic-changing batch on the vectorized
        backends, 0 for a pure reaffirmation batch or the dict path) — the
        number a singleton-apply stream pays *per event*.
    """

    n_events: int
    n_changed: int
    invalidated: frozenset[int]
    cached_invalidated: int
    backend_invalidations: int


def _backend_class(kind: str) -> type[AgreementBackendBase]:
    """Concrete backend class for a persisted ``backend_kind`` name.

    Imported lazily so the snapshot-restore path does not widen this
    module's import graph; attaching never needs scipy, even for a
    persisted sparse backend (its CSR index is consumed before export).
    """
    from repro.data.dense_backend import DenseAgreementBackend
    from repro.data.sparse_backend import (
        BitsetAgreementBackend,
        SparseAgreementBackend,
    )

    classes: dict[str, type[AgreementBackendBase]] = {
        "dense": DenseAgreementBackend,
        "sparse": SparseAgreementBackend,
        "bitset": BitsetAgreementBackend,
    }
    try:
        return classes[kind]
    except KeyError:
        raise DataValidationError(
            f"unknown persisted backend kind {kind!r}"
        ) from None


class IncrementalEvaluator:
    """Streaming wrapper around the m-worker binary estimator.

    Parameters
    ----------
    n_workers, n_tasks:
        Dimensions of the response matrix being filled in over time.  Tasks
        can be added lazily beyond ``n_tasks`` via :meth:`extend_tasks`.
    confidence:
        Confidence level of the produced intervals.
    optimize_weights:
        Passed through to :class:`MWorkerEstimator`.
    backend:
        Statistics backend: ``"dense"``/``"sparse"``/``"bitset"`` keep
        delta-updated count structures (recommended), ``"dict"`` recomputes
        from the sparse store, ``"auto"`` applies the cost model over grid
        size and observed fill.  Results are identical either way.
    shards:
        Execution spec for incremental recomputes, passed through to the
        wrapped :class:`MWorkerEstimator` (validated here, so a malformed
        spec fails at construction).  On the vectorized backends dirty
        workers are re-evaluated in bulk through
        :func:`~repro.core.parallel.evaluate_worker_subset` with dependency
        footprints shipped back alongside the estimates, so
        ``"auto"``/``"thread:N"``/``"process:N"`` engage exactly as they do
        for a batch ``evaluate_all`` — no silent serial degradation.  The
        documented serial fallbacks are the dict backend (scalar path, the
        legacy per-read observer), a custom rng, and fewer dirty workers
        than shards.
    dependency_tracking:
        ``"auto"`` (default) uses the vectorized dependency ledger on the
        vectorized backends and the per-read observer on the dict path;
        ``"observer"`` forces the legacy observer everywhere (serial
        recomputes) — the reference mode the differential suite checks
        ledger invalidation decisions against.

    Notes
    -----
    Estimates are cached per worker.  Each cached estimate records the exact
    pair statistics its computation read; a streamed response invalidates the
    caches whose dependencies it touches (see the module docstring).  On
    sparse streams most cached intervals still survive, and every interval
    served equals what a fresh batch run over the accumulated data would
    produce.
    """

    def __init__(
        self,
        n_workers: int,
        n_tasks: int,
        confidence: float = 0.95,
        optimize_weights: bool = True,
        backend: str = "auto",
        shards: int | str = 1,
        dependency_tracking: str = "auto",
    ) -> None:
        if n_workers < 3:
            raise ConfigurationError(
                "incremental evaluation needs at least 3 workers to ever produce "
                "an estimate"
            )
        if dependency_tracking not in ("auto", "observer"):
            raise ConfigurationError(
                "dependency_tracking must be 'auto' or 'observer', got "
                f"{dependency_tracking!r}"
            )
        self._matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
        self._estimator = MWorkerEstimator(
            confidence=confidence,
            optimize_weights=optimize_weights,
            backend=backend,
            shards=shards,
        )
        self._backend_choice = backend
        self._backend: AgreementBackendBase | None = resolve_backend(
            self._matrix, backend
        )
        self._dependency_tracking = dependency_tracking
        self._tracker = ObserverDependencyTracker()
        self._ledger = DependencyLedger()
        self._cache: dict[int, WorkerErrorEstimate] = {}
        self._dirty: set[int] = set(range(n_workers))
        self._responses_seen = 0
        self._backend_rebuilds = 0
        self._recompute_count = 0

    # ------------------------------------------------------------------ #
    # Data ingestion
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> ResponseMatrix:
        """The accumulated response data (do not mutate directly)."""
        return self._matrix

    @property
    def n_responses(self) -> int:
        """Number of responses ingested so far."""
        return self._responses_seen

    @property
    def dirty_workers(self) -> set[int]:
        """Workers whose cached estimate is stale (or missing)."""
        return set(self._dirty)

    @property
    def backend_rebuilds(self) -> int:
        """How many times the statistics backend was rebuilt from scratch.

        Growing the id space takes the O(added ids) delta path whenever the
        backend class is unchanged; a rebuild happens only when the
        ``"auto"`` cost model flips the backend *kind* for the grown grid.
        The regression suite counts these to pin the delta path.
        """
        return self._backend_rebuilds

    def extend_tasks(self, additional_tasks: int) -> None:
        """Grow the task space (e.g. when a new batch of tasks is published).

        Cached estimates stay valid: the added tasks carry no responses, so
        no statistic any cached computation read has changed.  The matrix
        and backend grow in place (O(added cells) array padding — no count
        recomputation); only when the ``"auto"`` cost model flips the
        backend kind for the grown cell count (and the now-lower observed
        fill) is the backend rebuilt, and the flip is invisible in results
        — backends are bit-identical by contract, and the
        threshold-crossing regression tests
        (``tests/unit/test_incremental_and_new_baselines.py`` and
        ``tests/unit/test_sparse_backend.py``) pin that served intervals
        still equal a fresh batch run across every flip.
        """
        if additional_tasks <= 0:
            raise ConfigurationError(
                f"additional_tasks must be positive, got {additional_tasks}"
            )
        self._grow(0, additional_tasks)

    def extend_workers(self, additional_workers: int) -> None:
        """Grow the worker space (new workers joining the live pool).

        New workers carry no responses, so cached estimates stay valid;
        they are marked dirty (nothing cached) and served once they have
        data.  Same delta-vs-rebuild contract as :meth:`extend_tasks`.
        """
        if additional_workers <= 0:
            raise ConfigurationError(
                f"additional_workers must be positive, got {additional_workers}"
            )
        self._grow(additional_workers, 0)

    def _grow(self, additional_workers: int, additional_tasks: int) -> None:
        old_workers = self._matrix.n_workers
        self._matrix.extend(additional_workers, additional_tasks)
        self._dirty.update(range(old_workers, self._matrix.n_workers))
        current = "dict" if self._backend is None else self._backend.name
        if self._backend_choice == "auto":
            target = auto_backend_choice(
                self._matrix.n_workers,
                self._matrix.n_tasks,
                self._matrix.n_responses,
                arity=self._matrix.arity,
            )
        else:
            # An explicit choice never flips kinds mid-stream (including a
            # degraded "sparse" request: the degradation held at
            # construction and growth only lowers density / raises cells,
            # so the instance we already have keeps serving).
            target = current
        if target == current:
            if self._backend is not None:
                self._backend.extend(additional_workers, additional_tasks)
        else:
            self._backend = resolve_backend(self._matrix, self._backend_choice)
            self._backend_rebuilds += 1

    def _auto_extend_for(self, records: list[tuple[int, int, int]]) -> None:
        """Grow the id space to cover any unseen worker/task ids (one pass)."""
        max_worker = max(record[0] for record in records)
        max_task = max(record[1] for record in records)
        additional_workers = max(0, max_worker + 1 - self._matrix.n_workers)
        additional_tasks = max(0, max_task + 1 - self._matrix.n_tasks)
        if additional_workers or additional_tasks:
            self._grow(additional_workers, additional_tasks)

    def add_response(self, worker: int, task: int, label: int) -> None:
        """Ingest one response and invalidate exactly the affected caches.

        Ids unseen at construction are routed through the delta growth path
        of :meth:`extend_tasks` / :meth:`extend_workers` first (no backend
        rebuild), so a live stream can outgrow the constructed dimensions.
        """
        if worker >= self._matrix.n_workers or task >= self._matrix.n_tasks:
            if worker >= 0 and task >= 0:
                self._auto_extend_for([(worker, task, label)])
        previous = self._matrix.response(worker, task)
        co_attempters = [
            other for other in self._matrix.workers_of(task) if other != worker
        ]
        self._matrix.add_response(worker, task, label)
        if self._backend is not None:
            self._backend.apply_response(worker, task, label, previous)
        self._responses_seen += 1
        if previous is not None and previous == label:
            return  # re-affirmed response: no statistic changed, caches stay
        self._invalidate(worker)
        changed = [pair_key(worker, other) for other in co_attempters]
        for reader in self._readers_of(changed):
            self._invalidate(reader)

    def apply_batch(
        self,
        records: Iterable[tuple[int, int, int]],
        auto_extend: bool = True,
    ) -> BatchApplyStats:
        """Ingest one micro-batch of ``(worker, task, label)`` records.

        Bit-identical to calling :meth:`add_response` per record (the
        backend replays the same deltas in the same order; the
        estimator-facing counts are equal, and recomputation is
        deterministic from the counts), but the bookkeeping is paid per
        batch, not per event: the backend invalidates its derived caches
        once (and takes its grouped per-row storage path while no count
        matrix is materialized), unseen ids grow the id space once, and the
        dependency-tracked cache invalidation runs over the batch's changed
        pairs as a set.  Returns the per-batch stats the streaming session
        reports.

        Partition-scoped interleaving is safe: multi-writer sessions
        (:mod:`repro.serve.multiwriter`) call this with batches from
        different worker partitions in whatever order they complete.
        Because a partition owns *all* events of its workers, batches from
        different partitions touch disjoint response cells — they commute
        under the last-write-wins upserts — and the ledger's invalidation
        is order-free over the changed-pair set, so any per-partition-
        order-preserving interleaving accumulates the same matrix and
        serves the same bits.
        """
        batch = [(int(w), int(t), int(label)) for w, t, label in records]
        if not batch:
            return BatchApplyStats(0, 0, frozenset(), 0, 0)
        if auto_extend and all(w >= 0 and t >= 0 for w, t, _ in batch):
            self._auto_extend_for(batch)
        # Validate the WHOLE batch before mutating anything: a mid-batch
        # failure after partial application would leave the matrix and the
        # statistics backend divergent (silently wrong estimates for any
        # caller that catches the error and continues).  With every id and
        # label pre-checked here, neither the matrix writes nor the
        # backend's apply_responses below can fail, so the batch applies
        # atomically.
        for worker, task, label in batch:
            if not (0 <= worker < self._matrix.n_workers):
                raise DataValidationError(
                    f"worker id {worker} out of range "
                    f"[0, {self._matrix.n_workers})"
                )
            if not (0 <= task < self._matrix.n_tasks):
                raise DataValidationError(
                    f"task id {task} out of range [0, {self._matrix.n_tasks})"
                )
            if not (0 <= label < self._matrix.arity):
                raise DataValidationError(
                    f"label {label} out of range [0, {self._matrix.arity})"
                )
        events: list[tuple[int, int, int, int | None]] = []
        changed_pairs: set[tuple[int, int]] = set()
        changed_workers: set[int] = set()
        n_changed = 0
        for worker, task, label in batch:
            previous = self._matrix.response(worker, task)
            if previous is None or previous != label:
                n_changed += 1
                changed_workers.add(worker)
                for other in self._matrix.workers_of(task):
                    if other != worker:
                        changed_pairs.add(pair_key(worker, other))
            self._matrix.add_response(worker, task, label)
            events.append((worker, task, label, previous))
            self._responses_seen += 1
        backend_invalidations = 0
        if self._backend is not None:
            before = self._backend.invalidation_events
            self._backend.apply_responses(events)
            backend_invalidations = self._backend.invalidation_events - before
        invalidated = set(changed_workers) | self._readers_of(changed_pairs)
        cached_invalidated = sum(
            1
            for worker in invalidated
            if worker in self._cache and worker not in self._dirty
        )
        for worker in invalidated:
            self._invalidate(worker)
        return BatchApplyStats(
            n_events=len(batch),
            n_changed=n_changed,
            invalidated=frozenset(invalidated),
            cached_invalidated=cached_invalidated,
            backend_invalidations=backend_invalidations,
        )

    # ------------------------------------------------------------------ #
    # State (de)serialization — the durable-session snapshot hooks
    # ------------------------------------------------------------------ #

    def export_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serializable snapshot: ``(JSON-safe meta, named arrays)``.

        The arrays are the response records and gold labels of the matrix
        plus — when a vectorized backend is live — its full
        ``export_shared_state()`` payload (packed planes, count matrices,
        vote table, dense triple tensor where cacheable) under
        ``backend.``-prefixed keys, so :meth:`from_state` restores the
        derived caches without rebuilding any count.  Clean cached
        estimates whose dependencies live in the ledger are persisted too
        (``cache.*`` arrays: interval rows, CSR triple records, weights)
        together with the ledger itself (``deps.*`` arrays), so a resumed
        session serves warm intervals for untouched workers with zero
        recomputation — float64 round-trips exactly, making restored
        estimates bit-identical to the ones exported.  Workers tracked by
        the legacy observer (dict-backend recomputes) restore cold; they
        are recomputed deterministically from the counts, so omitting them
        cannot change a served interval (only when it is recomputed).
        Exporting materializes the backend's lazy caches as a side effect,
        exactly like the process-sharding export this reuses.
        """
        matrix = self._matrix
        count = matrix.n_responses
        workers = np.empty(count, dtype=np.int64)
        tasks = np.empty(count, dtype=np.int64)
        labels = np.empty(count, dtype=np.int64)
        for position, (worker, task, label) in enumerate(matrix.iter_responses()):
            workers[position] = worker
            tasks[position] = task
            labels[position] = label
        gold = matrix.gold_labels
        arrays: dict[str, np.ndarray] = {
            "resp_worker": workers,
            "resp_task": tasks,
            "resp_label": labels,
            "gold_task": np.fromiter(gold.keys(), dtype=np.int64, count=len(gold)),
            "gold_label": np.fromiter(gold.values(), dtype=np.int64, count=len(gold)),
        }
        backend_kind = "dict" if self._backend is None else self._backend.name
        if self._backend is not None:
            for key, array in self._backend.export_shared_state().items():
                arrays[f"backend.{key}"] = array
        ledger_workers = sorted(
            worker
            for worker in self._ledger.workers
            if worker in self._cache and worker not in self._dirty
        )
        if ledger_workers:
            arrays.update(self._ledger.export_arrays())
            arrays.update(self._export_cache_arrays(ledger_workers))
        meta = {
            "n_workers": matrix.n_workers,
            "n_tasks": matrix.n_tasks,
            "arity": matrix.arity,
            "confidence": self._estimator.confidence,
            "optimize_weights": self._estimator.optimize_weights,
            "backend_choice": self._backend_choice,
            "backend_kind": backend_kind,
            "responses_seen": self._responses_seen,
            "backend_rebuilds": self._backend_rebuilds,
            "estimate_status_names": [status.name for status in EstimateStatus],
        }
        return meta, arrays

    def _export_cache_arrays(
        self, workers: list[int]
    ) -> dict[str, np.ndarray]:
        """Flat ``cache.*`` arrays for the given clean cached workers.

        Interval rows are ``(mean, lower, upper, confidence, deviation)``;
        triples are stored CSR-style (``triple_offsets`` indexes into the
        flat partner/value/status/weight arrays) with value rows
        ``(error_rate, deviation, d_partner_a, d_partner_b)`` — the
        derivative mapping of a binary triple has exactly the two partners
        as keys, so two columns round-trip it losslessly.
        """
        status_index = {status: i for i, status in enumerate(EstimateStatus)}
        k = len(workers)
        interval = np.empty((k, 5), dtype=np.float64)
        n_tasks = np.empty(k, dtype=np.int64)
        status = np.empty(k, dtype=np.int64)
        triple_offsets = np.zeros(k + 1, dtype=np.int64)
        partners: list[tuple[int, int]] = []
        values: list[tuple[float, float, float, float]] = []
        triple_status: list[int] = []
        weights: list[float] = []
        for i, worker in enumerate(workers):
            estimate = self._cache[worker]
            bounds = estimate.interval
            interval[i] = (
                bounds.mean,
                bounds.lower,
                bounds.upper,
                bounds.confidence,
                bounds.deviation,
            )
            n_tasks[i] = estimate.n_tasks
            status[i] = status_index[estimate.status]
            triple_offsets[i + 1] = triple_offsets[i] + len(estimate.triples)
            for triple, weight in zip(estimate.triples, estimate.weights):
                a, b = triple.partners
                partners.append((a, b))
                values.append(
                    (
                        triple.error_rate,
                        triple.deviation,
                        triple.derivatives[a],
                        triple.derivatives[b],
                    )
                )
                triple_status.append(status_index[triple.status])
                weights.append(weight)
        return {
            "cache.workers": np.asarray(workers, dtype=np.int64),
            "cache.interval": interval,
            "cache.n_tasks": n_tasks,
            "cache.status": status,
            "cache.triple_offsets": triple_offsets,
            "cache.triple_partners": np.asarray(
                partners, dtype=np.int64
            ).reshape(-1, 2),
            "cache.triple_values": np.asarray(
                values, dtype=np.float64
            ).reshape(-1, 4),
            "cache.triple_status": np.asarray(triple_status, dtype=np.int64),
            "cache.weights_flat": np.asarray(weights, dtype=np.float64),
        }

    @classmethod
    def from_state(
        cls,
        meta: dict,
        arrays: dict[str, np.ndarray],
        *,
        confidence: float | None = None,
        optimize_weights: bool | None = None,
        backend: str | None = None,
        shards: int | str = 1,
        dependency_tracking: str = "auto",
    ) -> "IncrementalEvaluator":
        """Rebuild an evaluator from :meth:`export_state` output.

        The matrix is bulk-loaded via
        :meth:`~repro.data.response_matrix.ResponseMatrix.from_arrays` and
        the backend re-attached from its exported caches
        (``attach_shared_state`` — no count is recomputed, which is what
        makes resuming O(delta)).  Arrays are adopted as-is and must be
        writable (the durable snapshot loader hands out fresh copies).
        When the snapshot carries ``deps.*``/``cache.*`` arrays and the
        effective configuration matches the persisted one, the dependency
        ledger and the clean cached estimates are restored warm —
        untouched workers are served with zero recomputation,
        bit-identical to the exported intervals.  Otherwise (dict backend,
        changed ``confidence``/``optimize_weights``, forced observer mode,
        or an old snapshot) caches start cold and are recomputed on
        demand, bit-identical to an uninterrupted evaluator by the
        determinism contract.  ``confidence`` / ``optimize_weights`` /
        ``backend`` default to the persisted configuration; passing a
        different ``backend`` choice rebuilds the backend from the
        restored matrix instead of re-attaching (results are identical
        either way).
        """
        self = cls.__new__(cls)
        n_workers = int(meta["n_workers"])
        n_tasks = int(meta["n_tasks"])
        arity = int(meta["arity"])
        self._matrix = ResponseMatrix.from_arrays(
            arrays["resp_worker"],
            arrays["resp_task"],
            arrays["resp_label"],
            n_workers=n_workers,
            n_tasks=n_tasks,
            arity=arity,
            gold_tasks=arrays.get("gold_task"),
            gold_labels=arrays.get("gold_label"),
        )
        confidence = (
            float(meta["confidence"]) if confidence is None else float(confidence)
        )
        optimize_weights = (
            bool(meta["optimize_weights"])
            if optimize_weights is None
            else bool(optimize_weights)
        )
        choice = meta["backend_choice"] if backend is None else backend
        self._estimator = MWorkerEstimator(
            confidence=confidence,
            optimize_weights=optimize_weights,
            backend=choice,
            shards=shards,
        )
        self._backend_choice = choice
        kind = meta["backend_kind"]
        if choice != meta["backend_choice"]:
            self._backend = resolve_backend(self._matrix, choice)
        elif kind == "dict":
            self._backend = None
        else:
            backend_arrays = {
                key.split(".", 1)[1]: value
                for key, value in arrays.items()
                if key.startswith("backend.")
            }
            self._backend = _backend_class(kind).attach_shared_state(
                backend_arrays,
                n_workers=n_workers,
                n_tasks=n_tasks,
                arity=arity,
            )
        if dependency_tracking not in ("auto", "observer"):
            raise ConfigurationError(
                "dependency_tracking must be 'auto' or 'observer', got "
                f"{dependency_tracking!r}"
            )
        self._dependency_tracking = dependency_tracking
        self._tracker = ObserverDependencyTracker()
        self._ledger = DependencyLedger()
        self._cache = {}
        self._dirty = set(range(n_workers))
        self._responses_seen = int(meta["responses_seen"])
        self._backend_rebuilds = int(meta["backend_rebuilds"])
        self._recompute_count = 0
        if (
            self._use_ledger()
            and "deps.workers" in arrays
            and "cache.workers" in arrays
            and confidence == float(meta["confidence"])
            and optimize_weights == bool(meta["optimize_weights"])
            and "estimate_status_names" in meta
        ):
            self._restore_cache(meta, arrays)
        return self

    def _restore_cache(self, meta: dict, arrays: dict[str, np.ndarray]) -> None:
        """Re-adopt the persisted ledger and warm estimate caches."""
        statuses = [
            EstimateStatus[name] for name in meta["estimate_status_names"]
        ]
        self._ledger = DependencyLedger.from_arrays(arrays)
        workers = np.asarray(arrays["cache.workers"], dtype=np.int64)
        interval = np.asarray(arrays["cache.interval"], dtype=np.float64)
        n_tasks = np.asarray(arrays["cache.n_tasks"], dtype=np.int64)
        status = np.asarray(arrays["cache.status"], dtype=np.int64)
        offsets = np.asarray(arrays["cache.triple_offsets"], dtype=np.int64)
        partners = np.asarray(arrays["cache.triple_partners"], dtype=np.int64)
        values = np.asarray(arrays["cache.triple_values"], dtype=np.float64)
        triple_status = np.asarray(arrays["cache.triple_status"], dtype=np.int64)
        weights_flat = np.asarray(arrays["cache.weights_flat"], dtype=np.float64)
        for i, worker in enumerate(workers.tolist()):
            start, stop = int(offsets[i]), int(offsets[i + 1])
            triples = []
            for t in range(start, stop):
                a, b = int(partners[t, 0]), int(partners[t, 1])
                error_rate, deviation, d_a, d_b = values[t].tolist()
                triples.append(
                    TripleEstimate(
                        worker=worker,
                        partners=(a, b),
                        error_rate=error_rate,
                        deviation=deviation,
                        derivatives={a: d_a, b: d_b},
                        status=statuses[int(triple_status[t])],
                    )
                )
            mean, lower, upper, confidence, deviation = interval[i].tolist()
            self._cache[worker] = WorkerErrorEstimate(
                worker=worker,
                interval=ConfidenceInterval(
                    mean=mean,
                    lower=lower,
                    upper=upper,
                    confidence=confidence,
                    deviation=deviation,
                ),
                n_tasks=int(n_tasks[i]),
                triples=tuple(triples),
                weights=tuple(weights_flat[start:stop].tolist()),
                status=statuses[int(status[i])],
            )
            self._dirty.discard(worker)

    def add_responses(self, records: Iterable[tuple[int, int, int]]) -> int:
        """Ingest a batch of ``(worker, task, label)`` records; returns the count.

        Delegates to :meth:`apply_batch` (one invalidation pass for the
        whole batch; results identical to per-record ingestion).
        """
        return self.apply_batch(records).n_events

    def _invalidate(self, worker: int) -> None:
        self._dirty.add(worker)
        self._tracker.forget(worker)
        self._ledger.forget(worker)

    def _readers_of(self, changed_pairs) -> set[int]:
        """Cached-estimate owners whose recorded reads touch the pairs.

        Consults both dependency structures: a cached worker lives in the
        ledger when its last recompute took the footprint path and in the
        observer tracker when it took the scalar dict path, so the union is
        exact whichever mix of paths produced the current caches (e.g.
        across a mid-stream dict-to-dense backend flip).
        """
        changed_pairs = list(changed_pairs)
        if not changed_pairs:
            return set()
        readers = self._ledger.invalidated(changed_pairs)
        for key in changed_pairs:
            readers |= self._tracker.readers_of(key)
        return readers

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def _use_ledger(self) -> bool:
        """Whether recomputes take the footprint path (vs the observer).

        The footprint protocol needs the greedy pairing strategy without a
        custom rng and a vectorized backend; ``dependency_tracking=
        "observer"`` forces the legacy path for reference runs.
        """
        return (
            self._dependency_tracking == "auto"
            and self._backend is not None
            and self._estimator.pairing_strategy == "greedy"
            and self._estimator.rng is None
        )

    def _recompute_many(self, workers: list[int]) -> None:
        """Re-evaluate ``workers``, recording each estimate's dependencies.

        Ledger mode: one :func:`~repro.core.parallel.evaluate_worker_subset`
        call, which honours the estimator's ``shards=`` spec (footprints
        ship back through the shard result channel in worker order).
        Observer mode: the legacy serial loop under the per-read observer.
        """
        if not workers:
            return
        self._recompute_count += len(workers)
        if self._use_ledger():
            from repro.core.parallel import evaluate_worker_subset

            stats = AgreementStatistics(
                matrix=self._matrix, backend=self._backend
            )
            estimates, footprints = evaluate_worker_subset(
                self._estimator,
                self._matrix,
                stats,
                list(workers),
                collect_footprints=True,
            )
            for worker, estimate, footprint in zip(
                workers, estimates, footprints
            ):
                self._cache[worker] = estimate
                self._ledger.record(worker, footprint)
                self._dirty.discard(worker)
            return
        stats = AgreementStatistics(
            matrix=self._matrix, backend=self._backend, observer=self._tracker
        )
        for worker in workers:
            self._tracker.begin(worker)
            try:
                estimate = self._estimator.evaluate_worker(
                    self._matrix, worker, stats=stats
                )
            finally:
                self._tracker.finish()
            self._cache[worker] = estimate
            self._dirty.discard(worker)

    @property
    def recompute_count(self) -> int:
        """Total worker re-evaluations over this instance's lifetime.

        A resumed session whose snapshot carried warm caches serves
        untouched workers at zero recomputes; the durable-resume regression
        test pins this counter.
        """
        return self._recompute_count

    def cached_estimate(self, worker: int) -> WorkerErrorEstimate | None:
        """``worker``'s cached estimate if provably current, else ``None``.

        "Provably current" means a live cache entry none of whose recorded
        dependencies changed since it was computed — the read path
        streaming sessions use to serve clean workers without serializing
        behind the ingestion lock.
        """
        if worker in self._cache and worker not in self._dirty:
            return self._cache[worker]
        return None

    @property
    def needs_recompute(self) -> bool:
        """True when any worker with responses would recompute on query."""
        return any(
            self._matrix.n_tasks_of(worker) > 0 for worker in self._dirty
        )

    def estimate(self, worker: int, force: bool = False) -> WorkerErrorEstimate:
        """Current confidence interval for one worker.

        Cached results are reused unless a statistic their computation read
        changed (or ``force`` is set).
        """
        if worker in self._cache and worker not in self._dirty and not force:
            return self._cache[worker]
        if self._matrix.n_tasks_of(worker) == 0:
            raise InsufficientDataError(
                f"worker {worker} has no responses yet; nothing to estimate"
            )
        if force:
            self._invalidate(worker)
        self._recompute_many([worker])
        return self._cache[worker]

    def estimate_all(self, force: bool = False) -> dict[int, WorkerErrorEstimate]:
        """Current intervals for every worker that has any responses.

        Workers with unchanged dependencies are served from the cache; the
        rest are recomputed in one bulk pass sharing a single
        agreement-statistics object (sharded per the ``shards=`` spec in
        ledger mode).
        """
        to_recompute = [
            worker
            for worker in range(self._matrix.n_workers)
            if self._matrix.n_tasks_of(worker) > 0
            and (force or worker in self._dirty or worker not in self._cache)
        ]
        if force:
            for worker in to_recompute:
                self._invalidate(worker)
        self._recompute_many(to_recompute)
        return {
            worker: self._cache[worker]
            for worker in range(self._matrix.n_workers)
            if worker in self._cache
        }
