"""Incremental worker evaluation.

The paper's conclusion notes that the methods "can be easily modified to be
incremental, to keep efficiently updating worker error rates as more tasks
get done."  This module provides that mode of operation: an
:class:`IncrementalEvaluator` accepts responses one at a time (or in
batches), maintains the response store, and recomputes confidence intervals
on demand — only for the workers whose estimate can actually have changed
since the last computation, which is the efficient path when a stream of
task completions trickles in.

The estimates themselves are identical to running the batch estimator on the
accumulated data (the class delegates to :class:`MWorkerEstimator`); the
value added is the bookkeeping of what changed and the per-worker caching.

Correct invalidation
--------------------

A response by worker ``w`` on task ``t`` changes exactly the pair statistics
``(w, u)`` for the workers ``u`` who also answered ``t`` (and the triple
counts of triples contained in ``{w} | answered(t)``).  Which *cached
estimates* that invalidates is subtler than "``w`` and everyone on ``t``":
worker ``x``'s estimate also reads the partners' mutual rate ``q_{w,u}``
inside its Lemma-4 covariance whenever ``w`` and ``u`` are partners in
``x``'s triples, and the greedy pairing inspects arbitrary candidate pairs.
An earlier version of this class invalidated only ``{w} | answered(t)`` and
therefore served stale intervals for such third-party workers.

The fix: while computing an estimate, every pair statistic the computation
reads is recorded (via the ``observer`` hook of
:class:`~repro.core.agreement.AgreementStatistics`).  Because the estimator
is deterministic, a cached estimate stays valid exactly as long as none of
the statistics its computation read have changed — if every value read is
unchanged, a fresh run would follow the identical execution path.  Streamed
responses therefore invalidate precisely the cached estimates whose recorded
dependencies intersect the changed pairs, restoring the "identical to
batch" guarantee while still letting unrelated cached intervals survive.

Delta-updated statistics
------------------------

The evaluator maintains a vectorized statistics backend alongside the
response matrix (unless ``backend="dict"``): each ingested response patches
the cached pairwise common/agreement count matrices, bitset rows/planes and
vote table in O(co-attempters) time, so recomputation after a burst of
updates pays only for the affected workers' covariance assembly, never for
rebuilding the statistics from scratch.  Every backend of the
``backend=`` knob — dense, sparse, bitset — implements the same
``apply_response`` delta update, so streaming works identically under the
cost-based ``"auto"`` choice whichever backend it lands on.

Micro-batched ingestion
-----------------------

:meth:`IncrementalEvaluator.apply_batch` is the batched form the async
ingestion subsystem (:mod:`repro.serve`) drives: one backend
``apply_responses`` call per micro-batch (a single derived-cache
invalidation pass, grouped per-worker-row storage writes while no count
matrix is materialized), unseen worker/task ids grown once per batch via
the delta extension path (no backend rebuild —
:attr:`IncrementalEvaluator.backend_rebuilds` counts the exceptions), and
the dependency-tracked cache invalidation run over the batch's changed
pairs as a set.  Results are bit-identical to per-event ingestion for any
chopping of the stream; see the streaming determinism contract in
:mod:`repro.core.agreement`.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    InsufficientDataError,
)
from repro.core.agreement import AgreementStatistics, pair_key
from repro.core.m_worker import MWorkerEstimator
from repro.data.dense_backend import (
    AgreementBackendBase,
    auto_backend_choice,
    resolve_backend,
)
from repro.data.response_matrix import ResponseMatrix
from repro.types import WorkerErrorEstimate

__all__ = ["BatchApplyStats", "IncrementalEvaluator"]


@dataclass(frozen=True)
class BatchApplyStats:
    """Bookkeeping of one :meth:`IncrementalEvaluator.apply_batch` call.

    Attributes
    ----------
    n_events:
        Number of records in the batch (including reaffirmations).
    n_changed:
        Records that actually changed a statistic (fresh or flipped labels).
    invalidated:
        Worker ids whose estimate was invalidated by the batch (responders,
        co-attempters, and third-party readers of a changed pair).
    cached_invalidated:
        How many of those had a live cached estimate before the batch (the
        recomputation the batch actually costs at the next query).
    backend_invalidations:
        Derived-cache invalidation passes the statistics backend paid for
        this batch (1 for any statistic-changing batch on the vectorized
        backends, 0 for a pure reaffirmation batch or the dict path) — the
        number a singleton-apply stream pays *per event*.
    """

    n_events: int
    n_changed: int
    invalidated: frozenset[int]
    cached_invalidated: int
    backend_invalidations: int


def _backend_class(kind: str) -> type[AgreementBackendBase]:
    """Concrete backend class for a persisted ``backend_kind`` name.

    Imported lazily so the snapshot-restore path does not widen this
    module's import graph; attaching never needs scipy, even for a
    persisted sparse backend (its CSR index is consumed before export).
    """
    from repro.data.dense_backend import DenseAgreementBackend
    from repro.data.sparse_backend import (
        BitsetAgreementBackend,
        SparseAgreementBackend,
    )

    classes: dict[str, type[AgreementBackendBase]] = {
        "dense": DenseAgreementBackend,
        "sparse": SparseAgreementBackend,
        "bitset": BitsetAgreementBackend,
    }
    try:
        return classes[kind]
    except KeyError:
        raise DataValidationError(
            f"unknown persisted backend kind {kind!r}"
        ) from None


class _DependencyTracker:
    """Records which pair statistics each cached estimate depended on.

    Fine-grained reads (``note_pair``) are indexed per pair key; vectorized
    bulk reads (``note_bulk``), which touch every pair among the evaluated
    worker and its partners at once, are summarized as a *support set* of
    worker ids — a changed pair invalidates the estimate when both endpoints
    lie in the support.  Reverse indexes make the invalidation lookup
    O(readers of the changed pair) instead of O(cached workers).
    """

    def __init__(self) -> None:
        self._target: int | None = None
        self._pair_deps: dict[int, set[tuple[int, int]]] = {}
        self._supports: dict[int, set[int]] = {}
        self._pair_readers: dict[tuple[int, int], set[int]] = {}
        self._support_members: dict[int, set[int]] = {}

    def begin(self, worker: int) -> None:
        """Start recording reads on behalf of ``worker``'s estimate."""
        self.forget(worker)
        self._target = worker
        self._pair_deps[worker] = set()
        self._supports[worker] = {worker}
        self._support_members.setdefault(worker, set()).add(worker)

    def finish(self) -> None:
        self._target = None

    def forget(self, worker: int) -> None:
        """Drop ``worker``'s recorded dependencies (before re-estimating)."""
        for key in self._pair_deps.pop(worker, ()):
            readers = self._pair_readers.get(key)
            if readers is not None:
                readers.discard(worker)
                if not readers:
                    del self._pair_readers[key]
        for member in self._supports.pop(worker, ()):
            members = self._support_members.get(member)
            if members is not None:
                members.discard(worker)
                if not members:
                    del self._support_members[member]

    # -- AgreementStatistics observer protocol ------------------------- #

    def note_pair(self, key: tuple[int, int]) -> None:
        if self._target is None:
            return
        deps = self._pair_deps[self._target]
        if key not in deps:
            deps.add(key)
            self._pair_readers.setdefault(key, set()).add(self._target)

    def note_bulk(self, worker: int, partners: np.ndarray) -> None:
        if self._target is None:
            return
        support = self._supports[self._target]
        for member in (worker, *(int(p) for p in partners)):
            if member not in support:
                support.add(member)
                self._support_members.setdefault(member, set()).add(self._target)

    # -- invalidation --------------------------------------------------- #

    def readers_of(self, key: tuple[int, int]) -> set[int]:
        """Cached workers whose estimate depended on the pair ``key``."""
        affected = set(self._pair_readers.get(key, ()))
        a, b = key
        in_a = self._support_members.get(a)
        in_b = self._support_members.get(b)
        if in_a and in_b:
            affected |= in_a & in_b
        return affected


class IncrementalEvaluator:
    """Streaming wrapper around the m-worker binary estimator.

    Parameters
    ----------
    n_workers, n_tasks:
        Dimensions of the response matrix being filled in over time.  Tasks
        can be added lazily beyond ``n_tasks`` via :meth:`extend_tasks`.
    confidence:
        Confidence level of the produced intervals.
    optimize_weights:
        Passed through to :class:`MWorkerEstimator`.
    backend:
        Statistics backend: ``"dense"``/``"sparse"``/``"bitset"`` keep
        delta-updated count structures (recommended), ``"dict"`` recomputes
        from the sparse store, ``"auto"`` applies the cost model over grid
        size and observed fill.  Results are identical either way.
    shards:
        Execution spec passed through to the wrapped
        :class:`MWorkerEstimator` (validated here, so a malformed spec
        fails at construction).  In practice incremental recomputes run
        **serial regardless of the spec**: dirty workers are re-evaluated
        one at a time under the dependency-tracking observer, and every
        execution tier defers to serial while an observer is attached (the
        tracker must see each read).  The knob exists so evaluator
        configuration round-trips through streaming sessions unchanged; it
        changes throughput only if a future bulk path evaluates without
        the observer.

    Notes
    -----
    Estimates are cached per worker.  Each cached estimate records the exact
    pair statistics its computation read; a streamed response invalidates the
    caches whose dependencies it touches (see the module docstring).  On
    sparse streams most cached intervals still survive, and every interval
    served equals what a fresh batch run over the accumulated data would
    produce.
    """

    def __init__(
        self,
        n_workers: int,
        n_tasks: int,
        confidence: float = 0.95,
        optimize_weights: bool = True,
        backend: str = "auto",
        shards: int | str = 1,
    ) -> None:
        if n_workers < 3:
            raise ConfigurationError(
                "incremental evaluation needs at least 3 workers to ever produce "
                "an estimate"
            )
        self._matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
        self._estimator = MWorkerEstimator(
            confidence=confidence,
            optimize_weights=optimize_weights,
            backend=backend,
            shards=shards,
        )
        self._backend_choice = backend
        self._backend: AgreementBackendBase | None = resolve_backend(
            self._matrix, backend
        )
        self._tracker = _DependencyTracker()
        self._cache: dict[int, WorkerErrorEstimate] = {}
        self._dirty: set[int] = set(range(n_workers))
        self._responses_seen = 0
        self._backend_rebuilds = 0

    # ------------------------------------------------------------------ #
    # Data ingestion
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> ResponseMatrix:
        """The accumulated response data (do not mutate directly)."""
        return self._matrix

    @property
    def n_responses(self) -> int:
        """Number of responses ingested so far."""
        return self._responses_seen

    @property
    def dirty_workers(self) -> set[int]:
        """Workers whose cached estimate is stale (or missing)."""
        return set(self._dirty)

    @property
    def backend_rebuilds(self) -> int:
        """How many times the statistics backend was rebuilt from scratch.

        Growing the id space takes the O(added ids) delta path whenever the
        backend class is unchanged; a rebuild happens only when the
        ``"auto"`` cost model flips the backend *kind* for the grown grid.
        The regression suite counts these to pin the delta path.
        """
        return self._backend_rebuilds

    def extend_tasks(self, additional_tasks: int) -> None:
        """Grow the task space (e.g. when a new batch of tasks is published).

        Cached estimates stay valid: the added tasks carry no responses, so
        no statistic any cached computation read has changed.  The matrix
        and backend grow in place (O(added cells) array padding — no count
        recomputation); only when the ``"auto"`` cost model flips the
        backend kind for the grown cell count (and the now-lower observed
        fill) is the backend rebuilt, and the flip is invisible in results
        — backends are bit-identical by contract, and the
        threshold-crossing regression tests
        (``tests/unit/test_incremental_and_new_baselines.py`` and
        ``tests/unit/test_sparse_backend.py``) pin that served intervals
        still equal a fresh batch run across every flip.
        """
        if additional_tasks <= 0:
            raise ConfigurationError(
                f"additional_tasks must be positive, got {additional_tasks}"
            )
        self._grow(0, additional_tasks)

    def extend_workers(self, additional_workers: int) -> None:
        """Grow the worker space (new workers joining the live pool).

        New workers carry no responses, so cached estimates stay valid;
        they are marked dirty (nothing cached) and served once they have
        data.  Same delta-vs-rebuild contract as :meth:`extend_tasks`.
        """
        if additional_workers <= 0:
            raise ConfigurationError(
                f"additional_workers must be positive, got {additional_workers}"
            )
        self._grow(additional_workers, 0)

    def _grow(self, additional_workers: int, additional_tasks: int) -> None:
        old_workers = self._matrix.n_workers
        self._matrix.extend(additional_workers, additional_tasks)
        self._dirty.update(range(old_workers, self._matrix.n_workers))
        current = "dict" if self._backend is None else self._backend.name
        if self._backend_choice == "auto":
            target = auto_backend_choice(
                self._matrix.n_workers,
                self._matrix.n_tasks,
                self._matrix.n_responses,
                arity=self._matrix.arity,
            )
        else:
            # An explicit choice never flips kinds mid-stream (including a
            # degraded "sparse" request: the degradation held at
            # construction and growth only lowers density / raises cells,
            # so the instance we already have keeps serving).
            target = current
        if target == current:
            if self._backend is not None:
                self._backend.extend(additional_workers, additional_tasks)
        else:
            self._backend = resolve_backend(self._matrix, self._backend_choice)
            self._backend_rebuilds += 1

    def _auto_extend_for(self, records: list[tuple[int, int, int]]) -> None:
        """Grow the id space to cover any unseen worker/task ids (one pass)."""
        max_worker = max(record[0] for record in records)
        max_task = max(record[1] for record in records)
        additional_workers = max(0, max_worker + 1 - self._matrix.n_workers)
        additional_tasks = max(0, max_task + 1 - self._matrix.n_tasks)
        if additional_workers or additional_tasks:
            self._grow(additional_workers, additional_tasks)

    def add_response(self, worker: int, task: int, label: int) -> None:
        """Ingest one response and invalidate exactly the affected caches.

        Ids unseen at construction are routed through the delta growth path
        of :meth:`extend_tasks` / :meth:`extend_workers` first (no backend
        rebuild), so a live stream can outgrow the constructed dimensions.
        """
        if worker >= self._matrix.n_workers or task >= self._matrix.n_tasks:
            if worker >= 0 and task >= 0:
                self._auto_extend_for([(worker, task, label)])
        previous = self._matrix.response(worker, task)
        co_attempters = [
            other for other in self._matrix.workers_of(task) if other != worker
        ]
        self._matrix.add_response(worker, task, label)
        if self._backend is not None:
            self._backend.apply_response(worker, task, label, previous)
        self._responses_seen += 1
        if previous is not None and previous == label:
            return  # re-affirmed response: no statistic changed, caches stay
        self._invalidate(worker)
        for other in co_attempters:
            changed_pair = pair_key(worker, other)
            for reader in self._tracker.readers_of(changed_pair):
                self._invalidate(reader)

    def apply_batch(
        self,
        records: Iterable[tuple[int, int, int]],
        auto_extend: bool = True,
    ) -> BatchApplyStats:
        """Ingest one micro-batch of ``(worker, task, label)`` records.

        Bit-identical to calling :meth:`add_response` per record (the
        backend replays the same deltas in the same order; the
        estimator-facing counts are equal, and recomputation is
        deterministic from the counts), but the bookkeeping is paid per
        batch, not per event: the backend invalidates its derived caches
        once (and takes its grouped per-row storage path while no count
        matrix is materialized), unseen ids grow the id space once, and the
        dependency-tracked cache invalidation runs over the batch's changed
        pairs as a set.  Returns the per-batch stats the streaming session
        reports.
        """
        batch = [(int(w), int(t), int(label)) for w, t, label in records]
        if not batch:
            return BatchApplyStats(0, 0, frozenset(), 0, 0)
        if auto_extend and all(w >= 0 and t >= 0 for w, t, _ in batch):
            self._auto_extend_for(batch)
        # Validate the WHOLE batch before mutating anything: a mid-batch
        # failure after partial application would leave the matrix and the
        # statistics backend divergent (silently wrong estimates for any
        # caller that catches the error and continues).  With every id and
        # label pre-checked here, neither the matrix writes nor the
        # backend's apply_responses below can fail, so the batch applies
        # atomically.
        for worker, task, label in batch:
            if not (0 <= worker < self._matrix.n_workers):
                raise DataValidationError(
                    f"worker id {worker} out of range "
                    f"[0, {self._matrix.n_workers})"
                )
            if not (0 <= task < self._matrix.n_tasks):
                raise DataValidationError(
                    f"task id {task} out of range [0, {self._matrix.n_tasks})"
                )
            if not (0 <= label < self._matrix.arity):
                raise DataValidationError(
                    f"label {label} out of range [0, {self._matrix.arity})"
                )
        events: list[tuple[int, int, int, int | None]] = []
        changed_pairs: set[tuple[int, int]] = set()
        changed_workers: set[int] = set()
        n_changed = 0
        for worker, task, label in batch:
            previous = self._matrix.response(worker, task)
            if previous is None or previous != label:
                n_changed += 1
                changed_workers.add(worker)
                for other in self._matrix.workers_of(task):
                    if other != worker:
                        changed_pairs.add(pair_key(worker, other))
            self._matrix.add_response(worker, task, label)
            events.append((worker, task, label, previous))
            self._responses_seen += 1
        backend_invalidations = 0
        if self._backend is not None:
            before = self._backend.invalidation_events
            self._backend.apply_responses(events)
            backend_invalidations = self._backend.invalidation_events - before
        invalidated = set(changed_workers)
        for key in changed_pairs:
            invalidated |= self._tracker.readers_of(key)
        cached_invalidated = sum(
            1
            for worker in invalidated
            if worker in self._cache and worker not in self._dirty
        )
        for worker in invalidated:
            self._invalidate(worker)
        return BatchApplyStats(
            n_events=len(batch),
            n_changed=n_changed,
            invalidated=frozenset(invalidated),
            cached_invalidated=cached_invalidated,
            backend_invalidations=backend_invalidations,
        )

    # ------------------------------------------------------------------ #
    # State (de)serialization — the durable-session snapshot hooks
    # ------------------------------------------------------------------ #

    def export_state(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Serializable snapshot: ``(JSON-safe meta, named arrays)``.

        The arrays are the response records and gold labels of the matrix
        plus — when a vectorized backend is live — its full
        ``export_shared_state()`` payload (packed planes, count matrices,
        vote table, dense triple tensor where cacheable) under
        ``backend.``-prefixed keys, so :meth:`from_state` restores the
        derived caches without rebuilding any count.  Estimate caches and
        dependency tracking are deliberately *not* persisted: they are
        recomputed deterministically from the counts, so omitting them
        cannot change a served interval (only when it is recomputed).
        Exporting materializes the backend's lazy caches as a side effect,
        exactly like the process-sharding export this reuses.
        """
        matrix = self._matrix
        count = matrix.n_responses
        workers = np.empty(count, dtype=np.int64)
        tasks = np.empty(count, dtype=np.int64)
        labels = np.empty(count, dtype=np.int64)
        for position, (worker, task, label) in enumerate(matrix.iter_responses()):
            workers[position] = worker
            tasks[position] = task
            labels[position] = label
        gold = matrix.gold_labels
        arrays: dict[str, np.ndarray] = {
            "resp_worker": workers,
            "resp_task": tasks,
            "resp_label": labels,
            "gold_task": np.fromiter(gold.keys(), dtype=np.int64, count=len(gold)),
            "gold_label": np.fromiter(gold.values(), dtype=np.int64, count=len(gold)),
        }
        backend_kind = "dict" if self._backend is None else self._backend.name
        if self._backend is not None:
            for key, array in self._backend.export_shared_state().items():
                arrays[f"backend.{key}"] = array
        meta = {
            "n_workers": matrix.n_workers,
            "n_tasks": matrix.n_tasks,
            "arity": matrix.arity,
            "confidence": self._estimator.confidence,
            "optimize_weights": self._estimator.optimize_weights,
            "backend_choice": self._backend_choice,
            "backend_kind": backend_kind,
            "responses_seen": self._responses_seen,
            "backend_rebuilds": self._backend_rebuilds,
        }
        return meta, arrays

    @classmethod
    def from_state(
        cls,
        meta: dict,
        arrays: dict[str, np.ndarray],
        *,
        confidence: float | None = None,
        optimize_weights: bool | None = None,
        backend: str | None = None,
        shards: int | str = 1,
    ) -> "IncrementalEvaluator":
        """Rebuild an evaluator from :meth:`export_state` output.

        The matrix is bulk-loaded via
        :meth:`~repro.data.response_matrix.ResponseMatrix.from_arrays` and
        the backend re-attached from its exported caches
        (``attach_shared_state`` — no count is recomputed, which is what
        makes resuming O(delta)).  Arrays are adopted as-is and must be
        writable (the durable snapshot loader hands out fresh copies);
        every estimate cache starts cold and is recomputed on demand,
        bit-identical to an uninterrupted evaluator by the determinism
        contract.  ``confidence`` / ``optimize_weights`` / ``backend``
        default to the persisted configuration; passing a different
        ``backend`` choice rebuilds the backend from the restored matrix
        instead of re-attaching (results are identical either way).
        """
        self = cls.__new__(cls)
        n_workers = int(meta["n_workers"])
        n_tasks = int(meta["n_tasks"])
        arity = int(meta["arity"])
        self._matrix = ResponseMatrix.from_arrays(
            arrays["resp_worker"],
            arrays["resp_task"],
            arrays["resp_label"],
            n_workers=n_workers,
            n_tasks=n_tasks,
            arity=arity,
            gold_tasks=arrays.get("gold_task"),
            gold_labels=arrays.get("gold_label"),
        )
        confidence = (
            float(meta["confidence"]) if confidence is None else float(confidence)
        )
        optimize_weights = (
            bool(meta["optimize_weights"])
            if optimize_weights is None
            else bool(optimize_weights)
        )
        choice = meta["backend_choice"] if backend is None else backend
        self._estimator = MWorkerEstimator(
            confidence=confidence,
            optimize_weights=optimize_weights,
            backend=choice,
            shards=shards,
        )
        self._backend_choice = choice
        kind = meta["backend_kind"]
        if choice != meta["backend_choice"]:
            self._backend = resolve_backend(self._matrix, choice)
        elif kind == "dict":
            self._backend = None
        else:
            backend_arrays = {
                key.split(".", 1)[1]: value
                for key, value in arrays.items()
                if key.startswith("backend.")
            }
            self._backend = _backend_class(kind).attach_shared_state(
                backend_arrays,
                n_workers=n_workers,
                n_tasks=n_tasks,
                arity=arity,
            )
        self._tracker = _DependencyTracker()
        self._cache = {}
        self._dirty = set(range(n_workers))
        self._responses_seen = int(meta["responses_seen"])
        self._backend_rebuilds = int(meta["backend_rebuilds"])
        return self

    def add_responses(self, records: Iterable[tuple[int, int, int]]) -> int:
        """Ingest a batch of ``(worker, task, label)`` records; returns the count.

        Delegates to :meth:`apply_batch` (one invalidation pass for the
        whole batch; results identical to per-record ingestion).
        """
        return self.apply_batch(records).n_events

    def _invalidate(self, worker: int) -> None:
        self._dirty.add(worker)
        self._tracker.forget(worker)

    # ------------------------------------------------------------------ #
    # Estimation
    # ------------------------------------------------------------------ #

    def _recording_statistics(self) -> AgreementStatistics:
        return AgreementStatistics(
            matrix=self._matrix, backend=self._backend, observer=self._tracker
        )

    def _recompute(self, worker: int, stats: AgreementStatistics) -> WorkerErrorEstimate:
        self._tracker.begin(worker)
        try:
            estimate = self._estimator.evaluate_worker(
                self._matrix, worker, stats=stats
            )
        finally:
            self._tracker.finish()
        self._cache[worker] = estimate
        self._dirty.discard(worker)
        return estimate

    def estimate(self, worker: int, force: bool = False) -> WorkerErrorEstimate:
        """Current confidence interval for one worker.

        Cached results are reused unless a statistic their computation read
        changed (or ``force`` is set).
        """
        if worker in self._cache and worker not in self._dirty and not force:
            return self._cache[worker]
        if self._matrix.n_tasks_of(worker) == 0:
            raise InsufficientDataError(
                f"worker {worker} has no responses yet; nothing to estimate"
            )
        return self._recompute(worker, self._recording_statistics())

    def estimate_all(self, force: bool = False) -> dict[int, WorkerErrorEstimate]:
        """Current intervals for every worker that has any responses.

        Workers with unchanged dependencies are served from the cache; the
        rest are recomputed sharing one agreement-statistics object.
        """
        to_recompute = [
            worker
            for worker in range(self._matrix.n_workers)
            if self._matrix.n_tasks_of(worker) > 0
            and (force or worker in self._dirty or worker not in self._cache)
        ]
        if to_recompute:
            stats = self._recording_statistics()
            for worker in to_recompute:
                self._recompute(worker, stats)
        return {
            worker: self._cache[worker]
            for worker in range(self._matrix.n_workers)
            if worker in self._cache
        }
