"""Removed: the old sharding shim — use :mod:`repro.core.parallel`.

The one-shot sharded implementation that lived here was superseded by the
reusable execution layer in :mod:`repro.core.parallel` (cached
:class:`~repro.core.parallel.ShardExecutor` pools, the backend-agnostic
shared-state export protocol, a thread tier and the ``shards="auto"`` cost
model).  This module then survived one deprecation cycle as a re-exporting
shim; that cycle is over and importing it now fails loudly instead of
silently running legacy-named code paths.

Migration is mechanical::

    from repro.core.parallel import SharedMatrixView, evaluate_all_process

    evaluate_all_process(estimator, matrix, stats, n_shards)

or simply pass ``shards=`` to ``MWorkerEstimator`` / ``SessionConfig`` and
let the cost model pick the tier.
"""

raise ImportError(
    "repro.core.sharded was removed; use repro.core.parallel instead "
    "(evaluate_all_process / SharedMatrixView, or the shards= spec on "
    "MWorkerEstimator / SessionConfig)"
)
