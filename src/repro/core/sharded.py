"""Sharded ``evaluate_all``: the m-worker batch across a process pool.

After the per-triple stage was batched, one Python process spends most of a
large ``evaluate_all`` inside per-worker NumPy kernels that parallelize
cleanly across workers.  This module partitions the worker loop into
contiguous shards and evaluates each shard in its own process:

* the parent builds the dense statistics once (attempt/label matrices plus
  the precomputed pairwise common/agreement count matrices) and exports the
  arrays read-only via ``multiprocessing.shared_memory`` — shards never
  re-run the O(m^2 n) matrix products and the per-process footprint is the
  map of the shared segments, not a copy;
* each shard process reconstructs a
  :class:`~repro.data.dense_backend.DenseAgreementBackend` view over the
  shared buffers (:meth:`~repro.data.dense_backend.DenseAgreementBackend.from_arrays`)
  and runs the ordinary serial estimator — including the cross-worker
  batched triple stage and the grouped Lemma-4/5 aggregation when enabled —
  over its worker range;
* the parent concatenates the per-shard estimate lists in shard order,
  which equals worker order because shards are contiguous index ranges.

Every statistic a shard reads is identical to what the serial path reads,
so sharded results are bit-identical to serial results; the differential
test suite enforces this.  See :class:`~repro.core.m_worker.MWorkerEstimator`
for the full determinism contract and the guard conditions under which
``evaluate_all`` silently falls back to serial evaluation.

The ``"spawn"`` start method is used so the pool behaves the same on every
platform and never inherits ambient state from the parent (thread pools,
BLAS handles) the way ``fork`` would.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import TYPE_CHECKING

import numpy as np

from repro.core.agreement import AgreementStatistics
from repro.data.dense_backend import DenseAgreementBackend
from repro.types import WorkerErrorEstimate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.m_worker import MWorkerEstimator
    from repro.data.response_matrix import ResponseMatrix

__all__ = ["evaluate_all_sharded", "SharedMatrixView"]


@dataclass(frozen=True)
class _ArraySpec:
    """Name/shape/dtype triplet describing one shared-memory array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedMatrixView:
    """The slice of the :class:`ResponseMatrix` interface shards need.

    Worker evaluation only consults the matrix for its dimensions, arity
    and per-worker response counts — everything else flows through the
    statistics backend.  Serving those few queries from the shared attempt
    matrix avoids pickling (or rebuilding) the sparse response store in
    every shard process.
    """

    def __init__(self, attempts: np.ndarray, arity: int) -> None:
        self._attempts = attempts
        self._arity = arity

    @property
    def n_workers(self) -> int:
        return self._attempts.shape[0]

    @property
    def n_tasks(self) -> int:
        return self._attempts.shape[1]

    @property
    def arity(self) -> int:
        return self._arity

    @property
    def is_binary(self) -> bool:
        return self._arity == 2

    def n_tasks_of(self, worker: int) -> int:
        return int(self._attempts[worker].sum())


def _export_array(array: np.ndarray) -> tuple[SharedMemory, _ArraySpec]:
    """Copy ``array`` into a fresh shared-memory segment."""
    array = np.ascontiguousarray(array)
    segment = SharedMemory(create=True, size=max(array.nbytes, 1))
    view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
    view[...] = array
    return segment, _ArraySpec(segment.name, array.shape, array.dtype.str)


def _attach_array(spec: _ArraySpec) -> tuple[SharedMemory, np.ndarray]:
    """Map an exported segment without adopting ownership of it.

    Before Python 3.13 every ``SharedMemory`` attachment registers with the
    resource tracker, which then unlinks the segment when *any* attaching
    process exits; the parent owns these segments, so child attachments are
    de-registered (or created with ``track=False`` where available).
    """
    try:
        segment = SharedMemory(name=spec.name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        # Suppress registration during the attach instead of registering and
        # unregistering: with several shards attaching the same segment, the
        # register/unregister pairs race in the shared tracker process and
        # spray KeyError tracebacks on exit.
        original_register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None  # type: ignore[assignment]
        try:
            segment = SharedMemory(name=spec.name)
        finally:
            resource_tracker.register = original_register  # type: ignore[assignment]
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf)
    return segment, array


# Per-process state installed by the pool initializer: the attached segments
# (kept alive for the shard's lifetime), the backend view, and the
# reconstructed estimator.
_SHARD_STATE: dict[str, object] = {}


def _init_shard(
    specs: dict[str, _ArraySpec], arity: int, estimator_config: dict[str, object]
) -> None:
    """Pool initializer: attach the shared arrays and rebuild the estimator."""
    from repro.core.m_worker import MWorkerEstimator

    segments = []
    arrays = {}
    for key, spec in specs.items():
        segment, array = _attach_array(spec)
        segments.append(segment)
        arrays[key] = array
    backend = DenseAgreementBackend.from_arrays(
        attempts=arrays["attempts"],
        labels=arrays["labels"],
        arity=arity,
        common_counts=arrays["common"],
        agreement_counts=arrays["agree"],
    )
    _SHARD_STATE["segments"] = segments
    _SHARD_STATE["matrix"] = SharedMatrixView(arrays["attempts"], arity)
    _SHARD_STATE["stats"] = AgreementStatistics(matrix=None, backend=backend)
    _SHARD_STATE["estimator"] = MWorkerEstimator(shards=1, **estimator_config)


def _evaluate_shard(worker_range: tuple[int, int]) -> list[WorkerErrorEstimate]:
    """Evaluate the contiguous worker range ``[start, stop)`` in this shard.

    Delegates to :meth:`MWorkerEstimator.evaluate_worker_range`, so a shard
    runs the same cross-worker batched stage — and, with ``batch_lemma4``,
    the same grouped Lemma-4/5 aggregation — over its range that the serial
    path runs over all workers; results are identical either way because
    every batched operation is per-slice.
    """
    start, stop = worker_range
    estimator = _SHARD_STATE["estimator"]
    matrix = _SHARD_STATE["matrix"]
    stats = _SHARD_STATE["stats"]
    return estimator.evaluate_worker_range(matrix, stats, list(range(start, stop)))


def evaluate_all_sharded(
    estimator: "MWorkerEstimator",
    matrix: "ResponseMatrix",
    stats: AgreementStatistics,
) -> list[WorkerErrorEstimate]:
    """Evaluate every worker, sharded across ``estimator.shards`` processes.

    Callers must have checked :meth:`MWorkerEstimator._shardable`; in
    particular ``stats`` must carry a dense backend (the only backend with
    ``supports_shared_export`` — sparse/bitset statistics take the serial
    fallback) and ``matrix.n_workers >= estimator.shards``.
    """
    backend = stats.backend
    assert backend is not None and backend.supports_shared_export, (
        "sharded evaluation requires the dense backend's shared-memory export"
    )
    # Materialize the lazy caches once in the parent so shards share them.
    exports = {
        "attempts": backend._attempts,
        "labels": backend._labels,
        "common": backend.common_counts,
        "agree": backend.agreement_counts,
    }
    # Every estimator field ships to the shards except the ones the sharded
    # path redefines: `shards` (children must stay serial) and `rng` (guarded
    # to None by _shardable — generators cannot be consumed in a pool
    # without diverging from the serial sequence).  Deriving the set from
    # dataclasses.fields keeps future fields from being silently dropped.
    estimator_config = {
        field.name: getattr(estimator, field.name)
        for field in fields(estimator)
        if field.name not in ("shards", "rng")
    }
    boundaries = np.linspace(0, matrix.n_workers, estimator.shards + 1).astype(int)
    ranges = [
        (int(boundaries[index]), int(boundaries[index + 1]))
        for index in range(estimator.shards)
    ]
    segments: list[SharedMemory] = []
    specs: dict[str, _ArraySpec] = {}
    try:
        for key, array in exports.items():
            segment, spec = _export_array(array)
            segments.append(segment)
            specs[key] = spec
        context = get_context("spawn")
        with context.Pool(
            processes=estimator.shards,
            initializer=_init_shard,
            initargs=(specs, matrix.arity, estimator_config),
        ) as pool:
            shard_results = pool.map(_evaluate_shard, ranges)
    finally:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                pass
    # Contiguous ranges concatenated in shard order == worker order 0..m-1.
    return [estimate for shard in shard_results for estimate in shard]
