"""Deprecated compatibility shim over :mod:`repro.core.parallel`.

The original one-shot sharded implementation lived here: it spawned a fresh
process pool per ``evaluate_all`` call and rebuilt the count matrices, vote
table and triple tensor in every shard, which made sharding lose to serial
on the benchmarks it was meant to win.  The machinery was replaced by the
reusable execution layer in :mod:`repro.core.parallel` (cached
:class:`~repro.core.parallel.ShardExecutor` pools, the backend-agnostic
shared-state export protocol, a thread tier and the ``shards="auto"`` cost
model); this module keeps the old import surface alive for external
callers.

.. deprecated::
    Import :class:`~repro.core.parallel.SharedMatrixView` and call
    :func:`~repro.core.parallel.evaluate_all_process` (or let
    ``MWorkerEstimator(shards=...)`` pick the tier) directly.  Importing
    this module, or calling :func:`evaluate_all_sharded`, emits a
    :class:`DeprecationWarning`; behavior is unchanged.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.core.parallel import SharedMatrixView, evaluate_all_process
from repro.types import WorkerErrorEstimate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agreement import AgreementStatistics
    from repro.core.m_worker import MWorkerEstimator
    from repro.data.response_matrix import ResponseMatrix

__all__ = ["SharedMatrixView", "evaluate_all_sharded"]

_DEPRECATION_MESSAGE = (
    "repro.core.sharded is deprecated; use repro.core.parallel "
    "(evaluate_all_process / SharedMatrixView) instead"
)

warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)


def evaluate_all_sharded(
    estimator: "MWorkerEstimator",
    matrix: "ResponseMatrix",
    stats: "AgreementStatistics",
) -> list[WorkerErrorEstimate]:
    """Historical entry point: process-sharded evaluation at ``estimator.shards``.

    Delegates to :func:`repro.core.parallel.evaluate_all_process` (the
    reusable-executor implementation); ``estimator.shards`` must be a plain
    integer shard count, as it always was for callers of this function.
    Deprecated — call the :mod:`repro.core.parallel` entry point directly.
    """
    warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
    return evaluate_all_process(estimator, matrix, stats, int(estimator.shards))
