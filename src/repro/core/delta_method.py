"""Theorem 1: the multivariate delta method for confidence intervals.

The paper's Theorem 1 states that if ``Y = f(X_1, ..., X_k)`` for
approximately normal ``X_i`` with means ``e_i`` and covariances ``c_ij``, and
``f`` is locally linear with coefficients ``d_i`` (its partial derivatives),
then::

    E[Y]   = f(e_1, ..., e_k)
    Dev(Y) = sqrt( sum_i sum_j d_i d_j c_ij )
    CI(Y, c) = [E[Y] - z_t Dev(Y),  E[Y] + z_t Dev(Y)],  t = (1 + c) / 2

Every confidence interval in the library — binary or k-ary — is produced by
this one engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stats.normal import two_sided_z
from repro.types import ConfidenceInterval

__all__ = [
    "DeltaMethodModel",
    "confidence_interval_from_moments",
    "batched_deviations_3",
]


def batched_deviations_3(
    gradients: np.ndarray, covariances: np.ndarray
) -> np.ndarray:
    """Theorem-1 deviations for a stack of 3-input delta-method systems.

    ``gradients`` has shape ``(l, 3)`` and ``covariances`` ``(l, 3, 3)``; the
    result is ``sqrt(max(g_t^T C_t g_t, 0))`` per row.  The quadratic form is
    accumulated in the pinned order of
    :func:`repro.stats.linalg.quadratic_form_3`, and the flooring/sqrt mirror
    the scalar ``max(raw, 0.0)`` / ``math.sqrt`` steps, so each element is
    bit-identical to evaluating the scalar path on that slice.
    """
    from repro.stats.linalg import batched_quadratic_form_3

    raw = batched_quadratic_form_3(gradients, covariances)
    return np.sqrt(np.maximum(raw, 0.0))


def confidence_interval_from_moments(
    mean: float,
    deviation: float,
    confidence: float,
    clip_to_unit: bool = True,
) -> ConfidenceInterval:
    """Equation (2) of Theorem 1: turn (mean, deviation) into a c-interval.

    Parameters
    ----------
    mean, deviation:
        Estimator mean and standard deviation.
    confidence:
        Confidence level ``c`` in ``(0, 1)``.
    clip_to_unit:
        Clip the interval (and mean) to ``[0, 1]``, appropriate for
        probability parameters such as error rates.
    """
    if deviation < 0.0 or not math.isfinite(deviation):
        raise ConfigurationError(
            f"deviation must be finite and non-negative, got {deviation}"
        )
    z = two_sided_z(confidence)
    half = z * deviation
    interval = ConfidenceInterval(
        mean=mean,
        lower=mean - half,
        upper=mean + half,
        confidence=confidence,
        deviation=deviation,
    )
    return interval.clipped() if clip_to_unit else interval


@dataclass
class DeltaMethodModel:
    """A locally-linear function of approximately normal inputs.

    Attributes
    ----------
    value:
        ``f(e_1, ..., e_k)`` — the point estimate.
    gradient:
        Length-k vector of partial derivatives ``d_i``.
    covariance:
        ``k x k`` covariance matrix of the inputs.
    """

    value: float
    gradient: np.ndarray
    covariance: np.ndarray

    def __post_init__(self) -> None:
        self.gradient = np.asarray(self.gradient, dtype=float).reshape(-1)
        self.covariance = np.asarray(self.covariance, dtype=float)
        k = self.gradient.size
        if self.covariance.shape != (k, k):
            raise ConfigurationError(
                f"covariance must be {k}x{k} to match the gradient, "
                f"got shape {self.covariance.shape}"
            )
        if not np.all(np.isfinite(self.gradient)):
            raise ConfigurationError("gradient contains non-finite entries")
        if not np.all(np.isfinite(self.covariance)):
            raise ConfigurationError("covariance contains non-finite entries")

    @property
    def variance(self) -> float:
        """``sum_ij d_i d_j c_ij``, floored at zero against round-off."""
        raw = float(self.gradient @ self.covariance @ self.gradient)
        return max(raw, 0.0)

    @property
    def deviation(self) -> float:
        """Standard deviation of the output estimator."""
        return math.sqrt(self.variance)

    def interval(self, confidence: float, clip_to_unit: bool = True) -> ConfidenceInterval:
        """The c-confidence interval for the output (Equation (2))."""
        return confidence_interval_from_moments(
            self.value, self.deviation, confidence, clip_to_unit=clip_to_unit
        )

    @classmethod
    def linear_combination(
        cls,
        values: np.ndarray,
        weights: np.ndarray,
        covariance: np.ndarray,
    ) -> "DeltaMethodModel":
        """Model for ``Y = sum_k a_k X_k`` (Algorithm A2, Step 3).

        For a linear function the gradient is simply the weight vector, so the
        delta method is exact (no local-linearity approximation needed).
        """
        values = np.asarray(values, dtype=float).reshape(-1)
        weights = np.asarray(weights, dtype=float).reshape(-1)
        if values.shape != weights.shape:
            raise ConfigurationError(
                f"values and weights must have equal length, "
                f"got {values.size} and {weights.size}"
            )
        return cls(
            value=float(weights @ values),
            gradient=weights,
            covariance=covariance,
        )
