"""Algorithm A2: m-worker binary non-regular confidence intervals.

For each worker ``w_i``:

1. the remaining workers are paired up (Section III-C1, greedy by default),
   each pair plus ``w_i`` forming a triple;
2. the 3-worker procedure of Section III-B is run on every triple, producing
   an estimate ``p_{k,i}``, its deviation ``Dev_{k,i}`` and the partial
   derivatives of the estimate with respect to the agreement rates of ``w_i``
   with its two partners;
3. the cross-triple covariances of the estimates are computed (Lemma 4), the
   minimum-variance weights are obtained (Lemma 5, or uniform weights), and
   Theorem 1 applied to the weighted combination yields the final interval.

Step 3 is the batch-evaluation hot path: with ``l ~ m/2`` triples per worker
it assembles an ``l x l`` covariance whose every entry needs a triple count
``c_{i,j,j'}`` and a partner agreement rate, i.e. O(m^3) Lemma-4 terms over
all workers.  When the agreement statistics carry a dense backend (see
:mod:`repro.data.dense_backend`), the assembly is vectorized: the triple
counts come from the backend's cached triple-count tensor (or one masked
matrix product per worker) and the whole term grid is evaluated with NumPy
elementwise arithmetic that replicates the scalar code's floating-point
operation order exactly, so both paths return bit-identical intervals.
During ``evaluate_all`` the aggregation is additionally batched *across*
workers (``batch_lemma4=``): workers are grouped by triple count, the
groups' covariance grids are stacked into 3-D tensors, and the Lemma-5
weight solve runs as one batched factorization per group.  Step 2 is
batched the same way (:func:`~repro.core.three_worker.evaluate_triples_batched`
evaluates all of a worker's triples in one vectorized pass), and
``evaluate_all`` can additionally be sharded across processes over
shared-memory statistics arrays (``shards=``; see :class:`MWorkerEstimator`
for the determinism contract).  The scalar loops are kept as the reference
(and the fallback for the dict backend and for degenerate pairings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.core.delta_method import DeltaMethodModel, confidence_interval_from_moments
from repro.core.deps import WorkerFootprint
from repro.core.pairing import form_triples
from repro.core.three_worker import (
    MIN_AGREEMENT_MARGIN,
    clamp_agreement,
    evaluate_triples_batched_arrays,
    evaluate_worker_in_triple,
    smoothed_variance_rate,
)
from repro.core.weights import batched_optimal_weights, optimal_weights, uniform_weights
from repro.data.response_matrix import ResponseMatrix
from repro.types import (
    ConfidenceInterval,
    EstimateStatus,
    TripleEstimate,
    WorkerErrorEstimate,
)

__all__ = ["MWorkerEstimator", "evaluate_worker", "evaluate_all_workers"]


#: Upper bound on triples per batched-stage invocation (memory chunking of
#: the cross-worker batch; worker-aligned chunks may overshoot by one
#: worker's triples).
_BATCH_STAGE_CHUNK_TRIPLES: int = 2**18

#: Upper bound on the cells of one stacked Lemma-4 covariance tensor
#: (``g x l x l`` float64); groups larger than this are processed in
#: sub-batches.  2^24 cells keeps the stack around 128 MB.  Sub-batching
#: cannot change results: every batched operation is per-slice.
_LEMMA4_GROUP_CELLS: int = 2**24


@lru_cache(maxsize=128)
def _upper_triangle_indices_cached(n: int) -> tuple[np.ndarray, np.ndarray]:
    return np.triu_indices(n, k=1)


def _upper_triangle_indices(n: int) -> tuple[np.ndarray, np.ndarray]:
    """``np.triu_indices(n, k=1)``, memoized for small ``n`` only.

    Batch evaluation reuses a few sizes thousands of times, but each cached
    entry holds two ``n(n-1)/2`` int64 arrays — memoizing large sizes would
    retain far more memory than it saves (and once per shard process), so
    those fall through to a fresh computation.
    """
    if n > 256:
        return np.triu_indices(n, k=1)
    return _upper_triangle_indices_cached(n)


def _pair_covariance_term(
    stats: AgreementStatistics,
    worker: int,
    partner_a: int,
    partner_b: int,
    p_worker: float,
    clamp_margin: float,
) -> float:
    """The quantity ``C(i, j, j')`` of Lemma 4.

    ``C(i, j, j') = c_ijj' * p_i (1 - p_i) (2 q_jj' - 1) / (c_ij * c_ij')``.
    When the two partners share no task, ``c_ijj' = 0`` and the term vanishes.
    """
    if partner_a == partner_b:
        # Same partner appears in both triples: the shared agreement rate is
        # identical, so the covariance term is Var(Q_{i,j}).
        c_ij = stats.common_count(worker, partner_a)
        q_ij, _ = clamp_agreement(stats.agreement_rate(worker, partner_a), clamp_margin)
        q_var = smoothed_variance_rate(q_ij, c_ij)
        return q_var * (1.0 - q_var) / c_ij
    c_triple = stats.triple_common_count(worker, partner_a, partner_b)
    if c_triple == 0:
        return 0.0
    c_ia = stats.common_count(worker, partner_a)
    c_ib = stats.common_count(worker, partner_b)
    if stats.common_count(partner_a, partner_b) == 0:
        return 0.0
    q_ab, _ = clamp_agreement(stats.agreement_rate(partner_a, partner_b), clamp_margin)
    return c_triple * p_worker * (1.0 - p_worker) * (2.0 * q_ab - 1.0) / (c_ia * c_ib)


def _cross_triple_covariance(
    stats: AgreementStatistics,
    worker: int,
    triple_a: TripleEstimate,
    triple_b: TripleEstimate,
    p_worker: float,
    clamp_margin: float,
) -> float:
    """Lemma 4: covariance between the estimates from two different triples.

    Only the agreement rates involving the evaluated worker contribute: the
    partners' mutual agreement rates live on disjoint worker pairs across
    triples and are therefore uncorrelated under the model.
    """
    total = 0.0
    for partner_a, derivative_a in triple_a.derivatives.items():
        for partner_b, derivative_b in triple_b.derivatives.items():
            term = _pair_covariance_term(
                stats, worker, partner_a, partner_b, p_worker, clamp_margin
            )
            total += derivative_a * derivative_b * term
    return total


def _vectorized_cross_covariances(
    stats: AgreementStatistics,
    worker: int,
    triple_estimates: list[TripleEstimate],
    p_worker: float,
    clamp_margin: float,
    fast_counts: bool = False,
) -> np.ndarray | None:
    """All Lemma-4 cross-triple covariances for one worker, in one shot.

    Returns the full ``l x l`` grid of off-diagonal covariance values (the
    diagonal entries are meaningless and must be overwritten by the caller),
    or None when the fast path does not apply — no dense backend, or a
    partner appearing in two triples (which the paper's pairing strategies
    never produce, but the scalar path supports).

    Every elementwise expression below mirrors the exact floating-point
    operation order of :func:`_pair_covariance_term` /
    :func:`_cross_triple_covariance`, so the result is bit-identical to the
    scalar loop.
    """
    if not stats.has_dense_backend:
        return None
    if not _lemma4_batchable(triple_estimates):
        return None
    n = len(triple_estimates)
    first_partners = [t.partners[0] for t in triple_estimates]
    second_partners = [t.partners[1] for t in triple_estimates]
    partners = np.asarray(first_partners + second_partners, dtype=np.int64)
    fast_inputs = (
        stats.lemma4_inputs(worker, partners, clamp_margin) if fast_counts else None
    )
    if fast_inputs is not None:
        c_with_worker, two_q_minus_1, c_triple = fast_inputs
    else:
        inputs = stats.triple_covariance_inputs(worker, partners)
        c_triple = inputs.triple_counts
        c_with_worker = inputs.common_with_worker
        with np.errstate(divide="ignore", invalid="ignore"):
            q = inputs.partner_agreements / inputs.partner_common
        # clamp_agreement, elementwise and in the same order.
        q = np.where(q > 1.0, 1.0, q)
        lower = 0.5 + clamp_margin
        q = np.where(q < lower, lower, q)
        two_q_minus_1 = 2.0 * q - 1.0
    numerator = ((c_triple * p_worker) * (1.0 - p_worker)) * two_q_minus_1
    denominator = c_with_worker[:, None] * c_with_worker[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        term = numerator / denominator
    term = np.where(c_triple > 0, term, 0.0)

    d_first = np.array(
        [t.derivatives[p] for t, p in zip(triple_estimates, first_partners)]
    )
    d_second = np.array(
        [t.derivatives[p] for t, p in zip(triple_estimates, second_partners)]
    )
    # Same term order and summation order as the scalar double loop:
    # (first, first), (first, second), (second, first), (second, second).
    u_1 = (d_first[:, None] * d_first[None, :]) * term[:n, :n]
    u_2 = (d_first[:, None] * d_second[None, :]) * term[:n, n:]
    u_3 = (d_second[:, None] * d_first[None, :]) * term[n:, :n]
    u_4 = (d_second[:, None] * d_second[None, :]) * term[n:, n:]
    return ((u_1 + u_2) + u_3) + u_4


def _lemma4_batchable(triple_estimates: list[TripleEstimate]) -> bool:
    """Whether a worker's triples fit the stacked Lemma-4 fast path.

    Mirrors the partner-distinctness precondition of
    :func:`_vectorized_cross_covariances`: a partner appearing in two
    triples (which the paper's pairing strategies never produce, but the
    scalar path supports) sends the worker through the per-worker
    aggregation instead.
    """
    partner_list = [t.partners[0] for t in triple_estimates] + [
        t.partners[1] for t in triple_estimates
    ]
    return len(set(partner_list)) == 2 * len(triple_estimates)


def _full_grid_cross_covariances(
    c3: np.ndarray,
    common_with_worker: np.ndarray,
    two_q_minus_1: np.ndarray,
    d_first: np.ndarray,
    d_second: np.ndarray,
    first: np.ndarray,
    second: np.ndarray,
    p_worker: float,
) -> np.ndarray:
    """One worker's Lemma-4 cross-covariance grid from whole-matrix inputs.

    Equivalent to :func:`_vectorized_cross_covariances`, restructured for
    the grouped fast path: the term grid is evaluated over *all* worker
    pairs (``c3`` is the worker's full ``(m, m)`` triple-count grid,
    ``two_q_minus_1`` the global pre-clamped rate matrix,
    ``common_with_worker`` the worker's pair-count row) and the partner
    quadrants are gathered afterwards.  Gathering after instead of before
    cannot change any value — every term is a pure elementwise function of
    its own entry's inputs, in the exact operation order of the per-worker
    helper — and the term grid is bit-exactly symmetric (every input matrix
    is, and IEEE multiplication commutes), so the ``(second, first)``
    quadrant is served by the transpose of the ``(first, second)`` gather.
    The quadrant sum order matches the scalar double loop.
    """
    # The grid arrives float32 (exact integers); the term arithmetic must
    # run in float64 to replay the per-worker helper's operations.
    c3 = np.asarray(c3, dtype=np.float64)
    denominator = common_with_worker[:, None] * common_with_worker[None, :]
    numerator = ((c3 * p_worker) * (1.0 - p_worker)) * two_q_minus_1
    with np.errstate(divide="ignore", invalid="ignore"):
        term = numerator / denominator
    term = np.where(c3 > 0, term, 0.0)
    t_ff = term[first[:, None], first[None, :]]
    t_fs = term[first[:, None], second[None, :]]
    t_ss = term[second[:, None], second[None, :]]
    u_1 = (d_first[:, None] * d_first[None, :]) * t_ff
    u_2 = (d_first[:, None] * d_second[None, :]) * t_fs
    u_3 = (d_second[:, None] * d_first[None, :]) * t_fs.T
    u_4 = (d_second[:, None] * d_second[None, :]) * t_ss
    return ((u_1 + u_2) + u_3) + u_4


@dataclass
class MWorkerEstimator:
    """Configurable m-worker binary estimator (Algorithm A2).

    Parameters
    ----------
    confidence:
        Confidence level ``c`` of the produced intervals.
    optimize_weights:
        Use Lemma 5's minimum-variance weights (True, the paper's default) or
        uniform weights (False, the Fig 2(c) ablation).
    pairing_strategy:
        ``"greedy"`` (Section III-C1) or ``"random"`` (ablation).
    clamp_margin:
        Numerical guard keeping agreement rates away from the Eq. (1)
        singularity at 1/2.
    min_overlap:
        Minimum number of common tasks required between members of a triple.
    rng:
        Only needed for the random pairing strategy.
    backend:
        Agreement-statistics backend: ``"dense"`` (vectorized NumPy),
        ``"sparse"`` (scipy.sparse CSR pair counts + fill-restricted triple
        grids), ``"bitset"`` (packed-rows low-memory mode), ``"dict"``
        (original lazy set intersections) or ``"auto"`` (cost-based
        selection over grid size and observed fill; see
        :func:`~repro.data.dense_backend.auto_backend_choice`).  All
        produce bit-identical intervals; the vectorized backends are
        ~10-100x faster for batch evaluation, and sparse/bitset open
        low-fill grids the dense arrays cannot hold.  Ignored when a
        prebuilt ``stats`` object is supplied.
    batch_triples:
        Evaluate all of a worker's triples in one vectorized pass (Step 2 of
        Algorithm A2) instead of the sequential per-triple loop.  Requires
        the dense backend (silently ignored otherwise) and produces
        bit-identical results; the knob exists so benchmarks and the
        differential test suite can pin down each path.
    batch_lemma4:
        Batch Step 3 of Algorithm A2 across workers during
        :meth:`evaluate_all`: workers are grouped by triple count ``l``,
        their ``l x l`` Lemma-4 covariance grids are stacked into a 3-D
        tensor assembled with broadcast NumPy, and the Lemma-5 weight solve
        runs as one batched ``linalg.solve`` per group (with per-matrix
        fallback for slices the batched Cholesky/LU rejects, so a
        near-singular grid never perturbs its batch-mates).  Only active on
        the batched ``evaluate_all`` path (requires ``batch_triples`` and
        the dense backend; silently ignored otherwise — single-worker
        :meth:`evaluate_worker` calls always use the per-worker
        aggregation).  Bit-identical to the per-worker path by the same
        pinned-operation-order construction as ``batch_triples``; the knob
        exists so benchmarks and the differential suite can pin each path.
    shards:
        Execution spec for :meth:`evaluate_all` (parsed by
        :func:`~repro.core.parallel.parse_shard_spec`).  ``1`` (the
        default) stays serial; an integer ``N > 1`` partitions the worker
        loop across ``N`` processes of the reusable
        :class:`~repro.core.parallel.ShardExecutor`, with the backend's
        precomputed statistics exported once via
        ``multiprocessing.shared_memory``; ``"thread:N"`` uses the thread
        tier (no export — the NumPy kernels release the GIL);
        ``"process:N"`` names the process tier explicitly; ``"auto"``
        picks serial/thread/process from the
        :func:`~repro.core.parallel.auto_shard_choice` cost model.

    Shard/merge determinism contract
    --------------------------------
    Sharded evaluation is bit-identical to serial evaluation by
    construction, and the cross-backend differential suite enforces it:

    * every statistic a shard reads comes from the *same* frozen arrays the
      serial path reads (the parent builds the dense backend's attempt,
      label and pair-count matrices once and shares them read-only);
    * each worker's estimate depends only on those arrays and the estimator
      configuration — never on which shard computed it, on shard count, or
      on evaluation order across workers;
    * workers are partitioned into contiguous index ranges, each shard
      returns its estimates in worker order, and the parent concatenates
      the shard results in shard order, which *is* worker order ``0..m-1``.

    ``batch_lemma4`` composes with sharding: each shard runs the batched
    Lemma-4/5 aggregation over its own worker range (grouping by triple
    count *within* the shard).  Because every batched operation is
    per-slice, group membership — and therefore shard membership — cannot
    influence any worker's numbers, so ``shards=N`` plus ``batch_lemma4``
    remains bit-identical to the serial scalar path.  The thread tier
    shares the parent's statistics object outright (every lazily-built
    cache is materialized before the fan-out), so it is bit-identical for
    the same reason with even less machinery.

    Execution tiers and thresholds
    ------------------------------
    ``shards="auto"`` resolves through the
    :func:`~repro.core.parallel.auto_shard_choice` cost model on the work
    proxy ``m^2 * n * fill`` (the Lemma-4 term count): below
    :data:`~repro.core.parallel.AUTO_SHARD_THREAD_MIN_WORK` (2^22) the
    batch stays **serial** — chunking overhead dominates; up to
    :data:`~repro.core.parallel.AUTO_SHARD_PROCESS_MIN_WORK` (2^27) it
    uses the **thread** tier (no export, no spawn; the NumPy kernels
    release the GIL); above that the **process** tier, whose per-call
    shared-memory export amortizes against the evaluation.  Shard count is
    ``min(usable cores, 8, m)``, and hosts with fewer than two usable
    cores always resolve serial — no tier can beat serial without
    parallel hardware.

    Any tier falls back to serial whenever the contract cannot hold or
    sharding cannot help: no vectorized backend (the dict path), fewer
    workers than shards, a custom ``rng`` (the random pairing strategy
    consumes the generator sequentially across workers, which no pool can
    replicate), or an attached statistics observer (the legacy per-read
    dependency recorder must see every read; the incremental evaluator no
    longer attaches one on vectorized backends — it consumes the
    footprints :meth:`evaluate_worker_range` returns instead, so its
    recomputes shard like any batch run).  The process tier additionally
    requires
    ``supports_shared_export``, which every vectorized backend — dense,
    sparse and bitset — now provides (see
    :meth:`~repro.data.dense_backend.AgreementBackendBase.export_shared_state`).
    The batching knobs need no such fallback: ``batch_triples`` and
    ``batch_lemma4`` compose with every vectorized backend (see the
    capability matrix in :mod:`repro.core.agreement`).
    """

    confidence: float = 0.95
    optimize_weights: bool = True
    pairing_strategy: str = "greedy"
    clamp_margin: float = MIN_AGREEMENT_MARGIN
    min_overlap: int = 1
    rng: np.random.Generator | None = None
    backend: str = "auto"
    batch_triples: bool = True
    batch_lemma4: bool = True
    shards: int | str = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )
        if self.min_overlap < 1:
            raise ConfigurationError(
                f"min_overlap must be at least 1, got {self.min_overlap}"
            )
        # Reject malformed specs at construction, not at the first
        # evaluate_all (imported lazily: parallel imports this module in
        # its shard workers).
        from repro.core.parallel import parse_shard_spec

        parse_shard_spec(self.shards)

    # ------------------------------------------------------------------ #

    def evaluate_worker(
        self,
        matrix: ResponseMatrix,
        worker: int,
        stats: AgreementStatistics | None = None,
    ) -> WorkerErrorEstimate:
        """Confidence interval for one worker's error rate."""
        if not matrix.is_binary:
            raise ConfigurationError(
                "the m-worker estimator handles binary data; use the k-ary "
                "estimator for higher arities"
            )
        if matrix.n_workers < 3:
            raise InsufficientDataError(
                "at least 3 workers are required to estimate error rates "
                "without a gold standard"
            )
        if stats is None:
            stats = compute_agreement_statistics(matrix, backend=self.backend)
        return self._evaluate_worker_impl(matrix, stats, worker)

    def _evaluate_worker_impl(
        self,
        matrix: ResponseMatrix,
        stats: AgreementStatistics,
        worker: int,
        footprint_sink: list | None = None,
    ) -> WorkerErrorEstimate:
        """One worker's estimate, optionally recording its read footprint.

        When ``footprint_sink`` is given, a
        :class:`~repro.core.deps.WorkerFootprint` summarizing every
        statistic the evaluation reads is appended (greedy pairing only) —
        derived from the pairing scan log and the formed partners, not from
        per-read callbacks, so it works on every fast path.
        """
        candidates = [w for w in range(matrix.n_workers) if w != worker]
        probe_log: list[tuple[int, int]] | None = (
            [] if footprint_sink is not None else None
        )
        triples = form_triples(
            stats,
            worker,
            candidates,
            strategy=self.pairing_strategy,
            rng=self.rng,
            min_overlap=self.min_overlap,
            accelerate=self.batch_triples,
            probe_log=probe_log,
        )
        if footprint_sink is not None:
            footprint_sink.append(
                WorkerFootprint.from_evaluation(
                    worker,
                    (p for _, a, b in triples for p in (a, b)),
                    probe_log or (),
                )
            )
        if not triples:
            return self._degenerate_estimate(matrix, worker)

        pairs = [(partner_a, partner_b) for _, partner_a, partner_b in triples]
        if self.batch_triples and stats.has_dense_backend:
            # Batched Step 2: all triples in one vectorized pass; unusable
            # slots are the triples the scalar loop would have skipped with
            # InsufficientDataError.
            arrays = evaluate_triples_batched_arrays(
                stats, worker, pairs, clamp_margin=self.clamp_margin
            )
            triple_estimates, worst_status = self._triples_from_arrays(
                stats, worker, pairs, arrays
            )
        else:
            triple_estimates = []
            worst_status = EstimateStatus.OK
            for pair in pairs:
                try:
                    result = evaluate_worker_in_triple(
                        stats, worker, pair, clamp_margin=self.clamp_margin
                    )
                except InsufficientDataError:
                    continue
                triple_estimates.append(
                    TripleEstimate(
                        worker=worker,
                        partners=pair,
                        error_rate=result.error_rate,
                        deviation=result.deviation,
                        derivatives=result.derivative_by_partner,
                        status=result.status,
                    )
                )
                if result.status is EstimateStatus.CLAMPED:
                    worst_status = EstimateStatus.CLAMPED
        return self._finalize_worker(
            matrix, stats, worker, triple_estimates, worst_status
        )

    def _triples_from_arrays(
        self,
        stats: AgreementStatistics,
        worker: int,
        pairs: list[tuple[int, int]],
        arrays,
    ) -> tuple[list[TripleEstimate], EstimateStatus]:
        """Materialize TripleEstimate records from batched stage arrays."""
        triple_estimates: list[TripleEstimate] = []
        worst_status = EstimateStatus.OK
        estimates = arrays.estimates.tolist()
        deviations = arrays.deviations.tolist()
        d_a = arrays.d_partner_a.tolist()
        d_b = arrays.d_partner_b.tolist()
        clamped = arrays.clamped.tolist()
        needs_scalar = arrays.needs_scalar.tolist()
        for t in np.flatnonzero(arrays.usable).tolist():
            pair = pairs[t]
            if needs_scalar[t]:
                result = evaluate_worker_in_triple(
                    stats, worker, pair, clamp_margin=self.clamp_margin
                )
                error_rate, deviation = result.error_rate, result.deviation
                derivatives = result.derivative_by_partner
                status = result.status
            else:
                error_rate = estimates[t]
                deviation = deviations[t]
                derivatives = {pair[0]: d_a[t], pair[1]: d_b[t]}
                status = EstimateStatus.CLAMPED if clamped[t] else EstimateStatus.OK
            triple_estimates.append(
                TripleEstimate(
                    worker=worker,
                    partners=pair,
                    error_rate=error_rate,
                    deviation=deviation,
                    derivatives=derivatives,
                    status=status,
                )
            )
            if status is EstimateStatus.CLAMPED:
                worst_status = EstimateStatus.CLAMPED
        return triple_estimates, worst_status

    def _finalize_worker(
        self,
        matrix: ResponseMatrix,
        stats: AgreementStatistics,
        worker: int,
        triple_estimates: list[TripleEstimate],
        worst_status: EstimateStatus,
    ) -> WorkerErrorEstimate:
        """Step 3 plus result packaging, shared by all execution paths."""
        if not triple_estimates:
            return self._degenerate_estimate(matrix, worker)
        interval, weights = self._aggregate(stats, worker, triple_estimates)
        return WorkerErrorEstimate(
            worker=worker,
            interval=interval,
            n_tasks=matrix.n_tasks_of(worker),
            triples=tuple(triple_estimates),
            weights=tuple(float(w) for w in weights),
            status=worst_status,
        )

    def evaluate_all(self, matrix: ResponseMatrix) -> list[WorkerErrorEstimate]:
        """Confidence intervals for every worker in the matrix.

        The ``shards`` spec selects the execution tier — serial,
        thread-chunked, or process-sharded over shared-memory statistics
        arrays through the reusable executor; see the class docstring for
        the tier thresholds, the determinism contract and the
        serial-fallback guards.
        """
        from repro.core.parallel import (
            evaluate_all_process,
            evaluate_all_threaded,
            resolve_execution,
        )

        stats = compute_agreement_statistics(matrix, backend=self.backend)
        tier, shards = resolve_execution(self, matrix, stats)
        if tier == "process":
            return evaluate_all_process(self, matrix, stats, shards)
        if tier == "thread":
            return evaluate_all_threaded(self, matrix, stats, shards)
        return self.evaluate_worker_range(
            matrix, stats, list(range(matrix.n_workers))
        )

    def evaluate_worker_range(
        self,
        matrix: ResponseMatrix,
        stats: AgreementStatistics,
        workers: list[int],
        collect_footprints: bool = False,
    ) -> (
        list[WorkerErrorEstimate]
        | tuple[list[WorkerErrorEstimate], list["WorkerFootprint"]]
    ):
        """Evaluate a set of workers sharing one statistics object.

        This is the common entry point of the serial batch path and of each
        shard process (which passes its contiguous worker range): when the
        batched stage applies, the workers' triples are evaluated in
        cross-worker batches, otherwise each worker goes through
        :meth:`evaluate_worker`.  Results are returned in the order of
        ``workers``.

        With ``collect_footprints=True`` the return value is the pair
        ``(estimates, footprints)``: one
        :class:`~repro.core.deps.WorkerFootprint` per worker, aligned with
        ``workers``, summarizing the statistics each estimate read.  This
        is the footprint protocol the incremental evaluator's dependency
        ledger consumes — it replaces the per-read ``observer`` callback,
        works on every execution path (batched, thread- and
        process-sharded), and requires the greedy pairing strategy.
        """
        if collect_footprints and (
            self.pairing_strategy != "greedy" or self.rng is not None
        ):
            raise ConfigurationError(
                "footprint collection requires the greedy pairing strategy "
                "without a custom rng"
            )
        if (
            self.batch_triples
            and stats.has_dense_backend
            and stats.observer is None
            and matrix.is_binary
            and matrix.n_workers >= 3
        ):
            return self._evaluate_workers_batched(
                matrix, stats, workers, collect_footprints
            )
        if not collect_footprints:
            return [
                self.evaluate_worker(matrix, worker, stats=stats)
                for worker in workers
            ]
        if not matrix.is_binary:
            raise ConfigurationError(
                "the m-worker estimator handles binary data; use the k-ary "
                "estimator for higher arities"
            )
        if matrix.n_workers < 3:
            raise InsufficientDataError(
                "at least 3 workers are required to estimate error rates "
                "without a gold standard"
            )
        footprints: list[WorkerFootprint] = []
        results = [
            self._evaluate_worker_impl(
                matrix, stats, worker, footprint_sink=footprints
            )
            for worker in workers
        ]
        return results, footprints

    def _evaluate_workers_batched(
        self,
        matrix: ResponseMatrix,
        stats: AgreementStatistics,
        workers: list[int],
        collect_footprints: bool = False,
    ) -> (
        list[WorkerErrorEstimate]
        | tuple[list[WorkerErrorEstimate], list["WorkerFootprint"]]
    ):
        """The cross-worker batch: every worker's triples in one stage pass.

        Pairing runs per worker (exactly as the serial loop does, including
        ``rng`` consumption order for the random strategy), then all formed
        triples are concatenated and evaluated in a single invocation of the
        batched triple stage; the Lemma-4 aggregation consumes contiguous
        row windows of the result — grouped across workers when
        ``batch_lemma4`` is set, per worker otherwise.  Bit-identical to
        calling :meth:`evaluate_worker` per worker — elementwise arithmetic
        on a concatenation is elementwise arithmetic on each window.

        Footprints depend only on pairing (the scan log and the formed
        partners), so collecting them here yields exactly what the serial
        per-worker path would collect.
        """
        n_workers = matrix.n_workers
        per_worker_pairs: list[list[tuple[int, int]]] = []
        footprints: list[WorkerFootprint] = []
        for worker in workers:
            candidates = [w for w in range(n_workers) if w != worker]
            probe_log: list[tuple[int, int]] | None = (
                [] if collect_footprints else None
            )
            triples = form_triples(
                stats,
                worker,
                candidates,
                strategy=self.pairing_strategy,
                rng=self.rng,
                min_overlap=self.min_overlap,
                accelerate=True,
                probe_log=probe_log,
            )
            per_worker_pairs.append([(a, b) for _, a, b in triples])
            if collect_footprints:
                footprints.append(
                    WorkerFootprint.from_evaluation(
                        worker,
                        (p for _, a, b in triples for p in (a, b)),
                        probe_log or (),
                    )
                )
        results: list[WorkerErrorEstimate] = []
        # Stage chunking: concatenating *all* workers' triples would peak at
        # O(m^2) transient memory on worker-heavy matrices; processing
        # worker-aligned chunks of bounded triple count keeps the identical
        # elementwise results (and the worker-major error ordering) while
        # bounding the spike.  2^18 triples is a few-hundred-MB ceiling.
        chunk_indices: list[int] = []
        chunk_size = 0
        for index in range(len(workers)):
            chunk_indices.append(index)
            chunk_size += len(per_worker_pairs[index])
            if chunk_size >= _BATCH_STAGE_CHUNK_TRIPLES and index < len(workers) - 1:
                self._evaluate_worker_chunk(
                    matrix,
                    stats,
                    [workers[i] for i in chunk_indices],
                    [per_worker_pairs[i] for i in chunk_indices],
                    results,
                )
                chunk_indices, chunk_size = [], 0
        if chunk_indices:
            self._evaluate_worker_chunk(
                matrix,
                stats,
                [workers[i] for i in chunk_indices],
                [per_worker_pairs[i] for i in chunk_indices],
                results,
            )
        if collect_footprints:
            return results, footprints
        return results

    def _evaluate_worker_chunk(
        self,
        matrix: ResponseMatrix,
        stats: AgreementStatistics,
        chunk_workers: list[int],
        chunk_pairs: list[list[tuple[int, int]]],
        results: list[WorkerErrorEstimate],
    ) -> None:
        """Run the batched stage for one worker-aligned chunk, appending to
        ``results`` in worker order."""
        counts = [len(pairs) for pairs in chunk_pairs]
        flat_pairs = [pair for pairs in chunk_pairs for pair in pairs]
        arrays = None
        if flat_pairs:
            worker_ids = np.repeat(
                np.asarray(chunk_workers, dtype=np.int64), counts
            )
            arrays = evaluate_triples_batched_arrays(
                stats, worker_ids, flat_pairs, clamp_margin=self.clamp_margin
            )
        chunk_results: list[WorkerErrorEstimate | None] = [None] * len(chunk_workers)
        # Workers eligible for the grouped Lemma-4 batch, keyed by triple
        # count; each value holds (position in chunk, worker, triples,
        # worst status, optional stage-array views).
        groups: dict[int, list[tuple]] = {}
        offset = 0
        for position, (worker, pairs) in enumerate(zip(chunk_workers, chunk_pairs)):
            if not pairs:
                chunk_results[position] = self._degenerate_estimate(matrix, worker)
                continue
            window = arrays.slice(offset, offset + len(pairs))
            offset += len(pairs)
            triple_estimates, worst_status = self._triples_from_arrays(
                stats, worker, pairs, window
            )
            if not (self.batch_lemma4 and len(triple_estimates) >= 2):
                chunk_results[position] = self._finalize_worker(
                    matrix, stats, worker, triple_estimates, worst_status
                )
                continue
            # The common case — every triple usable straight from the stage
            # arrays — hands the group the array views; otherwise the group
            # re-extracts from the materialized records (same values).
            ext = None
            if bool(window.usable.all()) and not bool(window.needs_scalar.any()):
                pairs_array = np.asarray(pairs, dtype=np.int64)
                if np.unique(pairs_array).size != 2 * len(pairs):
                    chunk_results[position] = self._finalize_worker(
                        matrix, stats, worker, triple_estimates, worst_status
                    )
                    continue
                ext = (
                    window.estimates,
                    window.deviations,
                    window.d_partner_a,
                    window.d_partner_b,
                    pairs_array,
                )
            elif not _lemma4_batchable(triple_estimates):
                chunk_results[position] = self._finalize_worker(
                    matrix, stats, worker, triple_estimates, worst_status
                )
                continue
            groups.setdefault(len(triple_estimates), []).append(
                (position, worker, triple_estimates, worst_status, ext)
            )
        for group in groups.values():
            estimates = self._finalize_worker_group(
                matrix, stats, [entry[1:] for entry in group]
            )
            for (position, *_), estimate in zip(group, estimates):
                chunk_results[position] = estimate
        results.extend(chunk_results)

    def _finalize_worker_group(
        self,
        matrix: ResponseMatrix,
        stats: AgreementStatistics,
        group: list[tuple],
    ) -> list[WorkerErrorEstimate]:
        """Step 3 for a group of workers sharing one triple count ``l``.

        The group's ``l x l`` Lemma-4 covariance grids are assembled into
        one stacked ``(g, l, l)`` tensor — each grid evaluated over the
        worker's full-matrix term grid (:func:`_full_grid_cross_covariances`
        over the cached triple-count tensor) — the diagonal and symmetric
        mirror are applied across the whole stack at once, and the Lemma-5
        weights come from one batched Cholesky + solve
        (:func:`~repro.core.weights.batched_optimal_weights`, with
        per-matrix fallback for rejected slices).  The O(l) packaging —
        plug-in means, squared deviations, the final Theorem-1 interval —
        replays the scalar code per worker, so every estimate is
        bit-identical to :meth:`_finalize_worker` on the same inputs.
        Group entries are ``(worker, triples, worst_status, ext)`` where
        ``ext`` optionally carries the stage-array views to skip
        re-extracting per-triple scalars.  Groups larger than the memory
        cap are processed in sub-batches, which cannot change results
        (every batched operation is per-slice).
        """
        n = len(group[0][1])
        max_group = max(1, _LEMMA4_GROUP_CELLS // max(1, n * n))
        if len(group) > max_group:
            results: list[WorkerErrorEstimate] = []
            for start in range(0, len(group), max_group):
                results.extend(
                    self._finalize_worker_group(
                        matrix, stats, group[start : start + max_group]
                    )
                )
            return results
        inputs = stats.lemma4_group_inputs(self.clamp_margin)
        if inputs is None:  # pragma: no cover - guarded by callers
            return [
                self._finalize_worker(matrix, stats, worker, triples, status)
                for worker, triples, status, _ in group
            ]
        common_f64, two_q_minus_1 = inputs
        backend = stats.backend
        g = len(group)
        values = np.empty((g, n))
        diagonals = np.empty((g, n))
        weights_rows: np.ndarray
        covariance = np.empty((g, n, n))
        for index, (worker, triples, _, ext) in enumerate(group):
            if ext is not None:
                estimates_row, deviations_row, d_first, d_second, pairs_array = ext
                first = pairs_array[:, 0]
                second = pairs_array[:, 1]
                squared = [d**2 for d in deviations_row.tolist()]
            else:
                estimates_row = np.array([t.error_rate for t in triples])
                squared = [t.deviation**2 for t in triples]
                first_list = [t.partners[0] for t in triples]
                second_list = [t.partners[1] for t in triples]
                first = np.asarray(first_list, dtype=np.int64)
                second = np.asarray(second_list, dtype=np.int64)
                d_first = np.array(
                    [t.derivatives[p] for t, p in zip(triples, first_list)]
                )
                d_second = np.array(
                    [t.derivatives[p] for t, p in zip(triples, second_list)]
                )
            values[index] = estimates_row
            diagonals[index] = squared
            # Same plug-in clamp as the scalar path, on the same values.
            p_plugin = min(max(float(np.mean(estimates_row)), 0.0), 0.5)
            covariance[index] = _full_grid_cross_covariances(
                backend.triple_count_grid_full(worker),
                common_f64[worker],
                two_q_minus_1,
                d_first,
                d_second,
                first,
                second,
                p_plugin,
            )
        # Batched finish of the Lemma-4 assembly: mirror the upper triangle
        # over the lower (exactly as the per-worker path does) and overwrite
        # the meaningless cross diagonal with the squared deviations.
        upper = _upper_triangle_indices(n)
        covariance[:, upper[1], upper[0]] = covariance[:, upper[0], upper[1]]
        diagonal_index = np.arange(n)
        covariance[:, diagonal_index, diagonal_index] = diagonals
        if self.optimize_weights:
            weights_rows = batched_optimal_weights(covariance)
        else:
            # Materialized (not broadcast) rows so the per-worker Theorem-1
            # dot products below run on the same contiguous layout as the
            # scalar path.
            weights_rows = np.tile(uniform_weights(n), (g, 1))
        estimates: list[WorkerErrorEstimate] = []
        for index, (worker, triples, worst_status, _) in enumerate(group):
            weights = weights_rows[index]
            # DeltaMethodModel.linear_combination + .interval, inlined with
            # the identical operations (its finiteness validation is skipped;
            # every input here is finite by construction).
            value = float(weights @ values[index])
            raw = float(weights @ covariance[index] @ weights)
            deviation = math.sqrt(max(raw, 0.0))
            estimates.append(
                WorkerErrorEstimate(
                    worker=worker,
                    interval=confidence_interval_from_moments(
                        value, deviation, self.confidence
                    ),
                    n_tasks=matrix.n_tasks_of(worker),
                    triples=tuple(triples),
                    weights=tuple(float(w) for w in weights),
                    status=worst_status,
                )
            )
        return estimates

    def _shardable(self, matrix: ResponseMatrix, stats: AgreementStatistics) -> bool:
        """Whether the process-sharded path applies (else another tier).

        Compatibility wrapper over
        :func:`~repro.core.parallel.resolve_execution`, which owns the
        guard list (no exportable backend, fewer workers than shards, a
        custom ``rng``, an attached observer) and the ``"auto"`` cost
        model; kept because the shard-guard tests pin its semantics for
        integer specs.
        """
        from repro.core.parallel import resolve_execution

        return resolve_execution(self, matrix, stats)[0] == "process"

    # ------------------------------------------------------------------ #

    def _aggregate(
        self,
        stats: AgreementStatistics,
        worker: int,
        triple_estimates: list[TripleEstimate],
    ) -> tuple[ConfidenceInterval, np.ndarray]:
        """Step 3 of Algorithm A2: combine triple estimates via Theorem 1."""
        n = len(triple_estimates)
        values = np.array([t.error_rate for t in triple_estimates])
        # Plug-in error rate of the evaluated worker for Lemma 4's C(i, j, j');
        # the simple average of the triple estimates is a consistent plug-in.
        # (Scalar min/max: np.clip on a 0-d value costs ~0.2ms per call.)
        p_plugin = min(max(float(np.mean(values)), 0.0), 0.5)
        covariance = np.zeros((n, n))
        np.fill_diagonal(
            covariance, [t.deviation**2 for t in triple_estimates]
        )
        cross = (
            _vectorized_cross_covariances(
                stats,
                worker,
                triple_estimates,
                p_plugin,
                self.clamp_margin,
                fast_counts=self.batch_triples,
            )
            if n >= 2
            else None
        )
        if cross is not None:
            # Mirror the upper triangle (as the scalar loop does) rather than
            # taking both halves of the grid: the two halves can differ in
            # the last ulp because the four Lemma-4 terms sum in a different
            # order on each side.
            upper = _upper_triangle_indices(n)
            covariance[upper] = cross[upper]
            covariance[(upper[1], upper[0])] = cross[upper]
        else:
            for a in range(n):
                for b in range(a + 1, n):
                    value = _cross_triple_covariance(
                        stats,
                        worker,
                        triple_estimates[a],
                        triple_estimates[b],
                        p_plugin,
                        self.clamp_margin,
                    )
                    covariance[a, b] = value
                    covariance[b, a] = value
        if self.optimize_weights:
            weights = optimal_weights(covariance)
        else:
            weights = uniform_weights(n)
        model = DeltaMethodModel.linear_combination(values, weights, covariance)
        return model.interval(self.confidence), weights

    def _degenerate_estimate(
        self, matrix: ResponseMatrix, worker: int
    ) -> WorkerErrorEstimate:
        """Trivial full-range interval when no usable triple exists."""
        interval = ConfidenceInterval(
            mean=0.25,
            lower=0.0,
            upper=1.0,
            confidence=self.confidence,
            deviation=1.0,
        )
        return WorkerErrorEstimate(
            worker=worker,
            interval=interval,
            n_tasks=matrix.n_tasks_of(worker),
            triples=(),
            weights=(),
            status=EstimateStatus.DEGENERATE,
        )


def evaluate_worker(
    matrix: ResponseMatrix,
    worker: int,
    confidence: float,
    optimize_weights: bool = True,
    pairing_strategy: str = "greedy",
    rng: np.random.Generator | None = None,
    backend: str = "auto",
) -> WorkerErrorEstimate:
    """One-call wrapper around :class:`MWorkerEstimator` for a single worker."""
    estimator = MWorkerEstimator(
        confidence=confidence,
        optimize_weights=optimize_weights,
        pairing_strategy=pairing_strategy,
        rng=rng,
        backend=backend,
    )
    return estimator.evaluate_worker(matrix, worker)


def evaluate_all_workers(
    matrix: ResponseMatrix,
    confidence: float,
    optimize_weights: bool = True,
    pairing_strategy: str = "greedy",
    rng: np.random.Generator | None = None,
    backend: str = "auto",
    shards: int | str = 1,
) -> list[WorkerErrorEstimate]:
    """One-call wrapper around :class:`MWorkerEstimator` for all workers."""
    estimator = MWorkerEstimator(
        confidence=confidence,
        optimize_weights=optimize_weights,
        pairing_strategy=pairing_strategy,
        rng=rng,
        backend=backend,
        shards=shards,
    )
    return estimator.evaluate_all(matrix)
