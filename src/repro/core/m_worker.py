"""Algorithm A2: m-worker binary non-regular confidence intervals.

For each worker ``w_i``:

1. the remaining workers are paired up (Section III-C1, greedy by default),
   each pair plus ``w_i`` forming a triple;
2. the 3-worker procedure of Section III-B is run on every triple, producing
   an estimate ``p_{k,i}``, its deviation ``Dev_{k,i}`` and the partial
   derivatives of the estimate with respect to the agreement rates of ``w_i``
   with its two partners;
3. the cross-triple covariances of the estimates are computed (Lemma 4), the
   minimum-variance weights are obtained (Lemma 5, or uniform weights), and
   Theorem 1 applied to the weighted combination yields the final interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.core.delta_method import DeltaMethodModel
from repro.core.pairing import form_triples
from repro.core.three_worker import (
    MIN_AGREEMENT_MARGIN,
    clamp_agreement,
    evaluate_worker_in_triple,
    smoothed_variance_rate,
)
from repro.core.weights import optimal_weights, uniform_weights
from repro.data.response_matrix import ResponseMatrix
from repro.types import (
    ConfidenceInterval,
    EstimateStatus,
    TripleEstimate,
    WorkerErrorEstimate,
)

__all__ = ["MWorkerEstimator", "evaluate_worker", "evaluate_all_workers"]


def _pair_covariance_term(
    stats: AgreementStatistics,
    worker: int,
    partner_a: int,
    partner_b: int,
    p_worker: float,
    clamp_margin: float,
) -> float:
    """The quantity ``C(i, j, j')`` of Lemma 4.

    ``C(i, j, j') = c_ijj' * p_i (1 - p_i) (2 q_jj' - 1) / (c_ij * c_ij')``.
    When the two partners share no task, ``c_ijj' = 0`` and the term vanishes.
    """
    if partner_a == partner_b:
        # Same partner appears in both triples: the shared agreement rate is
        # identical, so the covariance term is Var(Q_{i,j}).
        c_ij = stats.common_count(worker, partner_a)
        q_ij, _ = clamp_agreement(stats.agreement_rate(worker, partner_a), clamp_margin)
        q_var = smoothed_variance_rate(q_ij, c_ij)
        return q_var * (1.0 - q_var) / c_ij
    c_triple = stats.triple_common_count(worker, partner_a, partner_b)
    if c_triple == 0:
        return 0.0
    c_ia = stats.common_count(worker, partner_a)
    c_ib = stats.common_count(worker, partner_b)
    if stats.common_count(partner_a, partner_b) == 0:
        return 0.0
    q_ab, _ = clamp_agreement(stats.agreement_rate(partner_a, partner_b), clamp_margin)
    return c_triple * p_worker * (1.0 - p_worker) * (2.0 * q_ab - 1.0) / (c_ia * c_ib)


def _cross_triple_covariance(
    stats: AgreementStatistics,
    worker: int,
    triple_a: TripleEstimate,
    triple_b: TripleEstimate,
    p_worker: float,
    clamp_margin: float,
) -> float:
    """Lemma 4: covariance between the estimates from two different triples.

    Only the agreement rates involving the evaluated worker contribute: the
    partners' mutual agreement rates live on disjoint worker pairs across
    triples and are therefore uncorrelated under the model.
    """
    total = 0.0
    for partner_a, derivative_a in triple_a.derivatives.items():
        for partner_b, derivative_b in triple_b.derivatives.items():
            term = _pair_covariance_term(
                stats, worker, partner_a, partner_b, p_worker, clamp_margin
            )
            total += derivative_a * derivative_b * term
    return total


@dataclass
class MWorkerEstimator:
    """Configurable m-worker binary estimator (Algorithm A2).

    Parameters
    ----------
    confidence:
        Confidence level ``c`` of the produced intervals.
    optimize_weights:
        Use Lemma 5's minimum-variance weights (True, the paper's default) or
        uniform weights (False, the Fig 2(c) ablation).
    pairing_strategy:
        ``"greedy"`` (Section III-C1) or ``"random"`` (ablation).
    clamp_margin:
        Numerical guard keeping agreement rates away from the Eq. (1)
        singularity at 1/2.
    min_overlap:
        Minimum number of common tasks required between members of a triple.
    rng:
        Only needed for the random pairing strategy.
    """

    confidence: float = 0.95
    optimize_weights: bool = True
    pairing_strategy: str = "greedy"
    clamp_margin: float = MIN_AGREEMENT_MARGIN
    min_overlap: int = 1
    rng: np.random.Generator | None = None

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )
        if self.min_overlap < 1:
            raise ConfigurationError(
                f"min_overlap must be at least 1, got {self.min_overlap}"
            )

    # ------------------------------------------------------------------ #

    def evaluate_worker(
        self,
        matrix: ResponseMatrix,
        worker: int,
        stats: AgreementStatistics | None = None,
    ) -> WorkerErrorEstimate:
        """Confidence interval for one worker's error rate."""
        if not matrix.is_binary:
            raise ConfigurationError(
                "the m-worker estimator handles binary data; use the k-ary "
                "estimator for higher arities"
            )
        if matrix.n_workers < 3:
            raise InsufficientDataError(
                "at least 3 workers are required to estimate error rates "
                "without a gold standard"
            )
        if stats is None:
            stats = compute_agreement_statistics(matrix)
        candidates = [w for w in range(matrix.n_workers) if w != worker]
        triples = form_triples(
            stats,
            worker,
            candidates,
            strategy=self.pairing_strategy,
            rng=self.rng,
            min_overlap=self.min_overlap,
        )
        if not triples:
            return self._degenerate_estimate(matrix, worker)

        triple_estimates: list[TripleEstimate] = []
        worst_status = EstimateStatus.OK
        for _, partner_a, partner_b in triples:
            try:
                result = evaluate_worker_in_triple(
                    stats, worker, (partner_a, partner_b), clamp_margin=self.clamp_margin
                )
            except InsufficientDataError:
                continue
            triple_estimates.append(
                TripleEstimate(
                    worker=worker,
                    partners=(partner_a, partner_b),
                    error_rate=result.error_rate,
                    deviation=result.deviation,
                    derivatives=result.derivative_by_partner,
                    status=result.status,
                )
            )
            if result.status is EstimateStatus.CLAMPED:
                worst_status = EstimateStatus.CLAMPED
        if not triple_estimates:
            return self._degenerate_estimate(matrix, worker)

        interval, weights = self._aggregate(stats, worker, triple_estimates)
        return WorkerErrorEstimate(
            worker=worker,
            interval=interval,
            n_tasks=matrix.n_tasks_of(worker),
            triples=tuple(triple_estimates),
            weights=tuple(float(w) for w in weights),
            status=worst_status,
        )

    def evaluate_all(self, matrix: ResponseMatrix) -> list[WorkerErrorEstimate]:
        """Confidence intervals for every worker in the matrix."""
        stats = compute_agreement_statistics(matrix)
        return [
            self.evaluate_worker(matrix, worker, stats=stats)
            for worker in range(matrix.n_workers)
        ]

    # ------------------------------------------------------------------ #

    def _aggregate(
        self,
        stats: AgreementStatistics,
        worker: int,
        triple_estimates: list[TripleEstimate],
    ) -> tuple[ConfidenceInterval, np.ndarray]:
        """Step 3 of Algorithm A2: combine triple estimates via Theorem 1."""
        n = len(triple_estimates)
        values = np.array([t.error_rate for t in triple_estimates])
        # Plug-in error rate of the evaluated worker for Lemma 4's C(i, j, j');
        # the simple average of the triple estimates is a consistent plug-in.
        p_plugin = float(np.clip(np.mean(values), 0.0, 0.5))
        covariance = np.zeros((n, n))
        for a in range(n):
            covariance[a, a] = triple_estimates[a].deviation ** 2
            for b in range(a + 1, n):
                value = _cross_triple_covariance(
                    stats,
                    worker,
                    triple_estimates[a],
                    triple_estimates[b],
                    p_plugin,
                    self.clamp_margin,
                )
                covariance[a, b] = value
                covariance[b, a] = value
        if self.optimize_weights:
            weights = optimal_weights(covariance)
        else:
            weights = uniform_weights(n)
        model = DeltaMethodModel.linear_combination(values, weights, covariance)
        return model.interval(self.confidence), weights

    def _degenerate_estimate(
        self, matrix: ResponseMatrix, worker: int
    ) -> WorkerErrorEstimate:
        """Trivial full-range interval when no usable triple exists."""
        interval = ConfidenceInterval(
            mean=0.25,
            lower=0.0,
            upper=1.0,
            confidence=self.confidence,
            deviation=1.0,
        )
        return WorkerErrorEstimate(
            worker=worker,
            interval=interval,
            n_tasks=matrix.n_tasks_of(worker),
            triples=(),
            weights=(),
            status=EstimateStatus.DEGENERATE,
        )


def evaluate_worker(
    matrix: ResponseMatrix,
    worker: int,
    confidence: float,
    optimize_weights: bool = True,
    pairing_strategy: str = "greedy",
    rng: np.random.Generator | None = None,
) -> WorkerErrorEstimate:
    """One-call wrapper around :class:`MWorkerEstimator` for a single worker."""
    estimator = MWorkerEstimator(
        confidence=confidence,
        optimize_weights=optimize_weights,
        pairing_strategy=pairing_strategy,
        rng=rng,
    )
    return estimator.evaluate_worker(matrix, worker)


def evaluate_all_workers(
    matrix: ResponseMatrix,
    confidence: float,
    optimize_weights: bool = True,
    pairing_strategy: str = "greedy",
    rng: np.random.Generator | None = None,
) -> list[WorkerErrorEstimate]:
    """One-call wrapper around :class:`MWorkerEstimator` for all workers."""
    estimator = MWorkerEstimator(
        confidence=confidence,
        optimize_weights=optimize_weights,
        pairing_strategy=pairing_strategy,
        rng=rng,
    )
    return estimator.evaluate_all(matrix)
