"""Algorithm A3: 3-worker k-ary non-regular confidence intervals.

The k-ary estimator recovers every entry of each worker's ``k x k``
response-probability (confusion) matrix ``P_i``, with confidence intervals,
without gold labels.  The machinery:

* the joint response counts of the three workers are collected in a
  ``(k+1)^3`` tensor ``Counts`` (index 0 = "did not attempt");
* pairwise response-frequency matrices ``R_ij`` relate to the unknowns via
  ``R_ij = P_i^T S_D P_j`` (Lemma 6);
* the product ``R_12 R_32^{-1} R_31`` equals ``V_1^T V_1`` with
  ``V_1 = S_D^{1/2} P_1`` (Lemma 7), so a symmetric square root recovers
  ``V_1`` up to an unknown rotation ``U``;
* conditional response-frequency matrices given the third worker's response
  diagonalize in the basis of ``U`` (Lemma 8), which pins down ``U`` (up to
  row permutation, fixed by the diagonal-dominance assumption);
* confidence intervals come from Theorem 1 with the multinomial covariance
  of the counts (Lemma 9) and numerically computed derivatives of the whole
  ``ProbEstimate`` pipeline with respect to each count cell.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DegenerateEstimateError,
    InsufficientDataError,
)
from repro.core.delta_method import confidence_interval_from_moments
from repro.stats.linalg import align_rows_to_diagonal
from repro.data.dense_backend import resolve_triple_backend
from repro.data.response_matrix import ResponseMatrix
from repro.types import (
    EstimateStatus,
    KaryWorkerEstimate,
    ResponseProbabilityEstimate,
)

__all__ = [
    "prob_estimate",
    "response_frequency_matrices",
    "count_covariance",
    "KaryEstimator",
    "evaluate_kary_triple",
]


# --------------------------------------------------------------------------- #
# Point estimation (the ProbEstimate procedure)
# --------------------------------------------------------------------------- #


def _attempt_pattern_total(counts: np.ndarray, pattern: tuple[bool, bool, bool]) -> float:
    """Total number of tasks attempted by exactly the workers in ``pattern``.

    ``pattern[t]`` is True when worker ``t+1`` attempted the task.  This sums
    the count cells whose coordinate is non-zero exactly where the pattern
    says so.
    """
    k = counts.shape[0] - 1
    axes = []
    for attempted in pattern:
        axes.append(range(1, k + 1) if attempted else (0,))
    total = 0.0
    for a in axes[0]:
        for b in axes[1]:
            for c in axes[2]:
                total += counts[a, b, c]
    return total


def response_frequency_matrices(
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Step 2 of Algorithm A3: the pairwise response-frequency matrices.

    Returns ``(R_12, R_23, R_31)`` where ``R_ab[x, y]`` estimates the
    probability that worker ``a`` responds ``x`` and worker ``b`` responds
    ``y`` on a task both attempted.
    """
    k = counts.shape[0] - 1
    n_123 = _attempt_pattern_total(counts, (True, True, True))
    n_12 = _attempt_pattern_total(counts, (True, True, False))
    n_23 = _attempt_pattern_total(counts, (False, True, True))
    n_31 = _attempt_pattern_total(counts, (True, False, True))

    denom_12 = n_123 + n_12
    denom_23 = n_123 + n_23
    denom_31 = n_123 + n_31
    for name, denom in (("(1,2)", denom_12), ("(2,3)", denom_23), ("(3,1)", denom_31)):
        if denom <= 0:
            raise InsufficientDataError(
                f"worker pair {name} shares no common task; the k-ary "
                "estimator needs overlap between every pair"
            )

    r_12 = np.zeros((k, k))
    r_23 = np.zeros((k, k))
    r_31 = np.zeros((k, k))
    for j1 in range(1, k + 1):
        for j2 in range(1, k + 1):
            r_12[j1 - 1, j2 - 1] = counts[j1, j2, :].sum() / denom_12
            r_23[j1 - 1, j2 - 1] = counts[:, j1, j2].sum() / denom_23
            r_31[j1 - 1, j2 - 1] = counts[j2, :, j1].sum() / denom_31
    return r_12, r_23, r_31


def _fix_row_signs(matrix: np.ndarray) -> np.ndarray:
    """Flip the sign of rows whose mass is predominantly negative.

    The rows of ``V_1 = S_D^{1/2} P_1`` are non-negative, but eigenvectors are
    recovered only up to sign, so a recovered row may come out globally
    negated.
    """
    fixed = matrix.copy()
    for row in range(fixed.shape[0]):
        if fixed[row].sum() < 0.0:
            fixed[row] = -fixed[row]
    return fixed


def _safe_inverse(matrix: np.ndarray, ridge: float = 1e-9) -> np.ndarray:
    """Matrix inverse with ridge and pseudo-inverse fallbacks.

    Sparse real datasets occasionally produce exactly singular response
    frequency matrices (e.g. a response value no worker ever used); the
    Moore-Penrose pseudo-inverse keeps the pipeline alive and the resulting
    degenerate estimates are flagged downstream.
    """
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError:
        pass
    try:
        return np.linalg.inv(matrix + ridge * np.eye(matrix.shape[0]))
    except np.linalg.LinAlgError:
        return np.linalg.pinv(matrix)


def prob_estimate(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The ``ProbEstimate`` procedure: point estimates of ``S^{1/2}_D P_i``.

    Parameters
    ----------
    counts:
        The ``(k+1, k+1, k+1)`` response count tensor for three workers
        (index 0 means "did not attempt").

    Returns
    -------
    (V1, V2, V3):
        Estimates of ``S_D^{1/2} P_i`` for the three workers.  Normalize each
        row to sum to one to obtain the response-probability matrices
        themselves (see :func:`normalize_rows`).
    """
    counts = np.asarray(counts, dtype=float)
    if counts.ndim != 3 or len(set(counts.shape)) != 1:
        raise ConfigurationError(
            f"counts must be a cubic 3-D tensor, got shape {counts.shape}"
        )
    k = counts.shape[0] - 1
    if k < 2:
        raise ConfigurationError("counts tensor implies arity below 2")

    r_12, r_23, r_31 = response_frequency_matrices(counts)
    r_32 = r_23.T
    r_13 = r_31.T

    # Step 3: eigendecompose R_12 R_32^{-1} R_31 = V1^T V1 (Lemma 7).  The
    # product is symmetric positive semidefinite in expectation; finite-sample
    # noise breaks the symmetry slightly and, when eigenvalues repeat (which
    # happens for the paper's circulant confusion matrices), a non-symmetric
    # eigendecomposition returns complex-conjugate eigenvector pairs whose
    # real parts are parallel.  Symmetrizing first and using the unique
    # symmetric PSD square root avoids both problems and equals the paper's
    # E D^{1/2} E^{-1} in expectation.
    product = r_12 @ _safe_inverse(r_32) @ r_31
    product = 0.5 * (product + product.T)
    eigenvalues, eigenvectors = np.linalg.eigh(product)
    eigenvalues = np.clip(eigenvalues, 1e-12, None)

    # Step 4: U1 = E D^{1/2} E^T; U2 = (U1^T)^{-1} R_12; U3 = (U1^T)^{-1} R_13.
    u_1 = (eigenvectors * np.sqrt(eigenvalues)) @ eigenvectors.T
    u_1_t_inv = _safe_inverse(u_1.T)
    u_2 = u_1_t_inv @ r_12
    u_3 = u_1_t_inv @ r_13

    # Steps 5-6: recover the rotation U from the conditional frequency
    # matrices given worker 3's response.  Each matrix
    # N_j3 = (U1^T)^{-1} R_{1,2|3=j3} U2^{-1} equals U^T W_j3 U for a diagonal
    # W_j3 (Lemma 8), so the eigenvectors of any N_j3 recover the rows of U —
    # provided the eigenvalues (worker 3's response probabilities for column
    # j3) are distinct.  The paper's confusion matrices contain repeated
    # column values, which makes single-j3 recovery degenerate, so in addition
    # to the paper's per-j3 candidates we form one from a generic linear
    # combination of all the N_j3 (whose eigenvalues are distinct for generic
    # weights), score every candidate by how well it jointly diagonalizes all
    # the N_j3, and average the candidates that score close to the best.
    u_2_inv = _safe_inverse(u_2)
    conditional_matrices: list[np.ndarray] = []
    for j3 in range(1, k + 1):
        n_j3 = counts[1:, 1:, j3].sum()
        if n_j3 <= 0:
            continue
        conditional = counts[1:, 1:, j3] / n_j3
        n_matrix = u_1_t_inv @ conditional @ u_2_inv
        # Symmetrize: N_j3 is symmetric in expectation and eigh then gives
        # orthonormal eigenvectors.
        conditional_matrices.append(0.5 * (n_matrix + n_matrix.T))
    if not conditional_matrices:
        raise InsufficientDataError(
            "no task was attempted by all three workers; the k-ary estimator "
            "needs three-way overlap"
        )

    def rotation_candidate(matrix: np.ndarray) -> np.ndarray:
        _, eigvecs = np.linalg.eigh(matrix)
        return eigvecs.T  # rows of U, up to permutation and sign

    def joint_diagonalization_error(u_estimate: np.ndarray) -> float:
        total = 0.0
        for n_matrix in conditional_matrices:
            rotated = u_estimate @ n_matrix @ u_estimate.T
            off_diagonal = rotated - np.diag(np.diag(rotated))
            total += float(np.sum(off_diagonal**2))
        return total

    candidates = [rotation_candidate(n_matrix) for n_matrix in conditional_matrices]
    # Generic combination with fixed, incommensurate weights: its eigenvalues
    # are distinct whenever any weighting of worker 3's columns separates the
    # true labels, which holds for generic confusion matrices.
    generic_weights = np.cos(1.0 + np.arange(len(conditional_matrices)))
    combined = sum(
        weight * n_matrix
        for weight, n_matrix in zip(generic_weights, conditional_matrices)
    )
    candidates.append(rotation_candidate(combined))

    scores = np.array([joint_diagonalization_error(c) for c in candidates])
    best = float(scores.min())
    tolerance = max(1.5 * best, best + 1e-12)
    v_1 = np.zeros((k, k))
    n_used = 0
    for candidate_u, score in zip(candidates, scores):
        if score > tolerance:
            continue
        candidate = _fix_row_signs(candidate_u @ u_1)
        candidate = align_rows_to_diagonal(candidate)
        v_1 += candidate
        n_used += 1
    v_1 /= n_used

    # Step 7: V2 and V3 from V1 and the pairwise frequency matrices.
    v_1_t_inv = _safe_inverse(v_1.T)
    v_2 = v_1_t_inv @ r_12
    v_3 = v_1_t_inv @ r_13
    return v_1, v_2, v_3


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Convert an estimate of ``S^{1/2}_D P`` into ``P`` by row normalization.

    Each row of ``S^{1/2}_D P`` sums to ``sqrt(S_a)``, so dividing a row by
    its sum recovers the response probabilities.  Rows with non-positive sum
    (badly estimated) fall back to the uniform distribution.
    """
    matrix = np.asarray(matrix, dtype=float)
    k = matrix.shape[1]
    normalized = np.empty_like(matrix)
    for row in range(matrix.shape[0]):
        total = matrix[row].sum()
        if total <= 1e-12:
            normalized[row] = np.full(k, 1.0 / k)
        else:
            normalized[row] = matrix[row] / total
    return normalized


def implied_selectivity(v_matrix: np.ndarray) -> np.ndarray:
    """Recover the selectivity vector ``S`` from an estimate of ``S^{1/2}_D P``.

    Row ``a`` of ``S^{1/2}_D P`` sums to ``sqrt(S_a)``; squaring the row sums
    and renormalizing yields the label prior.
    """
    sums = np.clip(np.asarray(v_matrix, dtype=float).sum(axis=1), 0.0, None)
    squared = sums**2
    total = squared.sum()
    if total <= 0:
        return np.full(v_matrix.shape[0], 1.0 / v_matrix.shape[0])
    return squared / total


# --------------------------------------------------------------------------- #
# Covariances of the count tensor (Lemma 9)
# --------------------------------------------------------------------------- #


def _pattern_of(cell: tuple[int, int, int]) -> tuple[bool, bool, bool]:
    """Attempt pattern (who answered) of a count cell."""
    return tuple(index != 0 for index in cell)  # type: ignore[return-value]


def count_covariance(
    counts: np.ndarray,
    cell_a: tuple[int, int, int],
    cell_b: tuple[int, int, int],
) -> float:
    """Lemma 9: covariance between two cells of the count tensor.

    Cells with different attempt patterns are uncorrelated (they are counted
    over disjoint task populations).  Cells sharing an attempt pattern follow
    a multinomial over the ``n`` tasks with that pattern: the diagonal term is
    ``C (n - C) / n`` and the off-diagonal term is ``- C_a C_b / n`` (the
    paper's statement omits the sign; the multinomial covariance is negative).
    """
    pattern_a = _pattern_of(cell_a)
    pattern_b = _pattern_of(cell_b)
    if pattern_a != pattern_b:
        return 0.0
    if not any(pattern_a):
        return 0.0
    n = _attempt_pattern_total(np.asarray(counts, dtype=float), pattern_a)
    if n <= 0:
        return 0.0
    value_a = float(counts[cell_a])
    if cell_a == cell_b:
        return value_a * (n - value_a) / n
    value_b = float(counts[cell_b])
    return -value_a * value_b / n


# --------------------------------------------------------------------------- #
# Full estimator with confidence intervals
# --------------------------------------------------------------------------- #


@dataclass
class KaryEstimator:
    """Configurable k-ary estimator (Algorithm A3).

    Parameters
    ----------
    confidence:
        Confidence level of the produced intervals.
    epsilon:
        Step used for the numerical derivatives of ``ProbEstimate`` with
        respect to each count cell (the paper suggests 0.01).
    normalize:
        When True (default), intervals are reported for the row-normalized
        response probabilities ``P_i``; when False, for ``S^{1/2}_D P_i``.
    backend:
        Where the Algorithm A3 count tensor comes from: any vectorized
        backend (``"dense"``, ``"sparse"``, ``"bitset"``) builds it with one
        ``np.bincount`` over encoded label indices (see
        :mod:`repro.data.dense_backend`), ``"dict"`` uses the original
        per-task Python loop, ``"auto"`` picks a vectorized backend for
        matrices small enough to materialize.  The tensors are exactly
        equal either way.
    shards:
        Accepted and validated for interface parity with the binary
        estimators (the :class:`~repro.core.estimator.WorkerEvaluator`
        threads one spec into both), but A3 evaluates exactly **one**
        triple of workers — there is no worker loop to shard — so every
        spec executes serially.  Validation still rejects malformed specs
        (``0``, negatives, garbage strings) so a typo fails loudly here
        exactly as it would on the binary path.
    """

    confidence: float = 0.95
    epsilon: float = 0.01
    normalize: bool = True
    backend: str = "auto"
    shards: int | str = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )
        if self.epsilon <= 0.0:
            raise ConfigurationError(f"epsilon must be positive, got {self.epsilon}")
        from repro.core.parallel import parse_shard_spec

        parse_shard_spec(self.shards)

    def evaluate(
        self,
        matrix: ResponseMatrix,
        workers: tuple[int, int, int] | None = None,
    ) -> list[KaryWorkerEstimate]:
        """Confidence intervals for all confusion-matrix entries of a triple.

        Parameters
        ----------
        matrix:
            Response data of any arity >= 2.
        workers:
            The triple of workers to evaluate; defaults to ``(0, 1, 2)`` when
            the matrix has exactly three workers.
        """
        if workers is None:
            if matrix.n_workers != 3:
                raise ConfigurationError(
                    "matrix has more than three workers; pass the triple explicitly"
                )
            workers = (0, 1, 2)
        if len(set(workers)) != 3:
            raise ConfigurationError("the three workers must be distinct")
        dense = resolve_triple_backend(matrix, self.backend)
        if dense is not None:
            counts = dense.response_count_tensor(workers)
        else:
            counts = matrix.response_count_tensor(workers)
        return self.evaluate_counts(counts, workers=workers, arity=matrix.arity)

    def evaluate_counts(
        self,
        counts: np.ndarray,
        workers: tuple[int, int, int] = (0, 1, 2),
        arity: int | None = None,
    ) -> list[KaryWorkerEstimate]:
        """Run Algorithm A3 directly on a pre-built count tensor."""
        counts = np.asarray(counts, dtype=float)
        k = counts.shape[0] - 1
        if arity is not None and arity != k:
            raise ConfigurationError(
                f"count tensor implies arity {k} but {arity} was declared"
            )

        status = EstimateStatus.OK
        try:
            v_estimates = prob_estimate(counts)
        except (InsufficientDataError, DegenerateEstimateError, np.linalg.LinAlgError):
            return [
                self._degenerate_worker(worker, k) for worker in workers
            ]

        # Numerical derivatives of every output entry w.r.t. every count cell
        # that belongs to a usable attempt pattern (two or more responders).
        cells = [
            cell
            for cell in itertools.product(range(k + 1), repeat=3)
            if sum(1 for index in cell if index != 0) >= 2
        ]
        derivatives = self._numerical_derivatives(counts, cells, k)
        covariance = self._cell_covariance_matrix(counts, cells)

        estimates: list[KaryWorkerEstimate] = []
        for worker_position, worker in enumerate(workers):
            v_point = v_estimates[worker_position]
            row_sums = v_point.sum(axis=1)
            entries: dict[tuple[int, int], ResponseProbabilityEstimate] = {}
            worker_status = status
            for a in range(k):
                scale = 1.0
                if self.normalize:
                    scale = 1.0 / row_sums[a] if row_sums[a] > 1e-9 else 0.0
                    if scale == 0.0:
                        worker_status = EstimateStatus.DEGENERATE
                for b in range(k):
                    gradient = derivatives[worker_position][:, a, b]
                    variance = float(gradient @ covariance @ gradient)
                    deviation = float(np.sqrt(max(variance, 0.0)))
                    mean = float(v_point[a, b])
                    interval = confidence_interval_from_moments(
                        mean * scale,
                        deviation * abs(scale) if scale != 0.0 else 1.0,
                        self.confidence,
                    )
                    entries[(a, b)] = ResponseProbabilityEstimate(
                        worker=worker,
                        true_label=a,
                        response_label=b,
                        interval=interval,
                        status=worker_status,
                    )
            estimates.append(
                KaryWorkerEstimate(
                    worker=worker, arity=k, entries=entries, status=worker_status
                )
            )
        return estimates

    # ------------------------------------------------------------------ #

    def _numerical_derivatives(
        self, counts: np.ndarray, cells: list[tuple[int, int, int]], k: int
    ) -> list[np.ndarray]:
        """Central differences of ``ProbEstimate`` w.r.t. each count cell.

        Returns one array per worker of shape ``(n_cells, k, k)``.
        """
        derivative_arrays = [np.zeros((len(cells), k, k)) for _ in range(3)]
        perturbed = counts.copy()
        for cell_index, cell in enumerate(cells):
            original = perturbed[cell]
            perturbed[cell] = original + self.epsilon
            try:
                plus = prob_estimate(perturbed)
            except (InsufficientDataError, DegenerateEstimateError, np.linalg.LinAlgError):
                plus = None
            perturbed[cell] = original - self.epsilon
            try:
                minus = prob_estimate(perturbed)
            except (InsufficientDataError, DegenerateEstimateError, np.linalg.LinAlgError):
                minus = None
            perturbed[cell] = original
            if plus is None or minus is None:
                continue
            for worker_position in range(3):
                derivative_arrays[worker_position][cell_index] = (
                    plus[worker_position] - minus[worker_position]
                ) / (2.0 * self.epsilon)
        return derivative_arrays

    def _cell_covariance_matrix(
        self, counts: np.ndarray, cells: list[tuple[int, int, int]]
    ) -> np.ndarray:
        """Covariance matrix of the selected count cells (Lemma 9)."""
        n_cells = len(cells)
        covariance = np.zeros((n_cells, n_cells))
        for a in range(n_cells):
            for b in range(a, n_cells):
                value = count_covariance(counts, cells[a], cells[b])
                covariance[a, b] = value
                covariance[b, a] = value
        return covariance

    def _degenerate_worker(self, worker: int, arity: int) -> KaryWorkerEstimate:
        """Uninformative full-range intervals when the data is unusable."""
        entries = {}
        for a in range(arity):
            for b in range(arity):
                interval = confidence_interval_from_moments(
                    1.0 / arity, 1.0, self.confidence
                )
                entries[(a, b)] = ResponseProbabilityEstimate(
                    worker=worker,
                    true_label=a,
                    response_label=b,
                    interval=interval,
                    status=EstimateStatus.DEGENERATE,
                )
        return KaryWorkerEstimate(
            worker=worker,
            arity=arity,
            entries=entries,
            status=EstimateStatus.DEGENERATE,
        )


def evaluate_kary_triple(
    matrix: ResponseMatrix,
    confidence: float,
    workers: tuple[int, int, int] | None = None,
    epsilon: float = 0.01,
) -> list[KaryWorkerEstimate]:
    """One-call wrapper around :class:`KaryEstimator` for one worker triple."""
    estimator = KaryEstimator(confidence=confidence, epsilon=epsilon)
    return estimator.evaluate(matrix, workers=workers)
