"""Task-label inference from estimated worker quality.

The paper's motivation (Section I, "Crowd Algorithms") is that knowing worker
quality improves every downstream crowd algorithm.  The most direct payoff is
label aggregation: once each worker's error rate (binary) or response
probability matrix (k-ary) has been estimated, the posterior over a task's
true label follows from Bayes' rule, weighting accurate workers more and
biased workers according to their bias.

Two aggregators are provided:

* :func:`infer_binary_labels` — log-odds weighted voting using per-worker
  error rates (the estimates produced by Algorithms A1/A2);
* :func:`infer_kary_labels` — posterior inference using full confusion
  matrices (the estimates produced by Algorithm A3 or Dawid-Skene).

Both accept a conservative mode that uses the interval's *upper* error-rate
bound instead of the point estimate, which discounts workers we are not yet
sure about — the label-quality ablation bench measures the effect.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.data.response_matrix import ResponseMatrix
from repro.types import KaryWorkerEstimate, WorkerErrorEstimate

__all__ = [
    "infer_binary_labels",
    "infer_kary_labels",
    "label_accuracy",
]

#: Error rates are clamped into [floor, 1 - floor] before the log-odds weight
#: is computed, so a (possibly lucky) perfect worker does not get infinite weight.
_ERROR_RATE_FLOOR = 1e-3


def _worker_error_rate(
    estimate: WorkerErrorEstimate | float, conservative: bool
) -> float:
    if isinstance(estimate, WorkerErrorEstimate):
        rate = estimate.interval.upper if conservative else estimate.interval.mean
    else:
        rate = float(estimate)
    return float(min(max(rate, _ERROR_RATE_FLOOR), 1.0 - _ERROR_RATE_FLOOR))


def infer_binary_labels(
    matrix: ResponseMatrix,
    worker_estimates: Mapping[int, WorkerErrorEstimate | float],
    positive_prior: float = 0.5,
    conservative: bool = False,
) -> dict[int, int]:
    """Maximum-a-posteriori binary labels from per-worker error rates.

    Each worker contributes a log-odds weight ``log((1 - p) / p)`` towards the
    label they reported, the textbook weighted-majority rule for symmetric
    error rates.  Workers absent from ``worker_estimates`` are skipped (they
    contribute nothing), so the function works on filtered worker sets too.

    Parameters
    ----------
    matrix:
        Binary response data.
    worker_estimates:
        Either :class:`WorkerErrorEstimate` objects (the library's output) or
        plain floats, keyed by worker id.
    positive_prior:
        Prior probability that a task's true label is 1.
    conservative:
        Use the interval's upper bound instead of the point estimate, which
        down-weights workers whose quality is still uncertain.

    Returns
    -------
    dict
        Task id -> inferred label, for every task with at least one response
        from an estimated worker.
    """
    if not matrix.is_binary:
        raise ConfigurationError("infer_binary_labels requires binary data")
    if not (0.0 < positive_prior < 1.0):
        raise ConfigurationError(
            f"positive_prior must lie strictly between 0 and 1, got {positive_prior}"
        )
    prior_log_odds = math.log(positive_prior / (1.0 - positive_prior))
    labels: dict[int, int] = {}
    for task in range(matrix.n_tasks):
        responses = matrix.task_responses(task)
        if not responses:
            continue
        log_odds = prior_log_odds
        informative = False
        for worker, label in responses.items():
            if worker not in worker_estimates:
                continue
            informative = True
            rate = _worker_error_rate(worker_estimates[worker], conservative)
            weight = math.log((1.0 - rate) / rate)
            log_odds += weight if label == 1 else -weight
        if not informative:
            continue
        labels[task] = 1 if log_odds >= 0.0 else 0
    return labels


def _confusion_from_estimate(
    estimate: KaryWorkerEstimate | np.ndarray, arity: int, conservative: bool
) -> np.ndarray:
    if isinstance(estimate, KaryWorkerEstimate):
        if estimate.arity != arity:
            raise DataValidationError(
                f"estimate arity {estimate.arity} does not match data arity {arity}"
            )
        if conservative:
            # Shrink towards the uniform matrix in proportion to the average
            # interval width: wide intervals -> less trusted worker.
            mean_width = float(
                np.mean(
                    [
                        estimate.interval(a, b).size
                        for a in range(arity)
                        for b in range(arity)
                    ]
                )
            )
            shrinkage = min(max(mean_width, 0.0), 1.0)
            point = np.array(estimate.point_matrix())
            uniform = np.full((arity, arity), 1.0 / arity)
            matrix = (1.0 - shrinkage) * point + shrinkage * uniform
        else:
            matrix = np.array(estimate.point_matrix())
    else:
        matrix = np.asarray(estimate, dtype=float)
        if matrix.shape != (arity, arity):
            raise DataValidationError(
                f"confusion matrix shape {matrix.shape} does not match arity {arity}"
            )
    # Clamp away from zero so log probabilities stay finite, then renormalize.
    matrix = np.clip(matrix, _ERROR_RATE_FLOOR, 1.0)
    return matrix / matrix.sum(axis=1, keepdims=True)


def infer_kary_labels(
    matrix: ResponseMatrix,
    worker_estimates: Mapping[int, KaryWorkerEstimate | np.ndarray],
    selectivity: Sequence[float] | None = None,
    conservative: bool = False,
) -> dict[int, int]:
    """Maximum-a-posteriori k-ary labels from worker confusion matrices.

    The posterior over the true label ``a`` of a task is proportional to
    ``S[a] * prod_w P_w[a, response_w]`` over the workers who answered it.

    Parameters
    ----------
    matrix:
        Response data of any arity.
    worker_estimates:
        :class:`KaryWorkerEstimate` objects or plain ``k x k`` arrays, keyed
        by worker id; workers without an estimate are skipped.
    selectivity:
        Prior over true labels; uniform when omitted.
    conservative:
        Shrink each confusion matrix towards uniform in proportion to its
        interval widths (uncertain workers count less).
    """
    arity = matrix.arity
    if selectivity is None:
        prior = np.full(arity, 1.0 / arity)
    else:
        prior = np.asarray(selectivity, dtype=float)
        if prior.shape != (arity,) or np.any(prior < 0.0):
            raise ConfigurationError(
                f"selectivity must be a non-negative vector of length {arity}"
            )
        total = prior.sum()
        if total <= 0.0:
            raise ConfigurationError("selectivity must have positive mass")
        prior = prior / total

    confusions = {
        worker: _confusion_from_estimate(estimate, arity, conservative)
        for worker, estimate in worker_estimates.items()
    }
    log_prior = np.log(np.clip(prior, 1e-12, None))
    labels: dict[int, int] = {}
    for task in range(matrix.n_tasks):
        responses = matrix.task_responses(task)
        relevant = {w: r for w, r in responses.items() if w in confusions}
        if not relevant:
            continue
        log_posterior = log_prior.copy()
        for worker, response in relevant.items():
            log_posterior += np.log(confusions[worker][:, response])
        labels[task] = int(np.argmax(log_posterior))
    return labels


def label_accuracy(matrix: ResponseMatrix, labels: Mapping[int, int]) -> float:
    """Fraction of gold-labelled tasks for which ``labels`` is correct.

    Only tasks present in both the gold set and ``labels`` are scored.
    """
    if not matrix.has_gold:
        raise DataValidationError("label_accuracy requires gold labels on the matrix")
    judged = 0
    correct = 0
    for task, gold in matrix.gold_labels.items():
        if task not in labels:
            continue
        judged += 1
        if labels[task] == gold:
            correct += 1
    if judged == 0:
        raise DataValidationError("no task is covered by both gold labels and inferences")
    return correct / judged
