"""Lemma 5: minimum-variance linear weights for combining triple estimates.

Given per-triple estimates ``p_1, ..., p_l`` of the same worker error rate
with covariance matrix ``C``, the final estimate is ``sum_k a_k p_k`` with
``sum_k a_k = 1``.  The variance ``A^T C A`` is minimized by
``A = C^{-1} 1 / || C^{-1} 1 ||_1`` (Lemma 5).  Uniform weights are always a
valid fallback (Section III-D3) and are exposed for the ablation comparison.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.stats.covariance import batched_regularize_covariance, regularize_covariance
from repro.stats.linalg import (
    batched_optimal_min_variance_weights,
    optimal_min_variance_weights,
)

__all__ = [
    "optimal_weights",
    "batched_optimal_weights",
    "uniform_weights",
    "combined_variance",
]


def uniform_weights(n_triples: int) -> np.ndarray:
    """Equal weights ``1/l`` for each of ``l`` triples."""
    if n_triples <= 0:
        raise ConfigurationError(f"need at least one triple, got {n_triples}")
    return np.full(n_triples, 1.0 / n_triples)


def optimal_weights(covariance: np.ndarray) -> np.ndarray:
    """Lemma 5 weights for the given triple-estimate covariance matrix.

    The covariance is repaired to be symmetric positive semidefinite (plus a
    tiny ridge) before inversion, so near-duplicate triples do not make the
    solve blow up; if the solve still fails, uniform weights are returned.
    """
    covariance = np.asarray(covariance, dtype=float)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise ConfigurationError(
            f"covariance must be square, got shape {covariance.shape}"
        )
    if covariance.shape[0] == 1:
        return np.array([1.0])
    safe = regularize_covariance(covariance)
    return optimal_min_variance_weights(safe)


def batched_optimal_weights(covariances: np.ndarray) -> np.ndarray:
    """:func:`optimal_weights` for a ``(g, l, l)`` stack of covariances.

    The PSD repair and the ``C^{-1} 1`` solve each run as one batched LAPACK
    call over the stack (with per-matrix fallbacks for rejected slices), so
    row ``g`` of the result is bit-identical to
    ``optimal_weights(covariances[g])``.
    """
    covariances = np.asarray(covariances, dtype=float)
    if covariances.ndim != 3 or covariances.shape[1] != covariances.shape[2]:
        raise ConfigurationError(
            f"expected a stack of square covariances, got shape {covariances.shape}"
        )
    if covariances.shape[1] == 1:
        return np.ones((covariances.shape[0], 1))
    safe = batched_regularize_covariance(covariances)
    return batched_optimal_min_variance_weights(safe)


def combined_variance(weights: np.ndarray, covariance: np.ndarray) -> float:
    """Variance ``A^T C A`` of the weighted combination."""
    weights = np.asarray(weights, dtype=float).reshape(-1)
    covariance = np.asarray(covariance, dtype=float)
    if covariance.shape != (weights.size, weights.size):
        raise ConfigurationError(
            "covariance shape does not match the number of weights"
        )
    return float(max(weights @ covariance @ weights, 0.0))
