"""Spammer pruning (Section III-E2).

The closed-form error-rate function has a singularity when agreement rates
approach 1/2, which happens when near-random ("spammer") workers are present.
The paper's remedy is a pre-processing pass: approximate each worker's error
rate by their disagreement with the majority vote, and drop workers whose
approximate error rate exceeds a threshold (0.4 in the paper) before running
the confidence-interval machinery.  Figure 4 shows the resulting accuracy
improvement.

The disagreement proxy is computed either with the original per-task Python
loops (O(responses * workers-per-task) per worker) or, when a vectorized
backend is selected (dense, sparse or bitset), from a per-task vote table
built once for all workers (see
:meth:`~repro.data.dense_backend.AgreementBackendBase.majority_disagreement_rates`).
All produce identical rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.data.dense_backend import AgreementBackendBase, resolve_backend
from repro.data.response_matrix import ResponseMatrix

__all__ = ["SpammerFilterResult", "filter_spammers"]

#: The paper's threshold: workers whose majority-disagreement exceeds this are
#: treated as near-certain spammers.
DEFAULT_SPAMMER_THRESHOLD: float = 0.4


@dataclass(frozen=True)
class SpammerFilterResult:
    """Outcome of the spammer filter.

    Attributes
    ----------
    filtered:
        A new response matrix containing only the retained workers
        (re-indexed from 0).
    kept_workers:
        Original ids of the retained workers, in their new order (so
        ``kept_workers[new_id] == old_id``).
    removed_workers:
        Original ids of the workers that were pruned.
    approximate_error_rates:
        The majority-disagreement proxy for every original worker (pruned or
        not); workers that could not be scored (no overlap with anyone) are
        mapped to ``None`` and retained.
    """

    filtered: ResponseMatrix
    kept_workers: tuple[int, ...]
    removed_workers: tuple[int, ...]
    approximate_error_rates: dict[int, float | None]

    def original_id(self, new_id: int) -> int:
        """Map a worker id in the filtered matrix back to the original id."""
        return self.kept_workers[new_id]


def filter_spammers(
    matrix: ResponseMatrix,
    threshold: float = DEFAULT_SPAMMER_THRESHOLD,
    min_remaining: int = 3,
    backend: str | AgreementBackendBase | None = "auto",
    shards: int | str = 1,
) -> SpammerFilterResult:
    """Remove near-spammer workers before confidence-interval estimation.

    Parameters
    ----------
    matrix:
        The response data (any arity).
    threshold:
        Workers whose disagreement-with-majority exceeds this are removed.
    min_remaining:
        Never prune below this many workers (the estimators need at least 3);
        if pruning would go below, the least-bad offenders are kept.
    backend:
        Any vectorized backend (``"dense"``, ``"sparse"``, ``"bitset"``)
        computes all disagreement proxies from one vote table, ``"dict"``
        uses the original per-worker loops, ``"auto"`` applies the cost
        model over grid size and observed fill.  The proxies (and hence the
        filtering decision) are identical either way.
    shards:
        Execution spec for the proxy scan, same grammar as the estimators'
        knob (:func:`~repro.core.parallel.parse_shard_spec`).  The scan is
        a single O(responses) pass over a vote table built once, so
        exporting state to a process pool can never pay for itself here:
        every non-serial tier (including ``"process:N"`` and a non-serial
        ``"auto"`` resolution) runs as *thread* chunks over
        :meth:`~repro.data.dense_backend.AgreementBackendBase.majority_disagreement_rates`
        with the vote table pre-built.  Rates are concatenated in chunk
        order — worker order — so the result is bit-identical to serial;
        ignored on the dict path (no vote table to chunk over).

    Returns
    -------
    SpammerFilterResult
        The filtered matrix plus bookkeeping for mapping ids back.
    """
    from repro.core.parallel import (
        auto_shard_choice,
        contiguous_ranges,
        get_executor,
        parse_shard_spec,
    )

    if not (0.0 < threshold < 1.0):
        raise ConfigurationError(
            f"threshold must lie strictly between 0 and 1, got {threshold}"
        )
    if min_remaining < 3:
        raise ConfigurationError(
            f"min_remaining must be at least 3, got {min_remaining}"
        )
    tier, n_shards = parse_shard_spec(shards)
    dense = resolve_backend(matrix, backend)
    proxies: dict[int, float | None] = {}
    if dense is not None:
        if tier == "auto":
            tier, n_shards = auto_shard_choice(
                matrix.n_workers, matrix.n_tasks, matrix.n_responses
            )
        if tier != "serial" and matrix.n_workers >= n_shards:
            dense.task_votes  # build once, before the fan-out
            pool = get_executor().thread_pool(n_shards)
            futures = [
                pool.submit(
                    dense.majority_disagreement_rates, range(start, stop)
                )
                for start, stop in contiguous_ranges(matrix.n_workers, n_shards)
            ]
            rates: list[float | None] = []
            for future in futures:
                rates.extend(future.result())
        else:
            rates = dense.majority_disagreement_rates()
        proxies = dict(enumerate(rates))
    else:
        for worker in range(matrix.n_workers):
            try:
                proxies[worker] = matrix.disagreement_with_majority(worker)
            except InsufficientDataError:
                proxies[worker] = None

    flagged = [
        worker
        for worker, proxy in proxies.items()
        if proxy is not None and proxy > threshold
    ]
    kept = [worker for worker in range(matrix.n_workers) if worker not in set(flagged)]

    if len(kept) < min_remaining:
        # Keep the least-bad flagged workers until the minimum is met.
        flagged_sorted = sorted(
            flagged, key=lambda worker: proxies[worker] or 0.0
        )
        while len(kept) < min_remaining and flagged_sorted:
            rescued = flagged_sorted.pop(0)
            kept.append(rescued)
            flagged.remove(rescued)
        kept.sort()

    filtered = matrix.subset_workers(kept)
    return SpammerFilterResult(
        filtered=filtered,
        kept_workers=tuple(kept),
        removed_workers=tuple(sorted(flagged)),
        approximate_error_rates=proxies,
    )
