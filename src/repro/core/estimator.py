"""High-level façade over the paper's estimators.

Most downstream users only need two calls:

* :func:`evaluate_workers` — binary tasks, any number of workers, regular or
  non-regular data: confidence intervals on every worker's error rate
  (Algorithms A1/A2).
* :func:`evaluate_kary_workers` — k-ary tasks: confidence intervals on every
  entry of each worker's response-probability matrix (Algorithm A3), run per
  triple of workers.

:class:`WorkerEvaluator` bundles the configuration (confidence level, weight
optimization, spammer filtering, pairing strategy) behind one object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.kary import KaryEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.core.spammer_filter import DEFAULT_SPAMMER_THRESHOLD, filter_spammers
from repro.data.response_matrix import ResponseMatrix
from repro.types import KaryWorkerEstimate, TripleEstimate, WorkerErrorEstimate

__all__ = ["WorkerEvaluator", "evaluate_workers", "evaluate_kary_workers"]


@dataclass
class WorkerEvaluator:
    """Configurable entry point for worker assessment.

    Parameters
    ----------
    confidence:
        Confidence level ``c`` of the produced intervals.
    optimize_weights:
        Use Lemma 5's minimum-variance weights across triples (recommended).
    remove_spammers:
        Run the Section III-E2 spammer filter before estimating.  Estimates
        are still reported against original worker ids; pruned workers are
        simply absent from the result.
    spammer_threshold:
        Majority-disagreement level above which a worker is pruned.
    pairing_strategy:
        ``"greedy"`` (paper default) or ``"random"``.
    kary_epsilon:
        Step size for the numerical derivatives in the k-ary estimator.
    rng:
        Random generator, only used by the random pairing strategy.
    backend:
        Agreement-statistics backend: ``"dense"`` (vectorized NumPy),
        ``"dict"`` (original dict-of-dicts loops) or ``"auto"`` (dense when
        the matrix is small enough to materialize).  The choice affects
        throughput only; intervals are bit-identical across backends.
    batch_triples:
        Evaluate each worker's triples in one vectorized stage pass (see
        :class:`~repro.core.m_worker.MWorkerEstimator`).  Throughput only.
    batch_lemma4:
        Batch the Lemma-4/5 aggregation across workers during binary batch
        evaluation (see :class:`~repro.core.m_worker.MWorkerEstimator`).
        Throughput only.
    shards:
        Execution spec threaded into every stage this evaluator runs: an
        integer shard count, ``"auto"``, ``"thread:N"`` or ``"process:N"``
        (see :class:`~repro.core.m_worker.MWorkerEstimator` for the tier
        thresholds and determinism contract).  Binary batch evaluation
        shards the worker loop; the spammer filter thread-chunks its proxy
        scan; the k-ary estimator validates the spec but always runs
        serial (one triple — no worker loop).  ``1`` stays in-process
        everywhere.
    """

    confidence: float = 0.95
    optimize_weights: bool = True
    remove_spammers: bool = False
    spammer_threshold: float = DEFAULT_SPAMMER_THRESHOLD
    pairing_strategy: str = "greedy"
    kary_epsilon: float = 0.01
    rng: np.random.Generator | None = field(default=None, repr=False)
    backend: str = "auto"
    batch_triples: bool = True
    batch_lemma4: bool = True
    shards: int | str = 1

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )
        from repro.core.parallel import parse_shard_spec

        parse_shard_spec(self.shards)

    # ------------------------------------------------------------------ #

    def evaluate_binary(self, matrix: ResponseMatrix) -> dict[int, WorkerErrorEstimate]:
        """Error-rate intervals for every (retained) worker, keyed by original id."""
        if not matrix.is_binary:
            raise ConfigurationError(
                "evaluate_binary expects binary data; call evaluate_kary instead"
            )
        if matrix.n_workers < 3:
            raise InsufficientDataError(
                "at least 3 workers are needed to evaluate without gold answers"
            )
        working_matrix = matrix
        id_map = list(range(matrix.n_workers))
        if self.remove_spammers:
            filtered = filter_spammers(
                matrix,
                threshold=self.spammer_threshold,
                backend=self.backend,
                shards=self.shards,
            )
            working_matrix = filtered.filtered
            id_map = list(filtered.kept_workers)
        estimator = MWorkerEstimator(
            confidence=self.confidence,
            optimize_weights=self.optimize_weights,
            pairing_strategy=self.pairing_strategy,
            rng=self.rng,
            backend=self.backend,
            batch_triples=self.batch_triples,
            batch_lemma4=self.batch_lemma4,
            shards=self.shards,
        )
        estimates = estimator.evaluate_all(working_matrix)
        identity_map = id_map == list(range(matrix.n_workers))
        if identity_map:
            return {estimate.worker: estimate for estimate in estimates}
        results: dict[int, WorkerErrorEstimate] = {}
        for estimate in estimates:
            original_id = id_map[estimate.worker]
            # Estimates computed on the filtered matrix carry filtered-space
            # worker ids inside their per-triple records too; remap worker,
            # partners and derivative keys so the whole result is expressed
            # in original ids.
            triples = tuple(
                TripleEstimate(
                    worker=id_map[triple.worker],
                    partners=(
                        id_map[triple.partners[0]],
                        id_map[triple.partners[1]],
                    ),
                    error_rate=triple.error_rate,
                    deviation=triple.deviation,
                    derivatives={
                        id_map[partner]: derivative
                        for partner, derivative in triple.derivatives.items()
                    },
                    status=triple.status,
                )
                for triple in estimate.triples
            )
            results[original_id] = WorkerErrorEstimate(
                worker=original_id,
                interval=estimate.interval,
                n_tasks=estimate.n_tasks,
                triples=triples,
                weights=estimate.weights,
                status=estimate.status,
            )
        return results

    def evaluate_kary(
        self,
        matrix: ResponseMatrix,
        workers: tuple[int, int, int] | None = None,
    ) -> dict[int, KaryWorkerEstimate]:
        """Response-probability intervals for a triple of workers."""
        estimator = KaryEstimator(
            confidence=self.confidence,
            epsilon=self.kary_epsilon,
            backend=self.backend,
            shards=self.shards,
        )
        estimates = estimator.evaluate(matrix, workers=workers)
        return {estimate.worker: estimate for estimate in estimates}

    def evaluate(
        self,
        matrix: ResponseMatrix,
        workers: tuple[int, int, int] | None = None,
    ) -> dict[int, WorkerErrorEstimate] | dict[int, KaryWorkerEstimate]:
        """Dispatch on arity: binary matrices get error-rate intervals,
        k-ary matrices get response-probability intervals."""
        if matrix.is_binary:
            return self.evaluate_binary(matrix)
        return self.evaluate_kary(matrix, workers=workers)


def evaluate_workers(
    matrix: ResponseMatrix,
    confidence: float = 0.95,
    optimize_weights: bool = True,
    remove_spammers: bool = False,
) -> dict[int, WorkerErrorEstimate]:
    """Confidence intervals on every worker's error rate (binary data).

    This is the library's main entry point for the paper's Section III
    setting.  See :class:`WorkerEvaluator` for the full set of knobs.
    """
    evaluator = WorkerEvaluator(
        confidence=confidence,
        optimize_weights=optimize_weights,
        remove_spammers=remove_spammers,
    )
    return evaluator.evaluate_binary(matrix)


def evaluate_kary_workers(
    matrix: ResponseMatrix,
    confidence: float = 0.95,
    workers: tuple[int, int, int] | None = None,
) -> dict[int, KaryWorkerEstimate]:
    """Confidence intervals on worker response probabilities (k-ary data).

    This is the library's main entry point for the paper's Section IV
    setting; it evaluates one triple of workers at a time.
    """
    evaluator = WorkerEvaluator(confidence=confidence)
    return evaluator.evaluate_kary(matrix, workers=workers)
