"""Vectorized dependency ledger for incremental invalidation.

The streaming evaluator (:class:`~repro.core.incremental.IncrementalEvaluator`)
must know which cached per-worker estimates a batch of responses invalidates.
Historically that knowledge came from a per-read ``observer`` callback on
:class:`~repro.core.agreement.AgreementStatistics`: every scalar statistic
read during an estimate was recorded into Python sets, which taxed the hot
path and forced every parallel execution tier to fall back to serial while an
observer was attached (the tracker had to see each read).

This module replaces that protocol with *footprints*: the evaluation path
returns, per worker, a compact summary of the statistics it read —
derived analytically from the array operations it actually executed, not
observed one scalar at a time.  A footprint is three pieces of data:

``touch_target``
    The greedy pairing pass reads the common count between the evaluated
    worker and **every** candidate (the usability filter and the stable sort
    both inspect all of them), so any changed pair with the evaluated worker
    as an endpoint invalidates the estimate.  One flag replaces ``m - 1``
    recorded pairs.  This flag also closes a growth hole the per-read
    observer had: a worker that joins *after* ``w`` was cached was never a
    candidate during ``w``'s evaluation, so the pair ``(w, new)`` was never
    recorded — yet the newcomer's first overlapping response changes the
    candidate list a fresh run would see.  An endpoint test does not care
    when the other worker joined.

``pairs``
    The greedy scan probes overlaps between *candidates* while assembling
    disjoint pairs (``common_count(first, other)`` until a partner clears
    ``min_overlap``).  Those reads do not touch the target and are recorded
    exactly, as a sorted-unique array of encoded pair ids
    (``a << 32 | b`` with ``a < b``).

``support``
    The triple stage and the Lemma-4 covariance assembly read pair and
    triple statistics among ``{w} | partners`` wholesale (vectorized
    gathers).  Bulk reads are summarized as a *support set* of worker ids: a
    changed pair invalidates the estimate when both endpoints lie in the
    support.  Partners of triples later dropped as unusable are included —
    the stage inputs were gathered before usability was decided.

The ledger aggregates footprints across cached workers into flat NumPy
arrays so a micro-batch's invalidation query is a handful of vectorized
membership tests (``np.isin`` against the batch's changed-pair array — one
intersection pass, not per-pair set probes).  Footprints are plain arrays,
so they serialize into durable snapshots (see
:meth:`~repro.core.incremental.IncrementalEvaluator.export_state`) and ship
across process boundaries through the shared-memory result channel of
:mod:`repro.core.parallel` unchanged.

:class:`ObserverDependencyTracker` — the per-read observer — is retained
for the dict backend (whose scalar evaluation path has no array ops to
derive a footprint from) and as the reference implementation the
differential suite checks ledger decisions against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

__all__ = [
    "PAIR_ID_SHIFT",
    "encode_pair_ids",
    "WorkerFootprint",
    "DependencyLedger",
    "ObserverDependencyTracker",
]

# Pair (a, b) with a < b is encoded as the int64 ``a << PAIR_ID_SHIFT | b``.
# Worker ids are bounded far below 2**31 in practice (the dense count
# matrices would not fit in memory long before), so the encoding is exact.
PAIR_ID_SHIFT = 32


def encode_pair_ids(pairs: Iterable[tuple[int, int]]) -> np.ndarray:
    """Sorted-unique int64 ids for ``(a, b)`` worker pairs (order-free)."""
    encoded = [
        (min(a, b) << PAIR_ID_SHIFT) | max(a, b) for a, b in pairs
    ]
    if not encoded:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.asarray(encoded, dtype=np.int64))


def _decode_pair_ids(ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Endpoint arrays ``(a, b)`` for encoded pair ids."""
    return ids >> PAIR_ID_SHIFT, ids & ((1 << PAIR_ID_SHIFT) - 1)


@dataclass(frozen=True)
class WorkerFootprint:
    """Compact record of the statistics one worker's estimate read.

    Produced by :meth:`MWorkerEstimator.evaluate_worker_range
    <repro.core.m_worker.MWorkerEstimator.evaluate_worker_range>` with
    ``collect_footprints=True`` and consumed by :class:`DependencyLedger`.
    Instances are plain arrays + a flag: picklable (they ride the
    process-shard result channel) and snapshot-serializable.
    """

    worker: int
    touch_target: bool
    pairs: np.ndarray  # sorted unique encoded pair ids, int64
    support: np.ndarray  # sorted unique worker ids, int64

    @classmethod
    def from_evaluation(
        cls,
        worker: int,
        partners: Iterable[int],
        probe_pairs: Iterable[tuple[int, int]],
    ) -> "WorkerFootprint":
        """Footprint of one greedy-paired evaluation.

        ``partners`` are the members of every formed pair (pre-usability);
        ``probe_pairs`` is the pairing scan log (candidate-vs-candidate
        overlap probes).  The target's own pairing reads are represented by
        ``touch_target`` rather than enumerated.
        """
        support = np.unique(
            np.asarray([worker, *partners], dtype=np.int64)
        )
        return cls(
            worker=int(worker),
            touch_target=True,
            pairs=encode_pair_ids(probe_pairs),
            support=support,
        )


class DependencyLedger:
    """Aggregated footprints of every live cached estimate.

    ``record`` / ``forget`` maintain per-worker footprints;
    :meth:`invalidated` answers "which cached estimates does this batch of
    changed pairs invalidate?" with vectorized membership tests over flat
    views of all footprints (rebuilt lazily after mutations).
    """

    def __init__(self) -> None:
        self._footprints: dict[int, WorkerFootprint] = {}
        self._flat: tuple[np.ndarray, ...] | None = None

    def __len__(self) -> int:
        return len(self._footprints)

    def __contains__(self, worker: int) -> bool:
        return worker in self._footprints

    @property
    def workers(self) -> set[int]:
        """Workers with a recorded footprint."""
        return set(self._footprints)

    def footprint(self, worker: int) -> WorkerFootprint | None:
        """The recorded footprint for ``worker`` (None when absent)."""
        return self._footprints.get(worker)

    def record(self, worker: int, footprint: WorkerFootprint) -> None:
        """Replace ``worker``'s footprint with a freshly collected one."""
        self._footprints[int(worker)] = footprint
        self._flat = None

    def forget(self, worker: int) -> None:
        """Drop ``worker``'s footprint (its cache entry was invalidated)."""
        if self._footprints.pop(int(worker), None) is not None:
            self._flat = None

    def clear(self) -> None:
        self._footprints.clear()
        self._flat = None

    # -- invalidation ---------------------------------------------------- #

    def _flat_views(self) -> tuple[np.ndarray, ...]:
        if self._flat is None:
            workers = np.fromiter(
                self._footprints.keys(), dtype=np.int64, count=len(self._footprints)
            )
            order = np.argsort(workers, kind="stable")
            workers = workers[order]
            prints = [self._footprints[int(w)] for w in workers]
            touch = np.fromiter(
                (fp.touch_target for fp in prints), dtype=bool, count=len(prints)
            )
            pair_counts = [fp.pairs.size for fp in prints]
            support_counts = [fp.support.size for fp in prints]
            pairs_flat = (
                np.concatenate([fp.pairs for fp in prints])
                if sum(pair_counts)
                else np.empty(0, dtype=np.int64)
            )
            support_flat = (
                np.concatenate([fp.support for fp in prints])
                if sum(support_counts)
                else np.empty(0, dtype=np.int64)
            )
            pairs_owner = np.repeat(
                np.arange(len(prints), dtype=np.int64), pair_counts
            )
            support_owner = np.repeat(
                np.arange(len(prints), dtype=np.int64), support_counts
            )
            self._flat = (
                workers, touch, pairs_flat, pairs_owner, support_flat, support_owner
            )
        return self._flat

    def invalidated(self, changed_pairs: Iterable[tuple[int, int]]) -> set[int]:
        """Recorded workers whose estimate a set of changed pairs invalidates.

        One vectorized pass: an endpoint-membership test for the
        ``touch_target`` flags, one ``np.isin`` of all recorded probe pairs
        against the batch's encoded changed-pair array, and one boolean
        owner-by-endpoint intersection for the support sets.
        """
        keys = encode_pair_ids(changed_pairs)
        if keys.size == 0 or not self._footprints:
            return set()
        first, second = _decode_pair_ids(keys)
        endpoints = np.unique(np.concatenate([first, second]))
        workers, touch, pairs_flat, pairs_owner, support_flat, support_owner = (
            self._flat_views()
        )
        hit = touch & np.isin(workers, endpoints)
        if pairs_flat.size:
            hit[pairs_owner[np.isin(pairs_flat, keys)]] = True
        if support_flat.size:
            member = np.isin(support_flat, endpoints)
            if member.any():
                # has[owner, e] == True iff endpoint e lies in owner's support.
                has = np.zeros((workers.size, endpoints.size), dtype=bool)
                has[
                    support_owner[member],
                    np.searchsorted(endpoints, support_flat[member]),
                ] = True
                first_idx = np.searchsorted(endpoints, first)
                second_idx = np.searchsorted(endpoints, second)
                hit |= (has[:, first_idx] & has[:, second_idx]).any(axis=1)
        return {int(w) for w in workers[hit]}

    # -- id remapping ---------------------------------------------------- #

    def remap(self, kept_workers: Mapping[int, int] | Iterable[int]) -> None:
        """Re-key the ledger after an id compaction (``filter_spammers``).

        ``kept_workers`` maps *old* worker id → *new* worker id — or, in
        the :func:`~repro.core.spammer_filter.filter_spammers` result
        convention (``kept_workers[new_id] == old_id``), the sequence of
        surviving old ids in new-id order.  Footprints of removed workers
        are dropped; surviving footprints re-encode their pair and support
        arrays, with any pair/support member that referenced a removed
        worker discarded (the pair no longer exists to change).
        """
        if isinstance(kept_workers, Mapping):
            old_to_new = {int(o): int(n) for o, n in kept_workers.items()}
        else:
            old_to_new = {int(o): n for n, o in enumerate(kept_workers)}
        remapped: dict[int, WorkerFootprint] = {}
        for old_id, fp in self._footprints.items():
            new_id = old_to_new.get(old_id)
            if new_id is None:
                continue
            a, b = _decode_pair_ids(fp.pairs)
            kept_pairs = [
                (old_to_new[int(x)], old_to_new[int(y)])
                for x, y in zip(a, b)
                if int(x) in old_to_new and int(y) in old_to_new
            ]
            support = np.unique(
                np.asarray(
                    [old_to_new[int(s)] for s in fp.support if int(s) in old_to_new],
                    dtype=np.int64,
                )
            )
            remapped[new_id] = WorkerFootprint(
                worker=new_id,
                touch_target=fp.touch_target,
                pairs=encode_pair_ids(kept_pairs),
                support=support,
            )
        self._footprints = remapped
        self._flat = None

    # -- persistence ------------------------------------------------------ #

    def export_arrays(self, prefix: str = "deps.") -> dict[str, np.ndarray]:
        """Flat-array serialization (rides the durable snapshot format)."""
        workers, touch, pairs_flat, pairs_owner, support_flat, support_owner = (
            self._flat_views()
        )
        pair_counts = np.bincount(pairs_owner, minlength=workers.size).astype(
            np.int64
        )
        support_counts = np.bincount(
            support_owner, minlength=workers.size
        ).astype(np.int64)
        return {
            f"{prefix}workers": workers,
            f"{prefix}touch": touch.astype(np.uint8),
            f"{prefix}pairs_flat": pairs_flat,
            f"{prefix}pairs_offsets": np.concatenate(
                [[0], np.cumsum(pair_counts)]
            ).astype(np.int64),
            f"{prefix}support_flat": support_flat,
            f"{prefix}support_offsets": np.concatenate(
                [[0], np.cumsum(support_counts)]
            ).astype(np.int64),
        }

    @classmethod
    def from_arrays(
        cls, arrays: Mapping[str, np.ndarray], prefix: str = "deps."
    ) -> "DependencyLedger":
        """Rebuild a ledger from :meth:`export_arrays` output."""
        self = cls()
        workers = np.asarray(arrays[f"{prefix}workers"], dtype=np.int64)
        touch = np.asarray(arrays[f"{prefix}touch"], dtype=bool)
        pairs_flat = np.asarray(arrays[f"{prefix}pairs_flat"], dtype=np.int64)
        pairs_offsets = np.asarray(
            arrays[f"{prefix}pairs_offsets"], dtype=np.int64
        )
        support_flat = np.asarray(
            arrays[f"{prefix}support_flat"], dtype=np.int64
        )
        support_offsets = np.asarray(
            arrays[f"{prefix}support_offsets"], dtype=np.int64
        )
        for index, worker in enumerate(workers):
            self._footprints[int(worker)] = WorkerFootprint(
                worker=int(worker),
                touch_target=bool(touch[index]),
                pairs=pairs_flat[
                    pairs_offsets[index] : pairs_offsets[index + 1]
                ].copy(),
                support=support_flat[
                    support_offsets[index] : support_offsets[index + 1]
                ].copy(),
            )
        return self


class ObserverDependencyTracker:
    """Per-read dependency recorder (the legacy observer protocol).

    Records which pair statistics each cached estimate depended on, one
    :meth:`note_pair` / :meth:`note_bulk` callback at a time, via the
    ``observer`` hook of :class:`~repro.core.agreement.AgreementStatistics`.
    Retained for the dict backend — whose scalar evaluation path has no
    array ops to derive a footprint from — and as the reference
    implementation the ledger's decisions are differentially tested
    against.

    Fine-grained reads (``note_pair``) are indexed per pair key; vectorized
    bulk reads (``note_bulk``), which touch every pair among the evaluated
    worker and its partners at once, are summarized as a *support set* of
    worker ids — a changed pair invalidates the estimate when both endpoints
    lie in the support.  Reverse indexes make the invalidation lookup
    O(readers of the changed pair) instead of O(cached workers).

    :meth:`readers_of` additionally applies the ledger's endpoint rule: a
    changed pair invalidates a recorded worker that is one of its
    endpoints, whether or not that exact pair was read.  The pairing pass
    reads the target against every *current* candidate, so the recorded
    pair set is complete only for workers that existed at evaluation time —
    without the endpoint rule, a worker joining later could change the
    candidate list without invalidating the stale cache (a bug the scalar
    tracker shipped with, caught while differential-testing the ledger).
    """

    def __init__(self) -> None:
        self._target: int | None = None
        self._pair_deps: dict[int, set[tuple[int, int]]] = {}
        self._supports: dict[int, set[int]] = {}
        self._pair_readers: dict[tuple[int, int], set[int]] = {}
        self._support_members: dict[int, set[int]] = {}

    def begin(self, worker: int) -> None:
        """Start recording reads on behalf of ``worker``'s estimate."""
        self.forget(worker)
        self._target = worker
        self._pair_deps[worker] = set()
        self._supports[worker] = {worker}
        self._support_members.setdefault(worker, set()).add(worker)

    def finish(self) -> None:
        self._target = None

    def forget(self, worker: int) -> None:
        """Drop ``worker``'s recorded dependencies (before re-estimating)."""
        for key in self._pair_deps.pop(worker, ()):
            readers = self._pair_readers.get(key)
            if readers is not None:
                readers.discard(worker)
                if not readers:
                    del self._pair_readers[key]
        for member in self._supports.pop(worker, ()):
            members = self._support_members.get(member)
            if members is not None:
                members.discard(worker)
                if not members:
                    del self._support_members[member]

    # -- AgreementStatistics observer protocol ------------------------- #

    def note_pair(self, key: tuple[int, int]) -> None:
        if self._target is None:
            return
        deps = self._pair_deps[self._target]
        if key not in deps:
            deps.add(key)
            self._pair_readers.setdefault(key, set()).add(self._target)

    def note_bulk(self, worker: int, partners: np.ndarray) -> None:
        if self._target is None:
            return
        support = self._supports[self._target]
        for member in (worker, *(int(p) for p in partners)):
            if member not in support:
                support.add(member)
                self._support_members.setdefault(member, set()).add(self._target)

    # -- invalidation --------------------------------------------------- #

    def readers_of(self, key: tuple[int, int]) -> set[int]:
        """Recorded workers whose estimate the changed pair ``key`` invalidates."""
        affected = set(self._pair_readers.get(key, ()))
        # Endpoint rule (see class docstring): pairing reads the target
        # against every current candidate, so a changed pair always
        # invalidates a recorded endpoint.
        affected.update(k for k in key if k in self._pair_deps)
        a, b = key
        in_a = self._support_members.get(a)
        in_b = self._support_members.get(b)
        if in_a and in_b:
            affected |= in_a & in_b
        return affected
