"""Triple formation for the m-worker estimator (Section III-C1).

To evaluate worker ``w_i``, Algorithm A2 partitions the remaining workers
into pairs; each pair plus ``w_i`` forms a triple whose 3-worker estimate is
later aggregated.  The paper's greedy strategy favours pairs that share many
tasks with ``w_i`` (good triples), accepting that some triples will be poor —
the optimal weighting of Lemma 5 then down-weights the poor ones.

A random pairing strategy is also provided for the ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.agreement import AgreementStatistics

__all__ = ["form_triples", "greedy_pairs", "greedy_pairs_dense", "random_pairs"]


def greedy_pairs(
    stats: AgreementStatistics,
    target: int,
    candidates: list[int],
    min_overlap: int = 1,
    probe_log: list[tuple[int, int]] | None = None,
) -> list[tuple[int, int]]:
    """The paper's greedy pairing of ``candidates`` for evaluating ``target``.

    Candidates are sorted by the number of tasks they share with ``target``
    (descending).  The best candidate is paired with the first later candidate
    that shares at least ``min_overlap`` tasks with both ``target`` and the
    best candidate; both are removed and the process repeats until no valid
    pair remains.

    When ``probe_log`` is given, every candidate-vs-candidate overlap probe
    of the partner scan is appended to it (the target-vs-candidate reads of
    the usability filter and the sort are *not* logged — they cover every
    candidate, and the dependency ledger represents them with the
    ``touch_target`` flag instead; see :mod:`repro.core.deps`).
    """
    if target in candidates:
        raise ConfigurationError("the evaluated worker cannot be its own partner")
    remaining = sorted(
        (w for w in candidates if stats.common_count(target, w) >= min_overlap),
        key=lambda w: -stats.common_count(target, w),
    )
    pairs: list[tuple[int, int]] = []
    while len(remaining) >= 2:
        first = remaining[0]
        partner_index = None
        for index in range(1, len(remaining)):
            other = remaining[index]
            if probe_log is not None:
                probe_log.append((first, other))
            if stats.common_count(first, other) >= min_overlap:
                partner_index = index
                break
        if partner_index is None:
            # Nobody pairs with the best candidate; drop it and continue.
            remaining.pop(0)
            continue
        partner = remaining.pop(partner_index)
        remaining.pop(0)
        pairs.append((first, partner))
    return pairs


def greedy_pairs_dense(
    common_counts: np.ndarray,
    target: int,
    candidates: list[int],
    min_overlap: int = 1,
    common_list: list[list[int]] | None = None,
    probe_log: list[tuple[int, int]] | None = None,
) -> list[tuple[int, int]]:
    """:func:`greedy_pairs` reading straight from the dense count matrix.

    Produces exactly the same pairs as the reference implementation (the
    stable descending sort and the first-valid-partner scan are replicated
    step for step) but replaces the ~m^2 Python-level statistics calls per
    evaluated worker with array reads, which makes pairing disappear from
    the batch-evaluation profile.  ``probe_log`` records the same partner
    scan probes, in the same order, as the reference implementation logs —
    the dependency footprints derived from either variant are identical,
    which is what lets the incremental evaluator use this fast path instead
    of the per-read observer (see :mod:`repro.core.deps`).
    """
    if target in candidates:
        raise ConfigurationError("the evaluated worker cannot be its own partner")
    candidate_index = np.asarray(candidates, dtype=np.int64)
    with_target = common_counts[target, candidate_index]
    keep = with_target >= min_overlap
    candidate_index = candidate_index[keep]
    # Stable argsort on negated counts == Python's stable sort by -count.
    order = np.argsort(-with_target[keep], kind="stable")
    remaining = [int(candidate) for candidate in candidate_index[order]]
    rows = common_list if common_list is not None else common_counts
    pairs: list[tuple[int, int]] = []
    while len(remaining) >= 2:
        first = remaining[0]
        row = rows[first]
        partner_index = None
        for index in range(1, len(remaining)):
            if probe_log is not None:
                probe_log.append((first, remaining[index]))
            if row[remaining[index]] >= min_overlap:
                partner_index = index
                break
        if partner_index is None:
            remaining.pop(0)
            continue
        partner = remaining.pop(partner_index)
        remaining.pop(0)
        pairs.append((first, partner))
    return pairs


def random_pairs(
    stats: AgreementStatistics,
    target: int,
    candidates: list[int],
    rng: np.random.Generator,
    min_overlap: int = 1,
) -> list[tuple[int, int]]:
    """Baseline pairing strategy: shuffle and pair adjacent candidates.

    Pairs violating the overlap requirement (with the target or with each
    other) are discarded.  Used by the pairing ablation bench to show the
    value of the greedy strategy.
    """
    if target in candidates:
        raise ConfigurationError("the evaluated worker cannot be its own partner")
    usable = [w for w in candidates if stats.common_count(target, w) >= min_overlap]
    shuffled = list(usable)
    rng.shuffle(shuffled)
    pairs = []
    for index in range(0, len(shuffled) - 1, 2):
        first, second = shuffled[index], shuffled[index + 1]
        if stats.common_count(first, second) >= min_overlap:
            pairs.append((first, second))
    return pairs


def form_triples(
    stats: AgreementStatistics,
    target: int,
    candidates: list[int],
    strategy: str = "greedy",
    rng: np.random.Generator | None = None,
    min_overlap: int = 1,
    accelerate: bool = False,
    probe_log: list[tuple[int, int]] | None = None,
) -> list[tuple[int, int, int]]:
    """Form the triples used to evaluate ``target`` (Step 1 of Algorithm A2).

    Parameters
    ----------
    stats:
        Agreement cache over the response matrix.
    target:
        The worker being evaluated.
    candidates:
        The other workers available as partners.
    strategy:
        ``"greedy"`` (the paper's strategy) or ``"random"`` (ablation).
    rng:
        Required for the random strategy.
    min_overlap:
        Minimum number of common tasks required between every pair inside a
        triple.
    accelerate:
        Permit :func:`greedy_pairs_dense` when the statistics carry a dense
        backend and no observer (identical pairs, array reads instead of
        per-pair calls).  Ignored for the random strategy.
    probe_log:
        Collect the pairing scan's candidate-vs-candidate overlap probes
        (for dependency footprints; greedy strategy only — the random
        strategy's reads are rng-dependent and not footprint-collectable).

    Returns
    -------
    list of triples ``(target, partner_a, partner_b)``.
    """
    if strategy == "greedy":
        if accelerate and stats.has_dense_backend and stats.observer is None:
            pairs = greedy_pairs_dense(
                stats.backend.common_counts,
                target,
                candidates,
                min_overlap=min_overlap,
                common_list=stats.backend.common_counts_list,
                probe_log=probe_log,
            )
        else:
            pairs = greedy_pairs(
                stats, target, candidates, min_overlap=min_overlap,
                probe_log=probe_log,
            )
    elif strategy == "random":
        if rng is None:
            raise ConfigurationError("the random pairing strategy requires an rng")
        if probe_log is not None:
            raise ConfigurationError(
                "footprint collection (probe_log) requires the greedy pairing "
                "strategy"
            )
        pairs = random_pairs(stats, target, candidates, rng, min_overlap=min_overlap)
    else:
        raise ConfigurationError(
            f"unknown pairing strategy '{strategy}'; expected 'greedy' or 'random'"
        )
    return [(target, a, b) for a, b in pairs]
