"""Pairwise agreement statistics over a :class:`ResponseMatrix`.

The binary algorithms are driven entirely by three kinds of quantities:

* ``q_ij`` — the empirical agreement rate of workers ``i`` and ``j`` over the
  tasks they both attempted,
* ``c_ij`` — the number of tasks both attempted,
* ``c_ijk`` — the number of tasks all three of ``i``, ``j``, ``k`` attempted.

:class:`AgreementStatistics` caches these for a fixed set of workers so the
m-worker estimator (which revisits many overlapping triples) does not
recompute them from the raw responses each time.

Two computation strategies are supported:

* the original lazy **dict** path — a pair or triple is computed from the
  sparse dict-of-dicts store (Python set intersections) the first time it is
  requested and memoized afterwards; O(n) per pair, O(m^2 n) for a full
  batch evaluation;
* the vectorized **dense** path — a
  :class:`~repro.data.dense_backend.DenseAgreementBackend` precomputes all
  pairwise counts with NumPy matrix products and serves triples from packed
  bitset rows; O(m^2 n) in BLAS once, O(1) per pair afterwards;
* the **sparse** path — scipy.sparse CSR matmuls for the pairwise counts
  and fill-restricted products for the triple grids
  (:class:`~repro.data.sparse_backend.SparseAgreementBackend`), the cheap
  choice for large low-fill matrices;
* the **bitset** path — packed bit planes only
  (:class:`~repro.data.sparse_backend.BitsetAgreementBackend`), the
  low-memory fallback when the dense arrays cannot be materialized.

All paths produce exactly the same integer counts, so every estimator is
bit-identical across backends.  Use :meth:`AgreementStatistics.precompute`
(or ``compute_agreement_statistics(matrix, backend="dense")``) for the fast
path; ``backend="auto"`` (the default) applies the
:func:`~repro.data.dense_backend.auto_backend_choice` cost model over the
grid size and observed fill.

Backend capability matrix
-------------------------

Every vectorized backend serves the bulk reads behind ``batch_triples`` and
``batch_lemma4``, and every vectorized backend implements the shared-state
export protocol behind process sharding
(:meth:`~repro.data.dense_backend.AgreementBackendBase.export_shared_state`);
only the dict path — which has no arrays to chunk or export — falls back to
serial for every non-serial ``shards=`` spec:

============  =============  ============  =============  ==========  ====================  =========  ==========  ============
backend       batch_triples  batch_lemma4  shared export  footprints  executor tiers        streaming  durability  multi-writer
============  =============  ============  =============  ==========  ====================  =========  ==========  ============
``dict``      no (scalar)    no (scalar)   no             observer    serial only           yes        WAL replay  yes
``dense``     yes            yes           yes            yes         thread + process      yes        snapshots   yes
``sparse``    yes            yes           yes            yes         thread + process      yes        snapshots   yes
``bitset``    yes            yes           yes            yes         thread + process      yes        snapshots   yes
============  =============  ============  =============  ==========  ====================  =========  ==========  ============

The same facts are exported machine-readably as
:data:`BACKEND_CAPABILITIES` (one :class:`BackendCapability` per backend),
which is what automated consumers enumerate instead of re-reading this
table.  The scenario gauntlet (:mod:`repro.evaluation.gauntlet`) is the
main such consumer: its measurement grid is
``scenario family x backend x estimator path``, where the estimator paths
per backend come from :func:`supported_estimator_paths` —

* ``"scalar"`` — the sequential per-triple / per-worker reference path
  (``batch_triples=False``, ``batch_lemma4=False``); every backend serves
  it (it is the only binary path the dict backend has, and the only path
  the k-ary Algorithm-A3 estimator has on any backend);
* ``"batched"`` — the vectorized triple stage plus grouped Lemma-4/5
  aggregation; requires the *batch_triples*/*batch_lemma4* columns above,
  so it exists on the vectorized backends only;
* ``"streamed"`` — responses applied incrementally (micro-batched
  ``apply_responses`` under :class:`~repro.serve.session.StreamSession`)
  and estimates served from the last batch boundary; every backend
  streams (the *streaming* column), dict included.

Coverage numbers across those cells are comparable because every gauntlet
cell goes through the shared accounting of
:mod:`repro.evaluation.coverage`: one degenerate-filtering predicate
(``usable_estimate``), with ``n_degenerate`` and skipped repetitions
surfaced per cell instead of silently dropped.  The gauntlet's
gap-detection pass recomputes the full grid from
:data:`~repro.simulation.gauntlet.GAUNTLET_FAMILIES` x
:data:`BACKEND_CAPABILITIES` and flags any (scenario, backend, path) cell
a report failed to plan — so adding a backend here (or a family there)
makes an untested combination loud, not invisible.

The *shared export* column is the ``supports_shared_export`` flag: the
backend can ship its precomputed state (packed planes, count matrices, vote
table, triple tensor where cached) through ``multiprocessing.shared_memory``
so process shards attach views instead of rebuilding.  The *executor tiers*
column lists which :mod:`repro.core.parallel` tiers can engage: the thread
tier needs only a vectorized backend (chunks share the parent's statistics
object, with every lazy cache pre-materialized), the process tier
additionally needs the shared export.  ``shards="auto"`` picks the tier
from the :func:`~repro.core.parallel.auto_shard_choice` cost model; see the
:class:`~repro.core.m_worker.MWorkerEstimator` determinism contract for the
size thresholds and serial-fallback guards.

The *footprints* column is the dependency protocol the incremental
evaluator consumes.  On the vectorized backends ``evaluate_worker_range``
*returns* a compact :class:`~repro.core.deps.WorkerFootprint` per worker
(pairing scan log + formed-partner support + touch-target flag — see
:mod:`repro.core.deps`) instead of invoking a per-read callback; footprints
ride the shard result channel, so dependency-tracked recomputes engage the
same executor tiers as any batch run.  The dict path records dependencies
through the legacy per-read ``observer`` (below), which must see every
scalar read and therefore forces serial execution — the one remaining
observer user besides the differential suite's ledger-equivalence
reference mode.

The *streaming* column covers the delta-update protocol the incremental
evaluator and the async ingestion subsystem (:mod:`repro.serve`) drive:
O(row) ``apply_response`` singleton deltas plus the micro-batched
``apply_responses`` (one derived-cache invalidation pass per batch, with
grouped per-worker-row storage writes while no count matrix is
materialized) and the O(added ids) ``extend`` growth for worker/task ids
unseen at construction.

The *durability* column describes how a crashed durable session
(:mod:`repro.serve.durable`) gets its statistics back.  The vectorized
backends persist their full precomputed state in the periodic snapshots —
the same packed planes / count matrices / vote tables the shared-export
protocol ships between processes, restored through
``attach_shared_state`` with no count recomputation — so resume pays only
the WAL delta beyond the newest snapshot.  The dict path has no arrays to
snapshot; its statistics are rebuilt by replaying responses (the response
triples themselves *are* snapshotted, so a dict-backed resume is still
O(delta) over the WAL, it just re-derives pair counts from the restored
matrix).  Either way the restored backend keeps delta-updating in place,
and — per the resume contract below — serves the same bits it would have
without the crash.

Streaming determinism contract
------------------------------

The streaming paths inherit the bit-identity promise, with three
guarantees locked by the differential suite's ``streamed`` column
(25-seed micro-batch interleaving fuzz in
``tests/property/test_cross_backend_differential.py``):

* **ordering** — a response stream is applied in submission order,
  whether it arrives as singletons, batches, or through the asyncio
  session (FIFO queue, single applier);
* **batch-boundary invariance** — however the stream is chopped into
  micro-batches, the estimates served afterwards equal a from-scratch
  batch build over the accumulated responses, bit for bit, on every
  backend (batching moves bookkeeping, never arithmetic);
* **snapshot consistency** — concurrent readers observe whole applied
  batches only: an estimate served mid-stream equals a fresh batch run
  over exactly the responses whose batches have been applied (the
  dependency-tracked invalidation of
  :class:`~repro.core.incremental.IncrementalEvaluator` guarantees no
  stale interval survives a statistic its computation read).

Resume determinism contract
---------------------------

Durable sessions extend the streaming contract across process death: a
session resumed with :meth:`~repro.serve.session.StreamSession.resume`
serves estimates **bit-identical** to a session that was never
interrupted, on every backend.  The guarantee decomposes into:

* **acknowledged writes survive** — each micro-batch is appended to the
  write-ahead log and fsynced *before* ``apply_batch`` runs, so any event
  whose ``flush()`` was acknowledged is on disk (WAL format: one
  versioned NDJSON header line, then per-batch records carrying the
  inclusive sequence range, the events, and a CRC-32 over the canonical
  encoding — see :mod:`repro.serve.durable`);
* **crash residue is inert** — a torn WAL tail (truncated line, flipped
  bytes, missing newline) is detected by the record CRC and discarded;
  a snapshot killed mid-write is invisible (atomic temp-file + rename)
  or fails its SHA-256 footer and falls back to an older snapshot, down
  to pure WAL replay;
* **replay is idempotent** — WAL records whose sequence range is already
  covered by the restored snapshot are skipped, and a record straddling
  the snapshot boundary is sliced to its uncovered suffix, so duplicated
  batches or a double replay cannot double-apply (a true sequence *gap*
  raises :class:`~repro.exceptions.DurableStateError` instead — that is
  data loss, not crash residue);
* **bit-identity** — estimates depend only on the accumulated counts,
  never on how application was chopped across the crash, so the
  batch-boundary invariance above carries the promise across resume.

The contract is locked by the differential suite's ``resumed`` column
(kill/resume fuzz over every backend with random cut points, snapshot
cadences and corruption modes) and the crash-smoke CI job, which SIGKILLs
a live durable ingest process and byte-compares the resumed output table.

Multi-writer determinism contract
---------------------------------

Partitioned ingestion (:mod:`repro.serve.multiwriter`, the *multi-writer*
column) extends both contracts above to N concurrent ingest pipelines
while keeping every promise bit-exact, on every backend:

* **partition rule** — a response is routed by
  :func:`~repro.serve.multiwriter.partition_for`: CRC-32 of the worker
  id's fixed-width little-endian encoding, modulo the writer count.  The
  assignment depends only on the id (deterministic across processes,
  stable as new worker ids appear), so *all events for one worker share a
  partition* and their submission order is preserved by construction —
  the only ordering the last-write-wins upserts and the order-free
  dependency ledger require.  Events for different workers update
  disjoint response cells and commute, which is why partition-scoped
  ``apply_batch`` interleaving (batches applied in whatever order they
  complete) cannot change the accumulated matrix;
* **epoch / merge semantics** — each partition appends to its own WAL
  segment ``wal-<p>.ndjson`` (same versioned CRC'd record format, with a
  *per-partition* sequence plus a session-global *epoch* stamped on each
  record).  Resume truncates each segment's corrupt tail independently,
  drops snapshot-covered records per partition (slicing boundary
  straddlers, failing hard on true sequence gaps), and k-way merges the
  deltas by ``(epoch, partition_seq, partition)`` — any merge that
  preserves per-partition order rebuilds the same matrix, the tie-break
  merely makes the replay order reproducible;
* **fencing invariant** — a snapshot is only written behind a barrier
  that closes the intake gate and drains every in-flight batch, then
  bumps the epoch: a snapshot at epoch E covers *exactly* the records
  with epoch < E in every segment.  A snapshot never observes a torn
  partition batch, and the per-partition applied sequences in its meta
  are mutually consistent — so restore + merge-replay is O(delta) per
  segment and bit-identical to an uninterrupted serial run.

The contract is locked by the differential suite's
``multiwriter-resumed`` column (25-seed kill/resume fuzz over random
writer counts, unflushed kills, per-segment tail corruption and torn
snapshots), the snapshot-fencing unit tests, and the multi-writer
crash-drill leg of the crash-smoke CI job.  Sessions of either shape are
built through :func:`repro.serve.open_session` from one validated
:class:`~repro.serve.SessionConfig` — ``writers=1`` is the classic
single-applier session and the contracts above apply verbatim.

A new backend implements the
:class:`~repro.data.dense_backend.AgreementBackendBase` contract, gets the
bulk fast paths (and the streaming protocol's shared machinery, including
snapshot persistence through the shared-export shapes) for free, and
**must** register in the differential suite's path tables — including the
``streamed`` and ``resumed`` columns — so the bit-identity promise is
enforced for it on every public entry point.

An optional ``observer`` receives every pair key whose statistics are read.
This is the *legacy* dependency protocol: the incremental evaluator now
prefers the returned-footprint path of the capability matrix above
(vectorized, shard-composable) and attaches an observer only on the dict
backend or when ``dependency_tracking="observer"`` forces the reference
mode.  Every execution tier defers to serial while an observer is attached
(the recorder must see each read), which is exactly why the footprint
protocol replaced it on the fast paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.exceptions import DataValidationError, InsufficientDataError
from repro.data.dense_backend import AgreementBackendBase, resolve_backend
from repro.data.response_matrix import ResponseMatrix

__all__ = [
    "AgreementStatistics",
    "BACKEND_CAPABILITIES",
    "BackendCapability",
    "ESTIMATOR_PATHS",
    "StatisticsObserver",
    "TripleCovarianceInputs",
    "TripleStageInputs",
    "compute_agreement_statistics",
    "pair_key",
    "supported_estimator_paths",
]


@dataclass(frozen=True)
class BackendCapability:
    """Machine-readable row of the backend capability matrix above.

    Attributes mirror the documented columns: the batched bulk reads
    (*batch_triples*/*batch_lemma4*), the shared-memory export behind
    process sharding, the returned-footprint dependency protocol, the
    streaming delta-update protocol, and partitioned multi-writer
    ingestion (every streaming backend serves it: the serve layer routes
    and merges, the backend only ever sees whole ordered batches).
    ``estimator_paths`` lists the binary estimator paths the backend
    serves (see the module docstring).
    """

    backend: str
    batch_triples: bool
    batch_lemma4: bool
    shared_export: bool
    footprints: bool
    streaming: bool
    multiwriter: bool

    @property
    def estimator_paths(self) -> tuple[str, ...]:
        """Binary estimator paths this backend serves, in canonical order."""
        paths = ["scalar"]
        if self.batch_triples and self.batch_lemma4:
            paths.append("batched")
        if self.streaming:
            paths.append("streamed")
        return tuple(paths)


#: The capability matrix, machine-readable.  Keep in lockstep with the
#: documented table above and the differential suite's path tables; the
#: gauntlet's gap detection enumerates this to demand a measurement cell
#: for every licensed combination.
BACKEND_CAPABILITIES: dict[str, BackendCapability] = {
    "dict": BackendCapability(
        backend="dict",
        batch_triples=False,
        batch_lemma4=False,
        shared_export=False,
        footprints=False,
        streaming=True,
        multiwriter=True,
    ),
    "dense": BackendCapability(
        backend="dense",
        batch_triples=True,
        batch_lemma4=True,
        shared_export=True,
        footprints=True,
        streaming=True,
        multiwriter=True,
    ),
    "sparse": BackendCapability(
        backend="sparse",
        batch_triples=True,
        batch_lemma4=True,
        shared_export=True,
        footprints=True,
        streaming=True,
        multiwriter=True,
    ),
    "bitset": BackendCapability(
        backend="bitset",
        batch_triples=True,
        batch_lemma4=True,
        shared_export=True,
        footprints=True,
        streaming=True,
        multiwriter=True,
    ),
}

#: Canonical estimator-path order for grids and reports.
ESTIMATOR_PATHS: tuple[str, ...] = ("scalar", "batched", "streamed")


def supported_estimator_paths(backend: str, kind: str = "binary") -> tuple[str, ...]:
    """Estimator paths the capability matrix licenses for ``backend``.

    ``kind`` is the scenario/estimator family: ``"binary"`` (the m-worker
    estimator, whose batched and streamed paths exist where the matrix says
    so) or ``"kary"`` (Algorithm A3 evaluates one triple scalarly on every
    backend — no batch stage, no incremental path).
    """
    if backend not in BACKEND_CAPABILITIES:
        raise DataValidationError(
            f"unknown backend {backend!r}; expected one of "
            f"{sorted(BACKEND_CAPABILITIES)}"
        )
    if kind == "kary":
        return ("scalar",)
    if kind != "binary":
        raise DataValidationError(
            f"unknown estimator kind {kind!r}; expected 'binary' or 'kary'"
        )
    return BACKEND_CAPABILITIES[backend].estimator_paths


def pair_key(a: int, b: int) -> tuple[int, int]:
    """Canonical (sorted) dictionary key for an unordered worker pair.

    This is the key convention used for observer notifications; consumers
    that index dependencies by pair (the incremental evaluator) must use the
    same helper.
    """
    return (a, b) if a < b else (b, a)


_pair_key = pair_key


def _triple_key(a: int, b: int, c: int) -> tuple[int, int, int]:
    return tuple(sorted((a, b, c)))  # type: ignore[return-value]


class StatisticsObserver(Protocol):
    """Receiver for statistics-dependency notifications.

    ``note_pair`` fires for every pair whose counts/rates are read (a triple
    read fires it for all three of its pairs).  ``note_bulk`` fires when a
    vectorized bulk read touches every pair and triple among
    ``{worker} | partners`` at once.
    """

    def note_pair(self, key: tuple[int, int]) -> None: ...

    def note_bulk(self, worker: int, partners: np.ndarray) -> None: ...


@dataclass(frozen=True)
class TripleCovarianceInputs:
    """Bulk statistics feeding the vectorized Lemma-4 covariance assembly.

    All arrays are indexed by position in the ``partners`` sequence the
    inputs were requested for.

    Attributes
    ----------
    common_with_worker:
        ``c_{i, x}`` for each partner ``x`` (float64, exact integers).
    partner_common:
        ``c_{x, y}`` for each partner pair.
    partner_agreements:
        Agreement counts for each partner pair.
    triple_counts:
        ``c_{i, x, y}`` for each partner pair.
    """

    common_with_worker: np.ndarray
    partner_common: np.ndarray
    partner_agreements: np.ndarray
    triple_counts: np.ndarray


@dataclass(frozen=True)
class TripleStageInputs:
    """Bulk statistics feeding the batched per-triple evaluation stage.

    All arrays are aligned with the requested triple list: index ``t``
    describes the triple ``(worker, partners_a[t], partners_b[t])``.  Counts
    are float64 arrays holding exact integers (see the dense-backend module
    docstring for why the conversion is lossless).

    Attributes
    ----------
    common_wa, agree_wa:
        ``c_{i,a}`` and agreement counts for the worker/first-partner pairs.
    common_wb, agree_wb:
        The same for the worker/second-partner pairs.
    common_ab, agree_ab:
        The same for the partner/partner pairs.
    triple_counts:
        ``c_{i,a,b}`` per triple.
    """

    common_wa: np.ndarray
    agree_wa: np.ndarray
    common_wb: np.ndarray
    agree_wb: np.ndarray
    common_ab: np.ndarray
    agree_ab: np.ndarray
    triple_counts: np.ndarray


@dataclass
class AgreementStatistics:
    """Cached agreement rates and co-attempt counts for one response matrix.

    With no ``backend`` the cache is lazy: a pair or triple is computed the
    first time it is requested and memoized afterwards.  With a dense
    backend, lookups read straight from the precomputed count matrices (no
    per-pair memoization is needed, and the arrays stay authoritative when
    the backend is delta-updated by the incremental evaluator).
    """

    #: May be None only when a vectorized backend is supplied: every
    #: statistics read is then served from the backend arrays and the sparse
    #: store is never touched (shard worker processes rely on this to avoid
    #: shipping the response matrix).
    matrix: ResponseMatrix | None
    backend: AgreementBackendBase | None = field(default=None, repr=False)
    observer: StatisticsObserver | None = field(default=None, repr=False)
    _pair_cache: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict, repr=False
    )
    _triple_cache: dict[tuple[int, int, int], int] = field(
        default_factory=dict, repr=False
    )

    @classmethod
    def precompute(
        cls,
        matrix: ResponseMatrix,
        backend: str | AgreementBackendBase | None = "dense",
    ) -> "AgreementStatistics":
        """Build statistics with a vectorized fast path.

        All pairwise common-task and agreement counts are obtained in one
        shot (boolean matrix products for ``"dense"``, CSR products for
        ``"sparse"``, popcounts for ``"bitset"``); triple counts are served
        on demand from packed row bitsets.  Pass ``backend="auto"`` to let
        the cost model decide, or an existing backend instance to reuse one.
        """
        return cls(matrix=matrix, backend=resolve_backend(matrix, backend))

    def _pair(self, a: int, b: int) -> tuple[int, int]:
        """(common task count, agreement count) for a pair, cached."""
        if a == b:
            raise DataValidationError("agreement requires two distinct workers")
        key = _pair_key(a, b)
        if self.observer is not None:
            self.observer.note_pair(key)
        if self.backend is not None:
            return self.backend.pair(*key)
        if key not in self._pair_cache:
            stats = self.matrix.pair_statistics(*key)
            self._pair_cache[key] = (stats.common_tasks, stats.agreements)
        return self._pair_cache[key]

    def common_count(self, a: int, b: int) -> int:
        """``c_ab`` — number of tasks attempted by both workers."""
        return self._pair(a, b)[0]

    def agreement_count(self, a: int, b: int) -> int:
        """Number of common tasks on which the two workers agree."""
        return self._pair(a, b)[1]

    def agreement_rate(self, a: int, b: int) -> float:
        """``q_ab`` — empirical agreement rate over common tasks."""
        common, agreements = self._pair(a, b)
        if common == 0:
            raise InsufficientDataError(
                f"workers {a} and {b} share no common task; "
                "agreement rate is undefined"
            )
        return agreements / common

    def has_overlap(self, a: int, b: int, minimum: int = 1) -> bool:
        """True if the pair shares at least ``minimum`` common tasks."""
        return self.common_count(a, b) >= minimum

    def triple_common_count(self, a: int, b: int, c: int) -> int:
        """``c_abc`` — number of tasks attempted by all three workers."""
        if len({a, b, c}) != 3:
            raise DataValidationError("triple counts require three distinct workers")
        key = _triple_key(a, b, c)
        if self.observer is not None:
            # A triple count can only change when one of its pairs changes,
            # so pair-level dependencies capture triple reads too.
            self.observer.note_pair((key[0], key[1]))
            self.observer.note_pair((key[0], key[2]))
            self.observer.note_pair((key[1], key[2]))
        if self.backend is not None:
            return self.backend.triple_common_count(*key)
        if key not in self._triple_cache:
            self._triple_cache[key] = self.matrix.n_common_tasks(*key)
        return self._triple_cache[key]

    # ------------------------------------------------------------------ #
    # Vectorized bulk reads (dense backend only)
    # ------------------------------------------------------------------ #

    @property
    def has_dense_backend(self) -> bool:
        """True when a vectorized bulk fast path is available.

        The name predates the sparse/bitset backends: it is True for *any*
        :class:`~repro.data.dense_backend.AgreementBackendBase` (all of
        them serve the bulk reads), not only for the dense one.
        """
        return self.backend is not None

    def triple_covariance_inputs(
        self, worker: int, partners: np.ndarray, fast_counts: bool = False
    ) -> TripleCovarianceInputs:
        """Bulk counts for the Lemma-4 covariance over ``worker``'s partners.

        One masked (or fill-restricted) matrix product yields every triple
        count ``c_{worker, x, y}``; the pair matrices are sliced from the
        precomputed backend arrays.  Requires a vectorized backend (any
        :class:`~repro.data.dense_backend.AgreementBackendBase`).
        ``fast_counts`` opts into the float32 exact-count product for the
        triple grid (identical values; see
        :meth:`DenseAgreementBackend.triple_count_matrix`; the sparse and
        bitset backends ignore the flag — their grids are already the
        cheap form).
        """
        if self.backend is None:
            raise DataValidationError(
                "triple_covariance_inputs requires a vectorized backend; "
                "use AgreementStatistics.precompute"
            )
        if self.observer is not None:
            self.observer.note_bulk(worker, partners)
        common = self.backend.common_counts
        agree = self.backend.agreement_counts
        return TripleCovarianceInputs(
            common_with_worker=common[worker, partners].astype(np.float64),
            partner_common=common[np.ix_(partners, partners)].astype(np.float64),
            partner_agreements=agree[np.ix_(partners, partners)].astype(np.float64),
            triple_counts=self.backend.triple_count_matrix(
                worker, partners, fast=fast_counts
            ),
        )

    def lemma4_inputs(
        self, worker: int, partners: np.ndarray, clamp_margin: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Pre-clamped bulk inputs for the Lemma-4 assembly, or None.

        Returns ``(common_with_worker, partner_2q_minus_1, triple_counts)``
        — the Lemma-4 term grid only ever consumes the partner rates through
        ``2 q - 1``, so that matrix is gathered pre-computed from the
        backend's batch-level cache.  ``None`` when the fast form is
        unavailable (no dense backend, or an observer needs per-read
        dependency records) — callers then fall back to
        :meth:`triple_covariance_inputs`.  Values are identical either way.
        """
        if self.backend is None or self.observer is not None:
            return None
        _, two_q_minus_1, _ = self.backend.clamped_rate_data(clamp_margin)
        return (
            self.backend.common_counts_f64[worker, partners],
            two_q_minus_1[np.ix_(partners, partners)],
            self.backend.triple_count_matrix(worker, partners, fast=True),
        )

    def lemma4_group_inputs(
        self, clamp_margin: float
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Whole-matrix inputs for the grouped Lemma-4 aggregation, or None.

        Returns ``(common_counts_f64, partner_2q_minus_1)`` — the full
        ``(m, m)`` pair-count and pre-clamped ``2q - 1`` matrices the
        grouped fast path slices per worker (triple counts come from
        :meth:`DenseAgreementBackend.triple_count_grid_full`).  ``None``
        under the same conditions as :meth:`lemma4_inputs` (no dense
        backend, or an observer needs per-read dependency records).
        """
        if self.backend is None or self.observer is not None:
            return None
        _, two_q_minus_1, _ = self.backend.clamped_rate_data(clamp_margin)
        return (self.backend.common_counts_f64, two_q_minus_1)

    def triple_stage_inputs_fast(
        self,
        worker: int | np.ndarray,
        partners_a: np.ndarray,
        partners_b: np.ndarray,
        clamp_margin: float,
    ) -> tuple[np.ndarray, ...] | None:
        """Pre-clamped per-triple vectors for the batched triple stage.

        Returns ``(c_1, c_2, c_3, q_1, q_2, q_3, t_1, t_2, t_3, cl_1, cl_2,
        cl_3, c_t)`` — common counts, clamped rates, ``2q - 1`` terms and
        clamp flags for the worker/first-partner, worker/second-partner and
        partner/partner pairs, plus triple counts — gathered from the
        backend's batch-level caches.  ``worker`` may be a scalar id or an
        array aligned with the partner arrays (the cross-worker batch).
        ``None`` when unavailable (no dense backend, or an observer needs
        per-read records); callers fall back to
        :meth:`triple_stage_inputs` and compute the same values inline.
        """
        if self.backend is None or self.observer is not None:
            return None
        rates, two_q, flags = self.backend.clamped_rate_data(clamp_margin)
        common = self.backend.common_counts_f64
        return (
            common[worker, partners_a],
            common[worker, partners_b],
            common[partners_a, partners_b],
            rates[worker, partners_a],
            rates[worker, partners_b],
            rates[partners_a, partners_b],
            two_q[worker, partners_a],
            two_q[worker, partners_b],
            two_q[partners_a, partners_b],
            flags[worker, partners_a],
            flags[worker, partners_b],
            flags[partners_a, partners_b],
            self.backend.triple_common_counts(
                worker, partners_a, partners_b
            ).astype(np.float64),
        )

    def triple_stage_inputs(
        self, worker: int, partners_a: np.ndarray, partners_b: np.ndarray
    ) -> TripleStageInputs:
        """Bulk counts for evaluating ``worker`` inside a batch of triples.

        Pair counts are sliced straight from the backend's precomputed
        matrices and the triple counts come from one vectorized
        bitset-popcount pass.  Requires a vectorized backend (any
        :class:`~repro.data.dense_backend.AgreementBackendBase`).  The
        observer is notified with the union of touched workers (a superset
        of the pairs the scalar loop would record — conservative, never
        stale).
        """
        if self.backend is None:
            raise DataValidationError(
                "triple_stage_inputs requires a vectorized backend; "
                "use AgreementStatistics.precompute"
            )
        if self.observer is not None:
            self.observer.note_bulk(
                worker, np.concatenate([partners_a, partners_b])
            )
        common = self.backend.common_counts
        agree = self.backend.agreement_counts
        return TripleStageInputs(
            common_wa=common[worker, partners_a].astype(np.float64),
            agree_wa=agree[worker, partners_a].astype(np.float64),
            common_wb=common[worker, partners_b].astype(np.float64),
            agree_wb=agree[worker, partners_b].astype(np.float64),
            common_ab=common[partners_a, partners_b].astype(np.float64),
            agree_ab=agree[partners_a, partners_b].astype(np.float64),
            triple_counts=self.backend.triple_common_counts(
                worker, partners_a, partners_b
            ).astype(np.float64),
        )


def compute_agreement_statistics(
    matrix: ResponseMatrix,
    backend: str | AgreementBackendBase | None = "auto",
) -> AgreementStatistics:
    """Build an :class:`AgreementStatistics` cache for ``matrix``.

    ``backend`` selects the computation strategy: ``"dense"`` (vectorized
    NumPy fast path), ``"sparse"`` (scipy.sparse CSR), ``"bitset"``
    (packed-rows low-memory mode), ``"dict"`` (original lazy set
    intersections), or ``"auto"`` (cost-based selection over grid size and
    observed fill; see
    :func:`~repro.data.dense_backend.auto_backend_choice`).
    """
    return AgreementStatistics(matrix=matrix, backend=resolve_backend(matrix, backend))
