"""Pairwise agreement statistics over a :class:`ResponseMatrix`.

The binary algorithms are driven entirely by three kinds of quantities:

* ``q_ij`` — the empirical agreement rate of workers ``i`` and ``j`` over the
  tasks they both attempted,
* ``c_ij`` — the number of tasks both attempted,
* ``c_ijk`` — the number of tasks all three of ``i``, ``j``, ``k`` attempted.

:class:`AgreementStatistics` caches these for a fixed set of workers so the
m-worker estimator (which revisits many overlapping triples) does not
recompute them from the raw responses each time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DataValidationError, InsufficientDataError
from repro.data.response_matrix import ResponseMatrix

__all__ = ["AgreementStatistics", "compute_agreement_statistics"]


def _pair_key(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _triple_key(a: int, b: int, c: int) -> tuple[int, int, int]:
    return tuple(sorted((a, b, c)))  # type: ignore[return-value]


@dataclass
class AgreementStatistics:
    """Cached agreement rates and co-attempt counts for one response matrix.

    The cache is lazy: a pair or triple is computed the first time it is
    requested and memoized afterwards.
    """

    matrix: ResponseMatrix
    _pair_cache: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict, repr=False
    )
    _triple_cache: dict[tuple[int, int, int], int] = field(
        default_factory=dict, repr=False
    )

    def _pair(self, a: int, b: int) -> tuple[int, int]:
        """(common task count, agreement count) for a pair, cached."""
        if a == b:
            raise DataValidationError("agreement requires two distinct workers")
        key = _pair_key(a, b)
        if key not in self._pair_cache:
            stats = self.matrix.pair_statistics(*key)
            self._pair_cache[key] = (stats.common_tasks, stats.agreements)
        return self._pair_cache[key]

    def common_count(self, a: int, b: int) -> int:
        """``c_ab`` — number of tasks attempted by both workers."""
        return self._pair(a, b)[0]

    def agreement_count(self, a: int, b: int) -> int:
        """Number of common tasks on which the two workers agree."""
        return self._pair(a, b)[1]

    def agreement_rate(self, a: int, b: int) -> float:
        """``q_ab`` — empirical agreement rate over common tasks."""
        common, agreements = self._pair(a, b)
        if common == 0:
            raise InsufficientDataError(
                f"workers {a} and {b} share no common task; "
                "agreement rate is undefined"
            )
        return agreements / common

    def has_overlap(self, a: int, b: int, minimum: int = 1) -> bool:
        """True if the pair shares at least ``minimum`` common tasks."""
        return self.common_count(a, b) >= minimum

    def triple_common_count(self, a: int, b: int, c: int) -> int:
        """``c_abc`` — number of tasks attempted by all three workers."""
        if len({a, b, c}) != 3:
            raise DataValidationError("triple counts require three distinct workers")
        key = _triple_key(a, b, c)
        if key not in self._triple_cache:
            self._triple_cache[key] = self.matrix.n_common_tasks(*key)
        return self._triple_cache[key]


def compute_agreement_statistics(matrix: ResponseMatrix) -> AgreementStatistics:
    """Build an :class:`AgreementStatistics` cache for ``matrix``."""
    return AgreementStatistics(matrix=matrix)
