"""Core contribution of the paper: confidence intervals on worker quality.

Public entry points
-------------------

* :func:`repro.core.estimator.evaluate_workers` — binary tasks, any number of
  workers, non-regular data (Algorithms A1/A2).
* :func:`repro.core.estimator.evaluate_kary_workers` — k-ary tasks, 3 workers
  at a time (Algorithm A3).
* :class:`repro.core.estimator.WorkerEvaluator` — configurable façade over
  both.

The lower-level modules expose the individual pieces (Theorem 1 delta-method
engine, per-lemma covariance formulas, triple pairing, weight optimization,
the k-ary spectral point estimator) for users who want to compose them
differently.
"""

from repro.core.delta_method import DeltaMethodModel, confidence_interval_from_moments
from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.core.three_worker import (
    ThreeWorkerResult,
    error_rate_from_agreements,
    error_rate_gradient,
    evaluate_three_workers,
)
from repro.core.pairing import form_triples
from repro.core.weights import optimal_weights, uniform_weights
from repro.core.m_worker import MWorkerEstimator, evaluate_worker, evaluate_all_workers
from repro.core.kary import KaryEstimator, prob_estimate, evaluate_kary_triple
from repro.core.spammer_filter import SpammerFilterResult, filter_spammers
from repro.core.task_inference import (
    infer_binary_labels,
    infer_kary_labels,
    label_accuracy,
)
from repro.core.incremental import IncrementalEvaluator
from repro.core.gold_augmented import GoldAugmentedEvaluator, combine_estimates
from repro.core.estimator import WorkerEvaluator, evaluate_workers, evaluate_kary_workers

__all__ = [
    "DeltaMethodModel",
    "confidence_interval_from_moments",
    "AgreementStatistics",
    "compute_agreement_statistics",
    "ThreeWorkerResult",
    "error_rate_from_agreements",
    "error_rate_gradient",
    "evaluate_three_workers",
    "form_triples",
    "optimal_weights",
    "uniform_weights",
    "MWorkerEstimator",
    "evaluate_worker",
    "evaluate_all_workers",
    "KaryEstimator",
    "prob_estimate",
    "evaluate_kary_triple",
    "SpammerFilterResult",
    "filter_spammers",
    "infer_binary_labels",
    "infer_kary_labels",
    "label_accuracy",
    "IncrementalEvaluator",
    "GoldAugmentedEvaluator",
    "combine_estimates",
    "WorkerEvaluator",
    "evaluate_workers",
    "evaluate_kary_workers",
]
