"""repro — reproduction of "Comprehensive and Reliable Crowd Assessment
Algorithms" (Joglekar, Garcia-Molina, Parameswaran; ICDE 2015).

The library computes **confidence intervals on crowd-worker quality without
gold-standard answers**, under the paper's general conditions: any number of
workers, non-regular data (workers answer only some tasks), k-ary tasks, and
per-worker response bias.

Quickstart
----------

>>> import numpy as np
>>> from repro import evaluate_workers
>>> from repro.simulation import simulate_binary_responses
>>> rng = np.random.default_rng(0)
>>> matrix, true_error_rates = simulate_binary_responses(
...     n_workers=7, n_tasks=200, rng=rng, density=0.8)
>>> estimates = evaluate_workers(matrix, confidence=0.9)
>>> interval = estimates[0].interval           # worker 0's error-rate interval
>>> bool(interval.lower <= interval.upper)
True
"""

from repro.types import (
    ConfidenceInterval,
    EstimateStatus,
    KaryWorkerEstimate,
    ResponseProbabilityEstimate,
    TripleEstimate,
    WorkerErrorEstimate,
)
from repro.exceptions import (
    ConfigurationError,
    ConvergenceError,
    CrowdAssessmentError,
    DataValidationError,
    DegenerateEstimateError,
    InsufficientDataError,
)
from repro.data.response_matrix import UNANSWERED, ResponseMatrix
from repro.core.estimator import (
    WorkerEvaluator,
    evaluate_kary_workers,
    evaluate_workers,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # value types
    "ConfidenceInterval",
    "EstimateStatus",
    "WorkerErrorEstimate",
    "TripleEstimate",
    "KaryWorkerEstimate",
    "ResponseProbabilityEstimate",
    # exceptions
    "CrowdAssessmentError",
    "DataValidationError",
    "InsufficientDataError",
    "DegenerateEstimateError",
    "ConvergenceError",
    "ConfigurationError",
    # data
    "ResponseMatrix",
    "UNANSWERED",
    # estimators
    "WorkerEvaluator",
    "evaluate_workers",
    "evaluate_kary_workers",
]
