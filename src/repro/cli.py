"""Command-line interface.

Five subcommands cover the common workflows without writing Python:

* ``repro-crowd evaluate`` — compute confidence intervals for every worker in
  a response CSV (``worker,task,label`` rows; optional gold CSV), printing a
  table and optionally inferring task labels.
* ``repro-crowd ingest`` — stream newline-JSON response events (file or
  stdin, optionally ``--follow``-tailed) through the async ingestion
  subsystem (:mod:`repro.serve`) and print the same estimate table; the
  streamed estimates are bit-identical to a batch ``evaluate`` run over the
  same responses (the CI ``stream-smoke`` gate diffs the two outputs).
* ``repro-crowd serve`` — run the NDJSON TCP ingestion server: event lines
  in, query lines (``{"query": "evaluate_all"}`` etc.) answered from the
  last applied batch boundary.
* ``repro-crowd datasets`` — list the bundled dataset stand-ins.
* ``repro-crowd figure`` — regenerate one of the paper's figures and print
  the series (the same output the benchmark suite produces).
* ``repro-crowd gauntlet`` — run the adversarial scenario gauntlet: a
  coverage/calibration cell for every (scenario family x backend x
  estimator path) the capability matrix licenses, plus a gap-detection
  pass that flags untested cells (``--fail-on-gaps`` turns flags into a
  non-zero exit for CI).

Run ``python -m repro.cli --help`` (or install the ``repro-crowd`` entry
point) for details.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from collections.abc import Sequence

from repro.core.estimator import WorkerEvaluator
from repro.core.task_inference import infer_binary_labels, label_accuracy
from repro.data.dense_backend import BACKEND_CHOICES
from repro.data.loaders import load_response_matrix_csv
from repro.data.registry import DATASET_REGISTRY, load_dataset
from repro.evaluation import experiments as experiment_module
from repro.evaluation.reporting import format_experiment, format_table
from repro.exceptions import CrowdAssessmentError
from repro.types import EstimateStatus

__all__ = ["main", "build_parser"]


def _shard_spec(value: str) -> int | str:
    """argparse type for ``--shards``: int, 'auto', 'thread:N', 'process:N'.

    Malformed specs (0, negatives, garbage) abort parsing with a clear
    usage error instead of silently evaluating serial.
    """
    from repro.core.parallel import parse_shard_spec
    from repro.exceptions import ConfigurationError

    try:
        spec: int | str = int(value)
    except ValueError:
        spec = value
    try:
        parse_shard_spec(spec)
    except ConfigurationError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return spec


def _writer_spec(value: str) -> int | str:
    """argparse type for ``--writers``: a positive integer or 'auto'."""
    if value == "auto":
        return "auto"
    try:
        writers = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer or 'auto', got {value!r}"
        ) from None
    if writers < 1:
        raise argparse.ArgumentTypeError(
            f"writers must be at least 1, got {writers}"
        )
    return writers

#: figure name -> experiment function (all take only keyword arguments we pass).
FIGURE_FUNCTIONS = {
    "fig1": experiment_module.figure1_old_vs_new,
    "fig2a": experiment_module.figure2a_accuracy,
    "fig2b": experiment_module.figure2b_density,
    "fig2c": experiment_module.figure2c_weight_optimization,
    "fig3": experiment_module.figure3_real_data_accuracy,
    "fig4": experiment_module.figure4_spammer_filtered_accuracy,
    "fig5a": experiment_module.figure5a_kary_accuracy,
    "fig5b": experiment_module.figure5b_kary_density,
    "fig5c": experiment_module.figure5c_kary_real_data,
}


def _add_stream_arguments(subparser: argparse.ArgumentParser) -> None:
    """``--writers`` / ``--durable`` / ``--snapshot-every`` (ingest + serve)."""
    subparser.add_argument(
        "--writers",
        type=_writer_spec,
        default=1,
        metavar="N",
        help="ingest partition count: N>1 splits ingestion into N "
        "consistent-hash worker partitions, each with its own queue, "
        "micro-batcher and (with --durable) WAL segment whose fsyncs "
        "overlap; 'auto' picks one per CPU (capped); results are "
        "bit-identical for any count (default 1)",
    )
    subparser.add_argument(
        "--durable",
        metavar="DIR",
        default=None,
        help="persist the stream into DIR: each micro-batch is written to a "
        "fsynced write-ahead log before it is applied, and the session "
        "resumes from DIR in O(delta) after a crash or restart (the same "
        "command over an existing DIR resumes it); estimates after a "
        "resume are bit-identical to an uninterrupted run",
    )
    subparser.add_argument(
        "--snapshot-every",
        type=int,
        default=None,
        metavar="N",
        help="with --durable: checkpoint the full evaluator state every N "
        "applied micro-batches (atomic temp-file + rename snapshots), "
        "bounding the WAL replay a resume pays; default: no snapshots "
        "(pure WAL replay)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-crowd",
        description="Confidence intervals on crowd-worker quality "
        "(reproduction of Joglekar et al., ICDE 2015).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate workers from a response CSV"
    )
    evaluate.add_argument(
        "responses",
        nargs="?",
        default=None,
        help="CSV with worker,task,label columns (omit when using --dataset)",
    )
    evaluate.add_argument("--gold", help="optional CSV with task,label gold answers")
    evaluate.add_argument(
        "--confidence", type=float, default=0.9, help="confidence level (default 0.9)"
    )
    evaluate.add_argument(
        "--remove-spammers",
        action="store_true",
        help="prune near-spammers before estimating (Section III-E2)",
    )
    evaluate.add_argument(
        "--infer-labels",
        action="store_true",
        help="also infer task labels using the estimated error rates "
        "(binary data only)",
    )
    evaluate.add_argument(
        "--dataset",
        choices=sorted(DATASET_REGISTRY),
        help="evaluate a bundled dataset stand-in instead of a CSV "
        "(the positional argument is ignored)",
    )
    evaluate.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="agreement-statistics backend: 'dense' (vectorized NumPy), "
        "'sparse' (scipy.sparse, for large low-fill matrices), 'bitset' "
        "(packed rows, low-memory), 'dict' (original Python loops) or "
        "'auto' (default: cost-based selection; intervals are identical "
        "whichever backend computes them)",
    )
    evaluate.add_argument(
        "--shards",
        type=_shard_spec,
        default=1,
        metavar="SPEC",
        help="execution spec for batch evaluation: an integer shard count "
        "(default 1 = in-process; N>1 shards across N processes over "
        "shared-memory statistics), 'auto' (cost-based serial/thread/"
        "process choice), 'thread:N' or 'process:N'; results are identical "
        "on every tier, and tiny matrices or the dict backend fall back to "
        "serial",
    )
    evaluate.add_argument(
        "--no-batch-triples",
        action="store_true",
        help="disable the vectorized per-triple stage (results are "
        "identical; the knob pins the slower path for debugging/benchmarks)",
    )
    evaluate.add_argument(
        "--no-batch-lemma4",
        action="store_true",
        help="disable the cross-worker batched Lemma-4/5 aggregation "
        "(results are identical; pins the per-worker aggregation path)",
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="stream NDJSON response events through the async ingestion "
        "subsystem and print the estimate table",
    )
    ingest.add_argument(
        "events",
        nargs="?",
        default="-",
        help="NDJSON file of {\"worker\": w, \"task\": t, \"label\": l} "
        "events (or [w,t,l] arrays); '-' (default) reads stdin",
    )
    ingest.add_argument(
        "--confidence", type=float, default=0.9, help="confidence level (default 0.9)"
    )
    ingest.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="auto",
        help="agreement-statistics backend (results identical; see evaluate)",
    )
    ingest.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="micro-batch coalescing cap of the response queue (default 256; "
        "results are identical for any batching)",
    )
    ingest.add_argument(
        "--queue-size",
        type=int,
        default=4096,
        help="bound of the response queue (producer backpressure, default 4096)",
    )
    ingest.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the source for appended events (tail -f semantics) "
        "until --idle-timeout seconds pass without data",
    )
    ingest.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="with --follow: stop after this many idle seconds (default: never)",
    )
    ingest.add_argument(
        "--stats",
        action="store_true",
        help="also print per-stream ingestion stats (batches, invalidations)",
    )
    ingest.add_argument(
        "--shards",
        type=_shard_spec,
        default=1,
        metavar="SPEC",
        help="execution spec forwarded to the session's estimator (same "
        "grammar as evaluate --shards; incremental recomputes honour it on "
        "the vectorized backends — dependency footprints ship back per "
        "shard, so evaluation under a live stream scales)",
    )
    _add_stream_arguments(ingest)

    serve = subparsers.add_parser(
        "serve", help="run the NDJSON TCP ingestion server"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral, printed)"
    )
    serve.add_argument(
        "--confidence", type=float, default=0.9, help="confidence level (default 0.9)"
    )
    serve.add_argument(
        "--backend", choices=list(BACKEND_CHOICES), default="auto",
        help="agreement-statistics backend (results identical)",
    )
    serve.add_argument(
        "--batch-size", type=int, default=256,
        help="micro-batch coalescing cap (default 256)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=4096,
        help="response queue bound (default 4096)",
    )
    serve.add_argument(
        "--shards",
        type=_shard_spec,
        default=1,
        metavar="SPEC",
        help="execution spec forwarded to the session's estimator (same "
        "grammar as evaluate --shards)",
    )
    _add_stream_arguments(serve)

    datasets = subparsers.add_parser(
        "datasets", help="list the bundled dataset stand-ins"
    )
    datasets.add_argument(
        "--verbose", action="store_true", help="include dimensions and figures"
    )

    figure = subparsers.add_parser(
        "figure", help="regenerate one figure of the paper"
    )
    figure.add_argument("name", choices=sorted(FIGURE_FUNCTIONS), help="figure id")
    figure.add_argument(
        "--repetitions",
        type=int,
        default=None,
        help="override the repetition count (smaller = faster, noisier)",
    )

    gauntlet = subparsers.add_parser(
        "gauntlet",
        help="run the adversarial scenario gauntlet over the full "
        "(scenario x backend x estimator-path) grid",
    )
    gauntlet.add_argument(
        "--repetitions",
        type=int,
        default=10,
        help="repetitions per grid cell (default 10)",
    )
    gauntlet.add_argument(
        "--confidence", type=float, default=0.9, help="confidence level (default 0.9)"
    )
    gauntlet.add_argument(
        "--seed",
        type=int,
        default=20150413,
        help="master seed; every cell derives an independent stream, so "
        "partial renders and cell order never change any number",
    )
    gauntlet.add_argument(
        "--tasks",
        type=int,
        default=None,
        help="override every scenario's task count (smaller = faster smoke)",
    )
    gauntlet.add_argument(
        "--families",
        nargs="+",
        default=None,
        metavar="FAMILY",
        help="restrict to these scenario families (default: full registry; "
        "gap detection will flag the dropped cells)",
    )
    gauntlet.add_argument(
        "--backends",
        nargs="+",
        default=None,
        metavar="BACKEND",
        help="restrict to these backends (default: full capability matrix)",
    )
    gauntlet.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the full JSON report to FILE ('-' for stdout "
        "instead of the table)",
    )
    gauntlet.add_argument(
        "--fail-on-gaps",
        action="store_true",
        help="exit non-zero when gap detection finds untested cells "
        "(the CI smoke leg's assertion)",
    )
    return parser


def _command_evaluate(args: argparse.Namespace) -> int:
    if args.dataset:
        matrix = load_dataset(args.dataset)
    elif args.responses is None:
        print("error: provide a response CSV or --dataset", file=sys.stderr)
        return 2
    else:
        matrix = load_response_matrix_csv(args.responses, gold_path=args.gold)
    evaluator = WorkerEvaluator(
        confidence=args.confidence,
        remove_spammers=args.remove_spammers,
        backend=args.backend,
        batch_triples=not args.no_batch_triples,
        batch_lemma4=not args.no_batch_lemma4,
        shards=args.shards,
    )
    if not matrix.is_binary:
        print(
            f"data has arity {matrix.arity}; evaluating the first triple of "
            "workers with the k-ary estimator"
        )
        estimates = evaluator.evaluate_kary(matrix, workers=(0, 1, 2))
        for worker, estimate in estimates.items():
            print(f"\nworker {worker} (response-probability matrix, point estimates):")
            for row in estimate.point_matrix():
                print("  " + "  ".join(f"{value:.3f}" for value in row))
        return 0

    estimates = evaluator.evaluate_binary(matrix)
    _print_estimate_table(estimates)

    if args.infer_labels:
        usable = {
            worker: estimate
            for worker, estimate in estimates.items()
            if estimate.status is not EstimateStatus.DEGENERATE
        }
        labels = infer_binary_labels(matrix, usable)
        print(f"\ninferred labels for {len(labels)} tasks")
        if matrix.has_gold:
            print(f"accuracy against gold labels: {label_accuracy(matrix, labels):.3f}")
    return 0


def _print_estimate_table(estimates) -> None:
    """The worker-interval table, shared by ``evaluate`` and ``ingest``.

    Byte-identical output between the two commands is what the CI
    stream-smoke gate diffs, so any format change must stay shared.
    """
    header = ["worker", "tasks", "lower", "point", "upper", "status"]
    rows = []
    for worker in sorted(estimates):
        estimate = estimates[worker]
        rows.append(
            [
                str(worker),
                str(estimate.n_tasks),
                f"{estimate.interval.lower:.3f}",
                f"{estimate.interval.mean:.3f}",
                f"{estimate.interval.upper:.3f}",
                estimate.status.value,
            ]
        )
    print(format_table(header, rows))


def config_from_args(args: argparse.Namespace):
    """Map the stream CLI flags 1:1 onto a ``SessionConfig``.

    The single translation point for ingest and serve: every flag
    corresponds to exactly one field (``--batch-size`` -> ``max_batch``,
    ``--queue-size`` -> ``maxsize``, the rest share their names), so new
    session knobs are added here once instead of per command.
    """
    from repro.serve import SessionConfig

    return SessionConfig(
        confidence=args.confidence,
        backend=args.backend,
        max_batch=args.batch_size,
        maxsize=args.queue_size,
        shards=args.shards,
        writers=getattr(args, "writers", 1),
        durable=args.durable,
        snapshot_every=args.snapshot_every,
    )


def _make_session(args: argparse.Namespace):
    """Build the session ingest and serve share, via the one front door.

    With ``--durable`` the session resumes the directory when it already
    holds state and starts fresh otherwise; ``--writers N`` (N>1 or
    'auto') gets a multi-writer session.  Without ``--durable``, plain
    in-memory.
    """
    from repro.serve import open_session

    return open_session(config_from_args(args))


def _validate_stream_args(args: argparse.Namespace) -> str | None:
    if args.batch_size < 1 or args.queue_size < 1:
        return "--batch-size and --queue-size must be positive"
    if args.snapshot_every is not None:
        if args.durable is None:
            return "--snapshot-every requires --durable"
        if args.snapshot_every < 1:
            return "--snapshot-every must be positive"
    return None


def _command_ingest(args: argparse.Namespace) -> int:
    from repro.serve.sources import feed_session, iter_ndjson

    problem = _validate_stream_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2

    async def run() -> int:
        # A path is handed to iter_ndjson directly: the iterator owns the
        # handle and closes it on every exit path (including mid-stream
        # parse errors), which the old open-here/close-there split leaked.
        source = sys.stdin if args.events == "-" else args.events
        async with _make_session(args) as session:
            submitted = await feed_session(
                session,
                iter_ndjson(
                    source,
                    follow=args.follow,
                    idle_timeout=args.idle_timeout,
                ),
            )
            await session.flush()
            estimates = await session.evaluate_all()
            batches = session.applied_batches
        _print_estimate_table(estimates)
        if args.stats:
            invalidations = sum(b.stats.backend_invalidations for b in batches)
            recomputes = sum(b.stats.cached_invalidated for b in batches)
            print(
                f"\ningested {submitted} events in {len(batches)} micro-batches "
                f"(backend invalidations: {invalidations}, cached estimates "
                f"invalidated: {recomputes})"
            )
        return 0

    return asyncio.run(run())


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import serve_ndjson

    problem = _validate_stream_args(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2

    async def run() -> int:
        async with _make_session(args) as session:
            await serve_ndjson(
                session,
                host=args.host,
                port=args.port,
                ready=lambda host, port: print(
                    f"listening on {host}:{port}", flush=True
                ),
            )
        return 0

    return asyncio.run(run())


def _command_datasets(args: argparse.Namespace) -> int:
    if not args.verbose:
        for name in sorted(DATASET_REGISTRY):
            print(name)
        return 0
    header = ["name", "arity", "figures", "description"]
    rows = [
        [spec.name, str(spec.arity), ",".join(spec.used_in), spec.description]
        for spec in DATASET_REGISTRY.values()
    ]
    print(format_table(header, rows))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    function = FIGURE_FUNCTIONS[args.name]
    kwargs = {}
    if args.repetitions is not None:
        # Every simulated figure accepts n_repetitions; the real-data figures
        # (fig3/fig4/fig5c) are deterministic per dataset and ignore it.
        if "n_repetitions" in function.__code__.co_varnames:
            kwargs["n_repetitions"] = args.repetitions
    result = function(**kwargs)
    print(format_experiment(result))
    return 0


def _command_gauntlet(args: argparse.Namespace) -> int:
    import json

    from repro.evaluation.gauntlet import GauntletResults, format_gauntlet_report
    from repro.simulation.gauntlet import GAUNTLET_FAMILIES

    if args.repetitions < 1:
        print("error: --repetitions must be positive", file=sys.stderr)
        return 2
    overrides = None
    if args.tasks is not None:
        if args.tasks < 1:
            print("error: --tasks must be positive", file=sys.stderr)
            return 2
        overrides = {name: {"n_tasks": args.tasks} for name in GAUNTLET_FAMILIES}
    results = GauntletResults(
        families=args.families,
        backends=args.backends,
        n_repetitions=args.repetitions,
        confidence=args.confidence,
        seed=args.seed,
        scenario_overrides=overrides,
    )
    if args.json == "-":
        json.dump(results.to_report(), sys.stdout, indent=2)
        print()
    else:
        print(format_gauntlet_report(results))
        if args.json is not None:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(results.to_report(), handle, indent=2)
            print(f"\nJSON report written to {args.json}")
    if args.fail_on_gaps and results.gaps:
        print(
            f"error: {len(results.gaps)} untested gauntlet cell(s)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "evaluate":
            return _command_evaluate(args)
        if args.command == "ingest":
            return _command_ingest(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "datasets":
            return _command_datasets(args)
        if args.command == "figure":
            return _command_figure(args)
        if args.command == "gauntlet":
            return _command_gauntlet(args)
    except CrowdAssessmentError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess tests
    sys.exit(main())
