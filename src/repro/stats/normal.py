"""Normal-distribution primitives.

Theorem 1 of the paper turns an estimator's mean and standard deviation into
a c-confidence interval via the normal quantile ``z_t`` with
``t = (1 + c) / 2``.  These helpers wrap the error-function implementations
behind a small, explicit API and add validation so bad confidence levels
fail loudly.

scipy's ``erf``/``erfinv`` are used when importable (the reference
implementation; scipy is the optional ``repro[sparse]`` extra).  Without
scipy, ``erf`` comes from the C library via :func:`math.erf` and ``erfinv``
from a Winitzki initial guess polished to double precision by Newton steps
on ``math.erf`` — accurate to the last ulp or two.  Within one process all
backends share whichever implementation is active, so the cross-backend
bit-identity contract is unaffected by the choice.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = ["normal_cdf", "normal_pdf", "normal_quantile", "two_sided_z"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)
_SQRT_PI_OVER_2 = math.sqrt(math.pi) / 2.0


def _erfinv_fallback(y: float) -> float:
    """Inverse error function without scipy (see the module docstring)."""
    if y != y or abs(y) > 1.0:
        return math.nan
    if abs(y) == 1.0:
        return math.copysign(math.inf, y)
    if y == 0.0:
        return 0.0
    magnitude = abs(y)
    # Winitzki's approximation as the initial guess (~3 decimal digits).
    a = 0.147
    log_term = math.log(1.0 - y * y)
    half = 2.0 / (math.pi * a) + log_term / 2.0
    x = math.sqrt(math.sqrt(half * half - log_term / a) - half)
    # Newton-Raphson, quadratic convergence to double precision in 2-3
    # steps.  In the tail the residual erf(x) - y cancels catastrophically
    # (both operands are ~1), so the iteration solves erfc(x) = 1 - y
    # there instead — erfc carries the tail at full relative precision, and
    # 1 - magnitude is an exact subtraction for magnitude >= 0.5.
    tail = magnitude >= 0.9
    complement = 1.0 - magnitude
    for _ in range(8):
        if x * x > 700.0:  # pragma: no cover - beyond double-resolvable tails
            break
        scale = _SQRT_PI_OVER_2 * math.exp(x * x)
        if tail:
            refined = x + (math.erfc(x) - complement) * scale
        else:
            refined = x - (math.erf(x) - magnitude) * scale
        if refined == x or not math.isfinite(refined):
            break
        x = refined
    return math.copysign(x, y)


try:
    from scipy.special import erf as _erf, erfinv as _erfinv
except ImportError:  # pragma: no cover - exercised on the scipy-less CI leg
    _erf = math.erf
    _erfinv = _erfinv_fallback


def normal_pdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Density of the normal distribution at ``x``."""
    if std <= 0.0:
        raise ConfigurationError(f"standard deviation must be positive, got {std}")
    z = (x - mean) / std
    return _INV_SQRT_2PI * math.exp(-0.5 * z * z) / std


def normal_cdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Cumulative distribution function of the normal distribution."""
    if std <= 0.0:
        raise ConfigurationError(f"standard deviation must be positive, got {std}")
    return 0.5 * (1.0 + _erf((x - mean) / (std * _SQRT2)))


def normal_quantile(p: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Inverse CDF (quantile function) of the normal distribution.

    Parameters
    ----------
    p:
        Probability level in the open interval ``(0, 1)``.
    """
    if not (0.0 < p < 1.0):
        raise ConfigurationError(
            f"quantile level must lie strictly between 0 and 1, got {p}"
        )
    if std <= 0.0:
        raise ConfigurationError(f"standard deviation must be positive, got {std}")
    return mean + std * _SQRT2 * _erfinv(2.0 * p - 1.0)


def two_sided_z(confidence: float) -> float:
    """The multiplier ``z_t`` for a two-sided c-confidence interval.

    Following Theorem 1 of the paper, for a confidence level ``c`` the
    interval is ``mean +/- z_t * deviation`` with ``t = (1 + c) / 2`` (the
    paper writes ``t = (1 - c) / 2`` for the lower tail; both describe the
    same symmetric interval).
    """
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError(
            f"confidence must lie strictly between 0 and 1, got {confidence}"
        )
    return normal_quantile((1.0 + confidence) / 2.0)
