"""Normal-distribution primitives.

Theorem 1 of the paper turns an estimator's mean and standard deviation into
a c-confidence interval via the normal quantile ``z_t`` with
``t = (1 + c) / 2``.  These helpers wrap the scipy implementations behind a
small, explicit API and add validation so bad confidence levels fail loudly.
"""

from __future__ import annotations

import math

from scipy import special

from repro.exceptions import ConfigurationError

__all__ = ["normal_cdf", "normal_pdf", "normal_quantile", "two_sided_z"]

_SQRT2 = math.sqrt(2.0)
_INV_SQRT_2PI = 1.0 / math.sqrt(2.0 * math.pi)


def normal_pdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Density of the normal distribution at ``x``."""
    if std <= 0.0:
        raise ConfigurationError(f"standard deviation must be positive, got {std}")
    z = (x - mean) / std
    return _INV_SQRT_2PI * math.exp(-0.5 * z * z) / std


def normal_cdf(x: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Cumulative distribution function of the normal distribution."""
    if std <= 0.0:
        raise ConfigurationError(f"standard deviation must be positive, got {std}")
    return 0.5 * (1.0 + special.erf((x - mean) / (std * _SQRT2)))


def normal_quantile(p: float, mean: float = 0.0, std: float = 1.0) -> float:
    """Inverse CDF (quantile function) of the normal distribution.

    Parameters
    ----------
    p:
        Probability level in the open interval ``(0, 1)``.
    """
    if not (0.0 < p < 1.0):
        raise ConfigurationError(
            f"quantile level must lie strictly between 0 and 1, got {p}"
        )
    if std <= 0.0:
        raise ConfigurationError(f"standard deviation must be positive, got {std}")
    return mean + std * _SQRT2 * special.erfinv(2.0 * p - 1.0)


def two_sided_z(confidence: float) -> float:
    """The multiplier ``z_t`` for a two-sided c-confidence interval.

    Following Theorem 1 of the paper, for a confidence level ``c`` the
    interval is ``mean +/- z_t * deviation`` with ``t = (1 + c) / 2`` (the
    paper writes ``t = (1 - c) / 2`` for the lower tail; both describe the
    same symmetric interval).
    """
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError(
            f"confidence must lie strictly between 0 and 1, got {confidence}"
        )
    return normal_quantile((1.0 + confidence) / 2.0)
