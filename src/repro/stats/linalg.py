"""Linear-algebra helpers for the k-ary spectral estimator and Lemma 5.

Algorithm A3 recovers ``S^{1/2} P_1`` from an eigendecomposition of
``R_12 R_32^{-1} R_31`` (Lemma 7) and then identifies the unknown unitary
rotation via the conditional response-frequency matrices (Lemma 8).  The raw
numpy eigendecomposition returns complex values in arbitrary order, so the
helpers here normalize that output and perform the row re-ordering step the
paper describes (making the diagonal the row maximum).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DegenerateEstimateError

__all__ = [
    "safe_inverse",
    "eigendecompose",
    "matrix_inverse_sqrt",
    "align_rows_to_diagonal",
    "optimal_min_variance_weights",
    "batched_optimal_min_variance_weights",
    "quadratic_form_3",
    "batched_quadratic_form_3",
]


def quadratic_form_3(gradient: np.ndarray, covariance: np.ndarray) -> float:
    """``g^T C g`` for a 3-vector, with a pinned summation order.

    The nine terms ``(g_i * g_j) * C_ij`` are accumulated row-major.  The
    order is part of the contract: :func:`batched_quadratic_form_3` replays
    the identical sequence of IEEE operations elementwise over a stack of
    systems, which is what lets the batched per-triple evaluation produce
    bit-identical deviations to the scalar 3-worker procedure.  (A BLAS
    ``g @ C @ g`` may associate the sum differently and drift in the last
    ulp.)
    """
    total = 0.0
    for i in range(3):
        g_i = float(gradient[i])
        for j in range(3):
            total += (g_i * float(gradient[j])) * float(covariance[i, j])
    return total


def batched_quadratic_form_3(
    gradients: np.ndarray, covariances: np.ndarray
) -> np.ndarray:
    """``g_t^T C_t g_t`` for a stack of 3-vector systems, one value per row.

    ``gradients`` has shape ``(l, 3)`` and ``covariances`` ``(l, 3, 3)``.
    Accumulates the nine products row-major exactly like
    :func:`quadratic_form_3`, so each output element is bit-identical to the
    scalar helper applied to the corresponding slice.
    """
    gradients = np.asarray(gradients, dtype=float)
    covariances = np.asarray(covariances, dtype=float)
    total = np.zeros(gradients.shape[0])
    for i in range(3):
        g_i = gradients[:, i]
        for j in range(3):
            total = total + (g_i * gradients[:, j]) * covariances[:, i, j]
    return total


def safe_inverse(matrix: np.ndarray, ridge: float = 1e-10) -> np.ndarray:
    """Invert ``matrix``, adding a small ridge if it is (near-)singular.

    The k-ary method inverts response-frequency matrices that are estimated
    from finite samples; occasionally a row is all-but-zero (the WSD dataset
    pathology discussed in Section IV-C1).  A ridge keeps the computation
    alive; truly degenerate inputs still raise.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DegenerateEstimateError(
            f"cannot invert non-square matrix of shape {matrix.shape}"
        )
    try:
        return np.linalg.inv(matrix)
    except np.linalg.LinAlgError:
        pass
    ridged = matrix + ridge * np.eye(matrix.shape[0])
    try:
        return np.linalg.inv(ridged)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - extremely rare
        raise DegenerateEstimateError(
            "matrix is singular even after ridge regularization"
        ) from exc


def eigendecompose(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition ``matrix = E diag(D) E^{-1}`` with real outputs.

    The product ``R_12 R_32^{-1} R_31`` equals ``(S^{1/2} P_1)^T (S^{1/2} P_1)``
    in expectation (Lemma 7) and therefore has real non-negative eigenvalues;
    finite-sample noise can introduce tiny imaginary parts and small negative
    eigenvalues, which are stripped/clipped here.

    Returns
    -------
    (eigenvalues, eigenvectors):
        ``eigenvalues`` is a 1-D array, ``eigenvectors`` has the eigenvectors
        as columns, both real-valued.
    """
    matrix = np.asarray(matrix, dtype=float)
    eigenvalues, eigenvectors = np.linalg.eig(matrix)
    if np.iscomplexobj(eigenvalues):
        eigenvalues = np.real(eigenvalues)
        eigenvectors = np.real(eigenvectors)
    eigenvalues = np.clip(eigenvalues, 0.0, None)
    return eigenvalues, eigenvectors


def matrix_inverse_sqrt(matrix: np.ndarray, ridge: float = 1e-10) -> np.ndarray:
    """Inverse square root of a symmetric PSD matrix."""
    matrix = np.asarray(matrix, dtype=float)
    sym = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    eigenvalues = np.clip(eigenvalues, ridge, None)
    return (eigenvectors * (1.0 / np.sqrt(eigenvalues))) @ eigenvectors.T


def align_rows_to_diagonal(matrix: np.ndarray) -> np.ndarray:
    """Permute rows so each row's largest entry sits on the diagonal.

    This is Step 6.d of Algorithm A3: the spectral decomposition recovers the
    rows of ``S^{1/2} P_1`` only up to permutation, and the paper resolves the
    ambiguity using the assumption that a worker's most likely response is
    the correct one (``P[j, j] > P[j, j']``).

    A greedy assignment is used: rows are assigned to their argmax column in
    descending order of that maximum, falling back to unclaimed columns when
    two rows compete for the same position.
    """
    matrix = np.asarray(matrix, dtype=float)
    k = matrix.shape[0]
    if matrix.shape != (k, k):
        raise DegenerateEstimateError(
            f"row alignment expects a square matrix, got shape {matrix.shape}"
        )
    order = sorted(range(k), key=lambda r: -float(np.max(matrix[r])))
    placement: dict[int, int] = {}
    taken: set[int] = set()
    for row in order:
        preferences = np.argsort(-matrix[row])
        target = next((int(c) for c in preferences if int(c) not in taken), None)
        if target is None:  # pragma: no cover - cannot happen for square input
            raise DegenerateEstimateError("failed to assign rows to diagonal")
        placement[target] = row
        taken.add(target)
    aligned = np.empty_like(matrix)
    for target, row in placement.items():
        aligned[target] = matrix[row]
    return aligned


def optimal_min_variance_weights(covariance: np.ndarray) -> np.ndarray:
    """Lemma 5: weights summing to 1 that minimize ``A^T C A``.

    Given the covariance matrix ``C`` of the per-triple estimates, the
    variance-minimizing convex combination has weights
    ``A = C^{-1} 1 / || C^{-1} 1 ||_1``.
    """
    covariance = np.asarray(covariance, dtype=float)
    if covariance.ndim != 2 or covariance.shape[0] != covariance.shape[1]:
        raise DegenerateEstimateError(
            f"covariance must be square, got shape {covariance.shape}"
        )
    n = covariance.shape[0]
    if n == 1:
        return np.array([1.0])
    ones = np.ones(n)
    # C^{-1} 1 via a direct solve (one LU pass); the explicit inverse is the
    # fallback so near-singular matrices still get the ridge treatment.
    try:
        b = np.linalg.solve(covariance, ones)
    except np.linalg.LinAlgError:
        b = safe_inverse(covariance) @ ones
    if not np.all(np.isfinite(b)):
        b = safe_inverse(covariance) @ ones
    return _normalized_min_variance_weights(b, n)


def _normalized_min_variance_weights(b: np.ndarray, n: int) -> np.ndarray:
    """The normalization tail of :func:`optimal_min_variance_weights`.

    Shared by the scalar and batched forms so both replay the identical
    sequence of operations; ``b`` is (a candidate for) ``C^{-1} 1``.
    """
    norm = float(np.sum(np.abs(b)))
    if norm <= 0.0 or not np.isfinite(norm):
        # Fall back to uniform weights when the covariance is too ill-behaved
        # to invert meaningfully; uniform weights remain valid (Section III-D3).
        return np.full(n, 1.0 / n)
    weights = b / float(np.sum(b)) if abs(float(np.sum(b))) > 1e-12 else b / norm
    if not np.all(np.isfinite(weights)):
        return np.full(n, 1.0 / n)
    return weights


def batched_optimal_min_variance_weights(stack: np.ndarray) -> np.ndarray:
    """:func:`optimal_min_variance_weights` over a ``(g, n, n)`` stack.

    One batched ``linalg.solve`` computes ``C^{-1} 1`` for every system (the
    gufunc runs the same LAPACK factorization per matrix as the 2-D call, so
    each solution is bit-identical to solving that matrix alone); only when
    some matrix in the batch is singular does the solve fall back to
    per-matrix calls, preserving the scalar helper's ridge treatment for the
    offending systems without perturbing their batch-mates.  The O(n)
    normalization tail then replays the scalar code per row, so every row of
    the result equals the scalar helper applied to that slice.
    """
    stack = np.asarray(stack, dtype=float)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise DegenerateEstimateError(
            f"expected a stack of square covariances, got shape {stack.shape}"
        )
    g, n = stack.shape[0], stack.shape[1]
    if n == 1:
        return np.ones((g, 1))
    ones = np.ones(n)
    try:
        # One rhs column per system; LAPACK factorizes each matrix and
        # back-substitutes exactly as the scalar 1-D solve does, so each
        # row equals the scalar call's solution bit for bit.
        b = np.linalg.solve(stack, np.ones((g, n, 1)))[:, :, 0]
    except np.linalg.LinAlgError:
        rows = []
        for index in range(g):
            try:
                rows.append(np.linalg.solve(stack[index], ones))
            except np.linalg.LinAlgError:
                rows.append(safe_inverse(stack[index]) @ ones)
        b = np.stack(rows)
    weights = np.empty((g, n))
    for index in range(g):
        row = b[index]
        if not np.all(np.isfinite(row)):
            row = safe_inverse(stack[index]) @ ones
        weights[index] = _normalized_min_variance_weights(row, n)
    return weights
