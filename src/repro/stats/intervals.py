"""Classical binomial-proportion confidence intervals.

These are the textbook intervals one would use when a gold standard *is*
available (the baseline the paper's introduction starts from): observe
``successes`` errors out of ``trials`` tasks and interval the underlying
error rate.  They also back the :mod:`repro.baselines.gold_standard`
comparator.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError
from repro.stats.normal import two_sided_z
from repro.types import ConfidenceInterval

__all__ = ["wald_interval", "wilson_interval", "clopper_pearson_interval"]


def _validate(successes: int, trials: int, confidence: float) -> None:
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must lie in [0, trials], got {successes} of {trials}"
        )
    if not (0.0 < confidence < 1.0):
        raise ConfigurationError(
            f"confidence must lie strictly between 0 and 1, got {confidence}"
        )


def wald_interval(successes: int, trials: int, confidence: float) -> ConfidenceInterval:
    """Normal-approximation (Wald) interval for a binomial proportion.

    This is the interval standard statistical practice produces when gold
    standard answers are available; it is accurate for moderate ``trials``
    and proportions away from 0 and 1.
    """
    _validate(successes, trials, confidence)
    p_hat = successes / trials
    z = two_sided_z(confidence)
    deviation = math.sqrt(max(p_hat * (1.0 - p_hat), 0.0) / trials)
    half = z * deviation
    return ConfidenceInterval(
        mean=p_hat,
        lower=max(0.0, p_hat - half),
        upper=min(1.0, p_hat + half),
        confidence=confidence,
        deviation=deviation,
    )


def wilson_interval(
    successes: int, trials: int, confidence: float
) -> ConfidenceInterval:
    """Wilson score interval, better behaved near 0/1 and for small samples."""
    _validate(successes, trials, confidence)
    p_hat = successes / trials
    z = two_sided_z(confidence)
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p_hat + z2 / (2.0 * trials)) / denom
    spread = (
        z
        * math.sqrt(p_hat * (1.0 - p_hat) / trials + z2 / (4.0 * trials * trials))
        / denom
    )
    deviation = spread / z if z > 0 else 0.0
    return ConfidenceInterval(
        mean=centre,
        lower=max(0.0, centre - spread),
        upper=min(1.0, centre + spread),
        confidence=confidence,
        deviation=deviation,
    )


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float
) -> ConfidenceInterval:
    """Exact (Clopper-Pearson) interval based on the Beta distribution.

    Guaranteed coverage at the cost of being conservative; used in tests as
    an upper-bound sanity check on the other intervals.  The Beta quantile
    comes from scipy, imported lazily so the rest of the module (and the
    Wald/Wilson intervals every estimator path uses) works without the
    ``repro[sparse]`` extra installed.
    """
    _validate(successes, trials, confidence)
    try:
        from scipy import stats as _scipy_stats
    except ImportError as error:  # pragma: no cover - scipy-less leg
        raise ConfigurationError(
            "clopper_pearson_interval requires scipy (install repro[sparse])"
        ) from error
    alpha = 1.0 - confidence
    p_hat = successes / trials
    if successes == 0:
        lower = 0.0
    else:
        lower = float(_scipy_stats.beta.ppf(alpha / 2.0, successes, trials - successes + 1))
    if successes == trials:
        upper = 1.0
    else:
        upper = float(
            _scipy_stats.beta.ppf(1.0 - alpha / 2.0, successes + 1, trials - successes)
        )
    deviation = math.sqrt(max(p_hat * (1.0 - p_hat), 1e-12) / trials)
    return ConfidenceInterval(
        mean=p_hat,
        lower=lower,
        upper=upper,
        confidence=confidence,
        deviation=deviation,
    )
