"""Covariance-matrix utilities.

Both the binary (Lemmas 1, 3, 4) and the k-ary (Lemma 9) pipelines build
covariance matrices from plug-in estimates of unknown quantities.  Those
plug-in matrices can end up slightly indefinite due to sampling noise, which
would break the variance computation ``A^T C A`` and the weight optimization
``C^{-1} 1`` of Lemma 5.  The helpers here estimate, validate and repair
covariance matrices.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "bernoulli_variance",
    "sample_covariance",
    "is_positive_semidefinite",
    "nearest_positive_semidefinite",
    "regularize_covariance",
    "batched_regularize_covariance",
]


def bernoulli_variance(p: float, n: int) -> float:
    """Variance of the sample mean of ``n`` iid Bernoulli(p) draws.

    This is the diagonal term of Lemma 1 / Lemma 3:
    ``Var(Q_ij) = q_ij (1 - q_ij) / c_ij``.
    """
    if n <= 0:
        raise ConfigurationError(f"sample count must be positive, got {n}")
    p = min(max(p, 0.0), 1.0)
    return p * (1.0 - p) / n


def sample_covariance(samples: np.ndarray) -> np.ndarray:
    """Unbiased sample covariance of row-wise observations.

    Parameters
    ----------
    samples:
        Array of shape ``(n_observations, n_variables)``.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ConfigurationError(
            f"samples must be a 2-D array, got shape {samples.shape}"
        )
    if samples.shape[0] < 2:
        raise ConfigurationError("need at least two observations for covariance")
    return np.cov(samples, rowvar=False)


def is_positive_semidefinite(matrix: np.ndarray, tol: float = 1e-10) -> bool:
    """Check symmetry and positive semidefiniteness up to tolerance."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not np.allclose(matrix, matrix.T, atol=1e-8):
        return False
    eigenvalues = np.linalg.eigvalsh(0.5 * (matrix + matrix.T))
    return bool(np.all(eigenvalues >= -tol))


def nearest_positive_semidefinite(matrix: np.ndarray) -> np.ndarray:
    """Project a symmetric matrix onto the PSD cone (Higham-style).

    The matrix is symmetrized and its negative eigenvalues are clipped to
    zero.  For the mildly indefinite plug-in covariance matrices produced by
    the estimators this is a faithful, cheap repair.
    """
    matrix = np.asarray(matrix, dtype=float)
    sym = 0.5 * (matrix + matrix.T)
    eigenvalues, eigenvectors = np.linalg.eigh(sym)
    clipped = np.clip(eigenvalues, 0.0, None)
    return (eigenvectors * clipped) @ eigenvectors.T


def regularize_covariance(matrix: np.ndarray, ridge: float = 1e-12) -> np.ndarray:
    """Return a symmetric PSD version of ``matrix`` with a tiny ridge added.

    The ridge keeps the matrix invertible for Lemma 5's weight computation
    even when two triples carry identical information (perfectly correlated
    estimates).

    A Cholesky factorization is attempted first: when it succeeds the
    symmetrized matrix is already positive definite, the PSD projection
    would be the identity, and the (much more expensive) eigendecomposition
    — plus its reconstruction round-off — is skipped.  Only matrices the
    factorization rejects go through the Higham-style repair.
    """
    matrix = np.asarray(matrix, dtype=float)
    sym = 0.5 * (matrix + matrix.T)
    n = sym.shape[0]
    try:
        np.linalg.cholesky(sym)
    except np.linalg.LinAlgError:
        sym = nearest_positive_semidefinite(sym)
    return sym + ridge * np.eye(n)


def batched_regularize_covariance(
    stack: np.ndarray, ridge: float = 1e-12
) -> np.ndarray:
    """:func:`regularize_covariance` over a ``(g, n, n)`` stack of matrices.

    Each slice of the result is bit-identical to calling the scalar helper
    on that slice: the symmetrization and ridge are elementwise, and the
    Cholesky probe runs the same LAPACK factorization per matrix whether
    batched or not.  The happy path is one batched factorization for the
    whole stack; only when some matrix in the batch is rejected does the
    probe fall back to per-matrix factorizations, so a single near-singular
    grid never forces its healthy batch-mates through the (more expensive,
    but value-identical) individual path.
    """
    stack = np.asarray(stack, dtype=float)
    if stack.ndim != 3 or stack.shape[1] != stack.shape[2]:
        raise ConfigurationError(
            f"expected a stack of square matrices, got shape {stack.shape}"
        )
    sym = 0.5 * (stack + stack.transpose(0, 2, 1))
    try:
        np.linalg.cholesky(sym)
    except np.linalg.LinAlgError:
        # At least one matrix is not positive definite; probe individually
        # and repair exactly the slices the scalar helper would repair.
        for index in range(sym.shape[0]):
            try:
                np.linalg.cholesky(sym[index])
            except np.linalg.LinAlgError:
                sym[index] = nearest_positive_semidefinite(sym[index])
    return sym + ridge * np.eye(stack.shape[1])
