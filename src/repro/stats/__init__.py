"""Statistical utilities underpinning the confidence-interval machinery.

This package provides the generic statistics the paper leans on (normal
quantiles, binomial proportion intervals, covariance estimation, and the
linear-algebra helpers used by the k-ary spectral estimator), implemented
directly on numpy/scipy so the core algorithms stay readable.
"""

from repro.stats.normal import (
    normal_cdf,
    normal_pdf,
    normal_quantile,
    two_sided_z,
)
from repro.stats.intervals import (
    wald_interval,
    wilson_interval,
    clopper_pearson_interval,
)
from repro.stats.covariance import (
    bernoulli_variance,
    sample_covariance,
    nearest_positive_semidefinite,
    is_positive_semidefinite,
    regularize_covariance,
)
from repro.stats.linalg import (
    safe_inverse,
    eigendecompose,
    matrix_inverse_sqrt,
    align_rows_to_diagonal,
    optimal_min_variance_weights,
)

__all__ = [
    "normal_cdf",
    "normal_pdf",
    "normal_quantile",
    "two_sided_z",
    "wald_interval",
    "wilson_interval",
    "clopper_pearson_interval",
    "bernoulli_variance",
    "sample_covariance",
    "nearest_positive_semidefinite",
    "is_positive_semidefinite",
    "regularize_covariance",
    "safe_inverse",
    "eigendecompose",
    "matrix_inverse_sqrt",
    "align_rows_to_diagonal",
    "optimal_min_variance_weights",
]
