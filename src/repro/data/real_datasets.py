"""Simulated stand-ins for the paper's six real-world datasets.

The paper evaluates on crowd datasets that are not redistributable here
(Mechanical Turk image comparison from [2], the Snow et al. 2008 NLP
collections, and a Stanford MOOC peer-grading export).  Following the
substitution policy in DESIGN.md, each dataset is replaced by a *seeded
synthetic generator with the same shape*: the same number of workers and
tasks, the same (non-)regularity and sparsity pattern, heterogeneous worker
quality including spammers, and mild task-difficulty correlation so the
paper's independence assumption is violated the way it is in real crowds.

What the paper's real-data experiments measure is whether the confidence
intervals stay accurate when those assumptions are violated — behaviour that
depends on the *shape* of the data, not on the specific images or sentences
behind it, so these stand-ins exercise the identical code paths.

Every generator takes a ``seed`` and is fully deterministic for a given seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.response_matrix import ResponseMatrix
from repro.simulation.kary import random_confusion_matrix

__all__ = [
    "image_comparison",
    "rte_entailment",
    "temporal_ordering",
    "mooc_peer_grading",
    "word_sense_disambiguation",
    "word_similarity",
]


def _simulate_binary_crowd(
    n_workers: int,
    n_tasks: int,
    worker_error_rates: np.ndarray,
    tasks_per_worker: np.ndarray,
    rng: np.random.Generator,
    difficulty_spread: float = 0.08,
) -> ResponseMatrix:
    """Shared machinery for the binary stand-ins.

    Each task gets a difficulty offset added to every worker's error rate on
    that task (truncated to [0.02, 0.95]), which creates the mild positive
    correlation between workers' errors that real tasks induce.  Each worker
    answers a fixed number of tasks chosen uniformly at random.
    """
    truths = rng.integers(0, 2, size=n_tasks)
    difficulty = rng.normal(0.0, difficulty_spread, size=n_tasks)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=2)
    for worker in range(n_workers):
        count = int(min(n_tasks, max(1, tasks_per_worker[worker])))
        tasks = rng.choice(n_tasks, size=count, replace=False)
        base_error = worker_error_rates[worker]
        for task in tasks:
            p_err = float(np.clip(base_error + difficulty[task], 0.02, 0.95))
            truth = int(truths[task])
            label = 1 - truth if rng.random() < p_err else truth
            matrix.add_response(worker, int(task), label)
    matrix.set_gold_labels(truths.tolist())
    return matrix


def _simulate_kary_crowd(
    n_workers: int,
    n_tasks: int,
    arity: int,
    confusion_matrices: list[np.ndarray],
    tasks_per_worker: np.ndarray,
    rng: np.random.Generator,
    selectivity: np.ndarray | None = None,
) -> ResponseMatrix:
    """Shared machinery for the k-ary stand-ins."""
    if selectivity is None:
        selectivity = np.full(arity, 1.0 / arity)
    truths = rng.choice(arity, size=n_tasks, p=selectivity)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
    for worker in range(n_workers):
        count = int(min(n_tasks, max(1, tasks_per_worker[worker])))
        tasks = rng.choice(n_tasks, size=count, replace=False)
        confusion = confusion_matrices[worker]
        for task in tasks:
            truth = int(truths[task])
            label = int(rng.choice(arity, p=confusion[truth]))
            matrix.add_response(worker, int(task), label)
    matrix.set_gold_labels(truths.tolist())
    return matrix


def _heavy_tailed_task_counts(
    n_workers: int, n_tasks: int, rng: np.random.Generator, mean_fraction: float
) -> np.ndarray:
    """Per-worker task counts with the heavy-tailed spread real crowds show:

    a few prolific workers answer most tasks, many workers answer a handful.
    """
    raw = rng.pareto(1.5, size=n_workers) + 1.0
    raw = raw / raw.mean() * (mean_fraction * n_tasks)
    return np.clip(raw.astype(int), 3, n_tasks)


def _error_rates_with_spammers(
    n_workers: int,
    rng: np.random.Generator,
    good_low: float = 0.05,
    good_high: float = 0.3,
    spammer_fraction: float = 0.1,
) -> np.ndarray:
    """Mostly-competent workers plus a spammer fraction with error near 1/2."""
    rates = rng.uniform(good_low, good_high, size=n_workers)
    n_spammers = int(round(spammer_fraction * n_workers))
    if n_spammers > 0:
        spammers = rng.choice(n_workers, size=n_spammers, replace=False)
        rates[spammers] = rng.uniform(0.42, 0.5, size=n_spammers)
    return rates


def image_comparison(seed: int = 7, make_non_regular: bool = True) -> ResponseMatrix:
    """Stand-in for the IC dataset of [2].

    48 binary tasks (same person in two sports photos?), 19 workers, fully
    regular; the paper removes 20 % of responses at random to make the data
    non-regular, which ``make_non_regular`` reproduces.
    """
    rng = np.random.default_rng(seed)
    n_workers, n_tasks = 19, 48
    error_rates = _error_rates_with_spammers(
        n_workers, rng, good_low=0.05, good_high=0.35, spammer_fraction=0.1
    )
    tasks_per_worker = np.full(n_workers, n_tasks)
    matrix = _simulate_binary_crowd(
        n_workers, n_tasks, error_rates, tasks_per_worker, rng, difficulty_spread=0.1
    )
    if make_non_regular:
        matrix = matrix.thin(keep_probability=0.8, rng=rng)
    return matrix


def rte_entailment(seed: int = 11) -> ResponseMatrix:
    """Stand-in for the RTE/ENT dataset (Snow et al. 2008).

    800 binary entailment tasks, 164 workers, sparse: each worker answered
    only a small, heavy-tailed number of tasks.
    """
    rng = np.random.default_rng(seed)
    n_workers, n_tasks = 164, 800
    error_rates = _error_rates_with_spammers(
        n_workers, rng, good_low=0.05, good_high=0.35, spammer_fraction=0.12
    )
    tasks_per_worker = _heavy_tailed_task_counts(
        n_workers, n_tasks, rng, mean_fraction=0.06
    )
    return _simulate_binary_crowd(
        n_workers, n_tasks, error_rates, tasks_per_worker, rng, difficulty_spread=0.08
    )


def temporal_ordering(seed: int = 13) -> ResponseMatrix:
    """Stand-in for the TEM dataset (Snow et al. 2008).

    462 binary temporal-ordering tasks, 76 workers, sparse.
    """
    rng = np.random.default_rng(seed)
    n_workers, n_tasks = 76, 462
    error_rates = _error_rates_with_spammers(
        n_workers, rng, good_low=0.05, good_high=0.3, spammer_fraction=0.1
    )
    tasks_per_worker = _heavy_tailed_task_counts(
        n_workers, n_tasks, rng, mean_fraction=0.12
    )
    return _simulate_binary_crowd(
        n_workers, n_tasks, error_rates, tasks_per_worker, rng, difficulty_spread=0.08
    )


def mooc_peer_grading(seed: int = 17, reduce_to_ternary: bool = True) -> ResponseMatrix:
    """Stand-in for the MOOC peer-grading dataset.

    Students grade peers' assignments 0-5 (6-ary).  Graders are biased
    upwards (lenient), which the confusion matrices reflect.  Following the
    paper, grades are reduced to 3-ary via ``g -> ceil(g / 2)`` when
    ``reduce_to_ternary`` is set; the returned matrix then has arity 3.
    """
    rng = np.random.default_rng(seed)
    n_workers, n_tasks, arity = 60, 300, 6
    confusion_matrices = []
    for _ in range(n_workers):
        base = random_confusion_matrix(arity, rng, diagonal_low=0.55, diagonal_high=0.85)
        # Lenient-bias: shift some probability mass one grade upwards.
        bias = np.zeros_like(base)
        for row in range(arity):
            shift = 0.1 * base[row, row]
            bias[row, row] -= shift
            bias[row, min(row + 1, arity - 1)] += shift
        confusion_matrices.append(base + bias)
    # Graders handle sizeable batches (as course staff assigned them in the
    # original), so triples of graders share enough assignments for the k-ary
    # estimator's overlap requirement.
    tasks_per_worker = np.clip(
        rng.poisson(150, size=n_workers), 60, n_tasks
    )
    # True grades are bell-shaped around the middle grades.
    selectivity = np.array([0.05, 0.15, 0.25, 0.25, 0.2, 0.1])
    matrix = _simulate_kary_crowd(
        n_workers, n_tasks, arity, confusion_matrices, tasks_per_worker, rng,
        selectivity=selectivity,
    )
    if reduce_to_ternary:
        # The paper maps grade g to ceil(g / 2) to obtain 3-ary labels; with
        # 0-5 grades the top value is clipped so the result stays 3-ary
        # (fail / pass / good).
        mapping = {g: min(math.ceil(g / 2), 2) for g in range(arity)}
        matrix = matrix.reduce_arity(mapping, new_arity=3)
    return matrix


def word_sense_disambiguation(seed: int = 19, reduce_to_binary: bool = True) -> ResponseMatrix:
    """Stand-in for the WSD dataset (Snow et al. 2008).

    3-ary word-sense tasks where almost no task has true label 2 — the
    degenerate class that breaks the 3-ary spectral estimator (a response
    frequency matrix row becomes all zeros).  The paper's fix, merging
    labels 1 and 2 into one, is applied when ``reduce_to_binary`` is set.
    """
    rng = np.random.default_rng(seed)
    n_workers, n_tasks, arity = 34, 177, 3
    confusion_matrices = [
        random_confusion_matrix(arity, rng, diagonal_low=0.7, diagonal_high=0.95)
        for _ in range(n_workers)
    ]
    tasks_per_worker = np.clip(rng.poisson(120, size=n_workers), 40, n_tasks)
    # Class 2 is almost absent, as in the real dataset.
    selectivity = np.array([0.55, 0.43, 0.02])
    matrix = _simulate_kary_crowd(
        n_workers, n_tasks, arity, confusion_matrices, tasks_per_worker, rng,
        selectivity=selectivity,
    )
    if reduce_to_binary:
        matrix = matrix.reduce_arity({0: 0, 1: 1, 2: 1}, new_arity=2)
    return matrix


def word_similarity(seed: int = 23, reduce_to_binary: bool = True) -> ResponseMatrix:
    """Stand-in for the WS dataset (Snow et al. 2008).

    Word-similarity ratings 0-10 (11-ary), extremely sparse triples.  The
    paper reduces the arity to 2 via ``g -> ceil(g / 6)``; this generator
    reproduces that reduction when ``reduce_to_binary`` is set.
    """
    rng = np.random.default_rng(seed)
    n_workers, n_tasks, arity = 10, 30, 11
    # Workers rate on a continuous-ish scale: model as true rating plus noise.
    truths = rng.integers(0, arity, size=n_tasks)
    matrix = ResponseMatrix(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
    per_worker_noise = rng.uniform(0.8, 2.5, size=n_workers)
    for worker in range(n_workers):
        count = int(rng.integers(20, n_tasks + 1))
        tasks = rng.choice(n_tasks, size=count, replace=False)
        for task in tasks:
            noisy = truths[task] + rng.normal(0.0, per_worker_noise[worker])
            label = int(np.clip(round(noisy), 0, arity - 1))
            matrix.add_response(worker, int(task), label)
    matrix.set_gold_labels(truths.tolist())
    if reduce_to_binary:
        # The paper folds the 0-10 similarity scale down to a binary
        # similar / not-similar judgement (it writes the reduction as
        # ceil(g / 6)); a threshold at 6 realizes that intent while keeping
        # exactly two labels.
        mapping = {g: 0 if g < 6 else 1 for g in range(arity)}
        matrix = matrix.reduce_arity(mapping, new_arity=2)
    return matrix
