"""Sparse worker-by-task response matrix.

This module defines :class:`ResponseMatrix`, the data structure every
estimator in the library consumes.  It models exactly the setting of the
paper:

* ``m`` workers and ``n`` tasks, identified by integers ``0..m-1`` and
  ``0..n-1``;
* each worker answered a *subset* of the tasks ("non-regular" data);
* answers are labels in ``{0, 1, ..., arity-1}`` (``arity=2`` is the binary
  case);
* tasks optionally carry gold (true) labels, which the confidence-interval
  algorithms never look at but the evaluation harness uses to measure
  interval accuracy.

The class keeps responses in a dict-of-dicts sparse layout (natural for
Mechanical-Turk-style data where workers touch a small fraction of tasks)
and offers the derived quantities the paper's algorithms need: pairwise
common-task counts ``c_ij``, triple common-task counts ``c_ijk``, pairwise
agreement counts, and the 3-worker response count tensor of Algorithm A3.

The derived-count queries here are the simple O(n)-per-pair reference
implementations; for batch workloads the estimators obtain the same exact
counts from the vectorized :mod:`repro.data.dense_backend` instead (see the
``backend`` knob on the estimator classes).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError, InsufficientDataError

__all__ = ["UNANSWERED", "ResponseMatrix", "PairStatistics"]

#: Sentinel used in dense numpy views for (worker, task) cells with no response.
UNANSWERED: int = -1


@dataclass(frozen=True)
class PairStatistics:
    """Agreement statistics for one pair of workers.

    Attributes
    ----------
    common_tasks:
        Number of tasks both workers answered (``c_ij`` in the paper).
    agreements:
        Number of those tasks where the two responses were identical.
    """

    common_tasks: int
    agreements: int

    @property
    def agreement_rate(self) -> float:
        """Empirical agreement rate ``q_ij``; raises if the pair shares no task."""
        if self.common_tasks == 0:
            raise InsufficientDataError("pair of workers shares no common task")
        return self.agreements / self.common_tasks


class ResponseMatrix:
    """Sparse store of worker responses to tasks.

    Parameters
    ----------
    n_workers:
        Number of workers (worker ids are ``0..n_workers-1``).
    n_tasks:
        Number of tasks (task ids are ``0..n_tasks-1``).
    arity:
        Number of possible labels.  Binary tasks use ``arity=2``.
    """

    def __init__(self, n_workers: int, n_tasks: int, arity: int = 2) -> None:
        if n_workers <= 0:
            raise DataValidationError(f"n_workers must be positive, got {n_workers}")
        if n_tasks <= 0:
            raise DataValidationError(f"n_tasks must be positive, got {n_tasks}")
        if arity < 2:
            raise DataValidationError(f"arity must be at least 2, got {arity}")
        self._n_workers = n_workers
        self._n_tasks = n_tasks
        self._arity = arity
        # responses[worker][task] = label
        self._responses: list[dict[int, int]] = [dict() for _ in range(n_workers)]
        # tasks_to_workers[task] = {worker: label}
        self._task_responses: list[dict[int, int]] = [dict() for _ in range(n_tasks)]
        self._gold: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dense(
        cls,
        matrix: np.ndarray | Iterable[Iterable[int]],
        arity: int | None = None,
        gold: Iterable[int] | Mapping[int, int] | None = None,
    ) -> "ResponseMatrix":
        """Build from a dense ``(n_workers, n_tasks)`` array.

        Cells equal to :data:`UNANSWERED` (-1) are treated as missing.
        ``arity`` defaults to ``max(label) + 1`` over observed labels (at
        least 2).
        """
        dense = np.asarray(matrix, dtype=int)
        if dense.ndim != 2:
            raise DataValidationError(
                f"dense response matrix must be 2-D, got shape {dense.shape}"
            )
        n_workers, n_tasks = dense.shape
        observed = dense[dense != UNANSWERED]
        if arity is None:
            arity = max(2, int(observed.max()) + 1) if observed.size else 2
        rm = cls(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
        for worker in range(n_workers):
            for task in range(n_tasks):
                label = int(dense[worker, task])
                if label != UNANSWERED:
                    rm.add_response(worker, task, label)
        if gold is not None:
            rm.set_gold_labels(gold)
        return rm

    @classmethod
    def from_records(
        cls,
        records: Iterable[tuple[int, int, int]],
        n_workers: int | None = None,
        n_tasks: int | None = None,
        arity: int | None = None,
        gold: Iterable[int] | Mapping[int, int] | None = None,
    ) -> "ResponseMatrix":
        """Build from ``(worker, task, label)`` triples."""
        records = list(records)
        if not records:
            raise DataValidationError("cannot build a ResponseMatrix from no records")
        max_worker = max(r[0] for r in records)
        max_task = max(r[1] for r in records)
        max_label = max(r[2] for r in records)
        n_workers = n_workers if n_workers is not None else max_worker + 1
        n_tasks = n_tasks if n_tasks is not None else max_task + 1
        arity = arity if arity is not None else max(2, max_label + 1)
        rm = cls(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
        for worker, task, label in records:
            rm.add_response(worker, task, label)
        if gold is not None:
            rm.set_gold_labels(gold)
        return rm

    @classmethod
    def from_arrays(
        cls,
        workers: np.ndarray,
        tasks: np.ndarray,
        labels: np.ndarray,
        *,
        n_workers: int,
        n_tasks: int,
        arity: int = 2,
        gold_tasks: np.ndarray | None = None,
        gold_labels: np.ndarray | None = None,
    ) -> "ResponseMatrix":
        """Bulk-load from parallel record arrays (the snapshot-restore path).

        Equivalent to ``n`` :meth:`add_response` calls in array order (later
        records overwrite earlier ones for the same cell), but the two
        dict-of-dicts indexes are assembled from one stable sort per axis —
        O(n log n) NumPy work plus one dict build per non-empty row — which
        is what keeps resuming a durable streaming session from a snapshot
        (:mod:`repro.serve.durable`) cheap relative to replaying history.
        """
        workers = np.ascontiguousarray(workers, dtype=np.int64)
        tasks = np.ascontiguousarray(tasks, dtype=np.int64)
        labels = np.ascontiguousarray(labels, dtype=np.int64)
        if not (workers.shape == tasks.shape == labels.shape) or workers.ndim != 1:
            raise DataValidationError(
                "workers/tasks/labels must be 1-D arrays of identical length"
            )
        rm = cls(n_workers=n_workers, n_tasks=n_tasks, arity=arity)
        if workers.size:
            for name, values, bound in (
                ("worker", workers, n_workers),
                ("task", tasks, n_tasks),
                ("label", labels, arity),
            ):
                low, high = int(values.min()), int(values.max())
                if low < 0 or high >= bound:
                    raise DataValidationError(
                        f"{name} ids must lie in [0, {bound}), "
                        f"got range [{low}, {high}]"
                    )
            for axis_values, index in (
                (workers, rm._responses),
                (tasks, rm._task_responses),
            ):
                other = tasks if axis_values is workers else workers
                order = np.argsort(axis_values, kind="stable")
                sorted_axis = axis_values[order]
                sorted_other = other[order].tolist()
                sorted_labels = labels[order].tolist()
                boundaries = np.flatnonzero(np.diff(sorted_axis)) + 1
                starts = np.concatenate(([0], boundaries))
                ends = np.concatenate((boundaries, [sorted_axis.size]))
                for start, end in zip(starts.tolist(), ends.tolist()):
                    index[int(sorted_axis[start])] = dict(
                        zip(sorted_other[start:end], sorted_labels[start:end])
                    )
        if gold_tasks is not None and gold_labels is not None:
            rm.set_gold_labels(
                dict(
                    zip(
                        np.asarray(gold_tasks, dtype=np.int64).tolist(),
                        np.asarray(gold_labels, dtype=np.int64).tolist(),
                    )
                )
            )
        return rm

    def copy(self) -> "ResponseMatrix":
        """Deep copy of the matrix, including gold labels."""
        clone = ResponseMatrix(self._n_workers, self._n_tasks, self._arity)
        for worker in range(self._n_workers):
            for task, label in self._responses[worker].items():
                clone.add_response(worker, task, label)
        clone._gold = dict(self._gold)
        return clone

    # ------------------------------------------------------------------ #
    # Basic properties and mutation
    # ------------------------------------------------------------------ #

    @property
    def n_workers(self) -> int:
        """Number of workers."""
        return self._n_workers

    @property
    def n_tasks(self) -> int:
        """Number of tasks."""
        return self._n_tasks

    @property
    def arity(self) -> int:
        """Number of possible labels."""
        return self._arity

    @property
    def n_responses(self) -> int:
        """Total number of (worker, task) responses recorded."""
        return sum(len(r) for r in self._responses)

    @property
    def density(self) -> float:
        """Fraction of the worker-by-task grid that is filled."""
        return self.n_responses / (self._n_workers * self._n_tasks)

    @property
    def is_regular(self) -> bool:
        """True when every worker answered every task."""
        return self.n_responses == self._n_workers * self._n_tasks

    @property
    def is_binary(self) -> bool:
        """True for binary (arity 2) data."""
        return self._arity == 2

    def extend(self, additional_workers: int = 0, additional_tasks: int = 0) -> None:
        """Grow the id space in place (streaming data brings unseen ids).

        New workers/tasks start with no responses and no gold labels, so
        every derived statistic is unchanged; existing ids keep their data.
        This is O(added ids) — the delta alternative to rebuilding the
        matrix when a response stream outgrows the constructed dimensions.
        """
        if additional_workers < 0 or additional_tasks < 0:
            raise DataValidationError("extension sizes must be non-negative")
        self._responses.extend(dict() for _ in range(additional_workers))
        self._task_responses.extend(dict() for _ in range(additional_tasks))
        self._n_workers += additional_workers
        self._n_tasks += additional_tasks

    def add_response(self, worker: int, task: int, label: int) -> None:
        """Record worker ``worker``'s response ``label`` on task ``task``.

        Re-adding a response for the same (worker, task) overwrites the
        previous label.
        """
        self._validate_worker(worker)
        self._validate_task(task)
        self._validate_label(label)
        self._responses[worker][task] = label
        self._task_responses[task][worker] = label

    def remove_response(self, worker: int, task: int) -> None:
        """Delete the response of ``worker`` on ``task`` if present."""
        self._validate_worker(worker)
        self._validate_task(task)
        self._responses[worker].pop(task, None)
        self._task_responses[task].pop(worker, None)

    def set_gold_label(self, task: int, label: int) -> None:
        """Attach a gold (true) label to ``task``."""
        self._validate_task(task)
        self._validate_label(label)
        self._gold[task] = label

    def set_gold_labels(self, gold: Iterable[int] | Mapping[int, int]) -> None:
        """Attach gold labels, either as a mapping or a full-length sequence."""
        if isinstance(gold, Mapping):
            for task, label in gold.items():
                self.set_gold_label(int(task), int(label))
            return
        gold_list = list(gold)
        if len(gold_list) != self._n_tasks:
            raise DataValidationError(
                f"gold label sequence has length {len(gold_list)}, "
                f"expected {self._n_tasks}"
            )
        for task, label in enumerate(gold_list):
            self.set_gold_label(task, int(label))

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #

    def response(self, worker: int, task: int) -> int | None:
        """Label given by ``worker`` on ``task``, or None if unanswered."""
        self._validate_worker(worker)
        self._validate_task(task)
        return self._responses[worker].get(task)

    def has_response(self, worker: int, task: int) -> bool:
        """True if ``worker`` answered ``task``."""
        self._validate_worker(worker)
        self._validate_task(task)
        return task in self._responses[worker]

    def worker_responses(self, worker: int) -> dict[int, int]:
        """Mapping ``task -> label`` of everything ``worker`` answered."""
        self._validate_worker(worker)
        return dict(self._responses[worker])

    def task_responses(self, task: int) -> dict[int, int]:
        """Mapping ``worker -> label`` of everyone who answered ``task``."""
        self._validate_task(task)
        return dict(self._task_responses[task])

    def tasks_of(self, worker: int) -> set[int]:
        """Set of task ids answered by ``worker``."""
        self._validate_worker(worker)
        return set(self._responses[worker])

    def workers_of(self, task: int) -> set[int]:
        """Set of worker ids that answered ``task``."""
        self._validate_task(task)
        return set(self._task_responses[task])

    def n_tasks_of(self, worker: int) -> int:
        """Number of tasks answered by ``worker``."""
        self._validate_worker(worker)
        return len(self._responses[worker])

    def gold_label(self, task: int) -> int | None:
        """Gold label for ``task``, or None if unknown."""
        self._validate_task(task)
        return self._gold.get(task)

    @property
    def gold_labels(self) -> dict[int, int]:
        """All known gold labels as ``task -> label``."""
        return dict(self._gold)

    @property
    def has_gold(self) -> bool:
        """True if at least one task has a gold label."""
        return bool(self._gold)

    def iter_responses(self) -> Iterator[tuple[int, int, int]]:
        """Yield every recorded response as ``(worker, task, label)``."""
        for worker in range(self._n_workers):
            for task, label in self._responses[worker].items():
                yield worker, task, label

    # ------------------------------------------------------------------ #
    # Derived statistics used by the paper's algorithms
    # ------------------------------------------------------------------ #

    def common_tasks(self, *workers: int) -> set[int]:
        """Tasks answered by *all* the given workers (``c_ij``, ``c_ijk`` sets)."""
        if not workers:
            raise DataValidationError("common_tasks requires at least one worker")
        for worker in workers:
            self._validate_worker(worker)
        sets = sorted(
            (set(self._responses[w]) for w in workers), key=len
        )
        common = sets[0]
        for s in sets[1:]:
            common = common & s
            if not common:
                break
        return common

    def n_common_tasks(self, *workers: int) -> int:
        """Number of tasks answered by all the given workers."""
        return len(self.common_tasks(*workers))

    def pair_statistics(self, worker_a: int, worker_b: int) -> PairStatistics:
        """Agreement statistics (``c_ij`` and agreement count) for a pair."""
        if worker_a == worker_b:
            raise DataValidationError("pair_statistics requires two distinct workers")
        common = self.common_tasks(worker_a, worker_b)
        agreements = sum(
            1
            for task in common
            if self._responses[worker_a][task] == self._responses[worker_b][task]
        )
        return PairStatistics(common_tasks=len(common), agreements=agreements)

    def agreement_rate(self, worker_a: int, worker_b: int) -> float:
        """Empirical agreement rate ``q_ab`` over the pair's common tasks."""
        return self.pair_statistics(worker_a, worker_b).agreement_rate

    def response_count_tensor(
        self, workers: tuple[int, int, int] | list[int]
    ) -> np.ndarray:
        """The ``(k+1) x (k+1) x (k+1)`` Counts array of Algorithm A3.

        ``Counts[a, b, c]`` is the number of tasks where the first worker
        responded with label ``a-1``, the second with ``b-1`` and the third
        with ``c-1``; index 0 in any coordinate means "did not attempt".
        """
        if len(workers) != 3:
            raise DataValidationError(
                f"response_count_tensor expects exactly 3 workers, got {len(workers)}"
            )
        w1, w2, w3 = workers
        for worker in (w1, w2, w3):
            self._validate_worker(worker)
        if len({w1, w2, w3}) != 3:
            raise DataValidationError("the three workers must be distinct")
        k = self._arity
        counts = np.zeros((k + 1, k + 1, k + 1), dtype=float)
        for task in range(self._n_tasks):
            task_resp = self._task_responses[task]
            a = task_resp.get(w1)
            b = task_resp.get(w2)
            c = task_resp.get(w3)
            ia = 0 if a is None else a + 1
            ib = 0 if b is None else b + 1
            ic = 0 if c is None else c + 1
            if ia == 0 and ib == 0 and ic == 0:
                continue
            counts[ia, ib, ic] += 1.0
        return counts

    def disagreement_with_majority(self, worker: int) -> float:
        """Fraction of the worker's tasks where they disagree with the majority.

        This is the simple error-rate proxy used by the spammer filter of
        Section III-E2.  The worker's own vote is excluded from the majority
        when other votes exist; ties count as agreement (benefit of the doubt).
        """
        self._validate_worker(worker)
        tasks = self._responses[worker]
        if not tasks:
            raise InsufficientDataError(
                f"worker {worker} has no responses to compare against the majority"
            )
        disagreements = 0
        judged = 0
        for task, own_label in tasks.items():
            votes: dict[int, int] = {}
            for other, label in self._task_responses[task].items():
                if other == worker:
                    continue
                votes[label] = votes.get(label, 0) + 1
            if not votes:
                continue
            best_count = max(votes.values())
            majority_labels = {lab for lab, cnt in votes.items() if cnt == best_count}
            judged += 1
            if own_label not in majority_labels:
                disagreements += 1
        if judged == 0:
            raise InsufficientDataError(
                f"worker {worker} shares no task with any other worker"
            )
        return disagreements / judged

    def empirical_error_rate(self, worker: int) -> float:
        """Fraction of the worker's gold-labelled tasks they answered wrongly.

        Used by the evaluation harness as the "true" error rate proxy on the
        real-data experiments, exactly as the paper does (Section III-E).
        """
        self._validate_worker(worker)
        wrong = 0
        judged = 0
        for task, label in self._responses[worker].items():
            gold = self._gold.get(task)
            if gold is None:
                continue
            judged += 1
            if label != gold:
                wrong += 1
        if judged == 0:
            raise InsufficientDataError(
                f"worker {worker} answered no gold-labelled task"
            )
        return wrong / judged

    def empirical_confusion_matrix(self, worker: int) -> np.ndarray:
        """Row-normalized empirical confusion matrix against gold labels.

        Entry ``[a, b]`` is the fraction of gold-``a`` tasks the worker
        labelled ``b``.  Rows with no observations are left as uniform
        (uninformative) rows.
        """
        self._validate_worker(worker)
        k = self._arity
        counts = np.zeros((k, k), dtype=float)
        for task, label in self._responses[worker].items():
            gold = self._gold.get(task)
            if gold is None:
                continue
            counts[gold, label] += 1.0
        matrix = np.full((k, k), 1.0 / k)
        for row in range(k):
            total = counts[row].sum()
            if total > 0:
                matrix[row] = counts[row] / total
        return matrix

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #

    def to_dense(self) -> np.ndarray:
        """Dense ``(n_workers, n_tasks)`` int array with UNANSWERED for gaps."""
        dense = np.full((self._n_workers, self._n_tasks), UNANSWERED, dtype=int)
        for worker, task, label in self.iter_responses():
            dense[worker, task] = label
        return dense

    def subset_workers(self, workers: Iterable[int]) -> "ResponseMatrix":
        """New matrix containing only the given workers, re-indexed from 0.

        Task ids and gold labels are preserved unchanged.
        """
        worker_list = list(dict.fromkeys(workers))
        if not worker_list:
            raise DataValidationError("subset_workers requires at least one worker")
        for worker in worker_list:
            self._validate_worker(worker)
        subset = ResponseMatrix(len(worker_list), self._n_tasks, self._arity)
        for new_id, old_id in enumerate(worker_list):
            for task, label in self._responses[old_id].items():
                subset.add_response(new_id, task, label)
        subset._gold = dict(self._gold)
        return subset

    def subset_tasks(self, tasks: Iterable[int]) -> "ResponseMatrix":
        """New matrix containing only the given tasks, re-indexed from 0."""
        task_list = list(dict.fromkeys(tasks))
        if not task_list:
            raise DataValidationError("subset_tasks requires at least one task")
        for task in task_list:
            self._validate_task(task)
        remap = {old: new for new, old in enumerate(task_list)}
        subset = ResponseMatrix(self._n_workers, len(task_list), self._arity)
        for worker, task, label in self.iter_responses():
            if task in remap:
                subset.add_response(worker, remap[task], label)
        for old, new in remap.items():
            if old in self._gold:
                subset._gold[new] = self._gold[old]
        return subset

    def thin(self, keep_probability: float, rng: np.random.Generator) -> "ResponseMatrix":
        """Randomly drop responses, keeping each with ``keep_probability``.

        This reproduces the paper's conversion of the regular IC dataset into
        a non-regular one by removing 20 % of responses.
        """
        if not (0.0 < keep_probability <= 1.0):
            raise DataValidationError(
                f"keep_probability must lie in (0, 1], got {keep_probability}"
            )
        thinned = ResponseMatrix(self._n_workers, self._n_tasks, self._arity)
        for worker, task, label in self.iter_responses():
            if rng.random() < keep_probability:
                thinned.add_response(worker, task, label)
        thinned._gold = dict(self._gold)
        return thinned

    def reduce_arity(self, mapping: Mapping[int, int] | None = None,
                     new_arity: int | None = None) -> "ResponseMatrix":
        """Map labels to a coarser label set (the paper's arity reductions).

        ``mapping`` sends each old label to a new label.  For example the
        MOOC dataset maps grade ``g`` to ``ceil(g / 2)`` to turn 6-ary grades
        into 3-ary ones; the WS dataset maps rating ``g`` to ``ceil(g / 6)``.
        """
        if mapping is None:
            raise DataValidationError("reduce_arity requires an explicit mapping")
        mapped_values = {int(v) for v in mapping.values()}
        if new_arity is None:
            new_arity = max(2, max(mapped_values) + 1)
        if any(v < 0 or v >= new_arity for v in mapped_values):
            raise DataValidationError("mapped labels must lie inside the new arity")
        reduced = ResponseMatrix(self._n_workers, self._n_tasks, new_arity)
        for worker, task, label in self.iter_responses():
            if label not in mapping:
                raise DataValidationError(
                    f"label {label} has no entry in the arity-reduction mapping"
                )
            reduced.add_response(worker, task, int(mapping[label]))
        for task, label in self._gold.items():
            if label in mapping:
                reduced._gold[task] = int(mapping[label])
        return reduced

    # ------------------------------------------------------------------ #
    # Dunder / validation
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResponseMatrix):
            return NotImplemented
        return (
            self._n_workers == other._n_workers
            and self._n_tasks == other._n_tasks
            and self._arity == other._arity
            and self._responses == other._responses
            and self._gold == other._gold
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResponseMatrix(n_workers={self._n_workers}, n_tasks={self._n_tasks}, "
            f"arity={self._arity}, n_responses={self.n_responses}, "
            f"density={self.density:.3f})"
        )

    def _validate_worker(self, worker: int) -> None:
        if not (0 <= worker < self._n_workers):
            raise DataValidationError(
                f"worker id {worker} out of range [0, {self._n_workers})"
            )

    def _validate_task(self, task: int) -> None:
        if not (0 <= task < self._n_tasks):
            raise DataValidationError(
                f"task id {task} out of range [0, {self._n_tasks})"
            )

    def _validate_label(self, label: int) -> None:
        if not (0 <= label < self._arity):
            raise DataValidationError(
                f"label {label} out of range [0, {self._arity})"
            )
