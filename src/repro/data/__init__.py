"""Response data model and dataset utilities.

The single interchange type is :class:`~repro.data.response_matrix.ResponseMatrix`,
a sparse worker-by-task response store supporting binary and k-ary labels,
optional gold labels, and the co-attempt queries (``c_ij``, ``c_ijk``) the
paper's algorithms are built on.  The same queries are served two orders of
magnitude faster by the vectorized backends — dense NumPy arrays
(:class:`~repro.data.dense_backend.DenseAgreementBackend`), scipy.sparse
CSR (:class:`~repro.data.sparse_backend.SparseAgreementBackend`) and
packed-bitset low-memory storage
(:class:`~repro.data.sparse_backend.BitsetAgreementBackend`) — that every
estimator opts into via its ``backend`` knob, with cost-based selection
under ``"auto"``.
"""

from repro.data.dense_backend import (
    BACKEND_CHOICES,
    AgreementBackendBase,
    DenseAgreementBackend,
    auto_backend_choice,
    resolve_backend,
)
from repro.data.sparse_backend import (
    BitsetAgreementBackend,
    SparseAgreementBackend,
    scipy_available,
)
from repro.data.response_matrix import UNANSWERED, ResponseMatrix
from repro.data.loaders import (
    load_response_matrix_csv,
    load_response_matrix_json,
    save_response_matrix_csv,
    save_response_matrix_json,
)
from repro.data import real_datasets
from repro.data.registry import DATASET_REGISTRY, dataset_names, load_dataset

__all__ = [
    "UNANSWERED",
    "BACKEND_CHOICES",
    "AgreementBackendBase",
    "BitsetAgreementBackend",
    "DenseAgreementBackend",
    "ResponseMatrix",
    "SparseAgreementBackend",
    "auto_backend_choice",
    "resolve_backend",
    "scipy_available",
    "load_response_matrix_csv",
    "load_response_matrix_json",
    "save_response_matrix_csv",
    "save_response_matrix_json",
    "real_datasets",
    "DATASET_REGISTRY",
    "dataset_names",
    "load_dataset",
]
