"""Vectorized NumPy backend for agreement statistics.

The estimators in this library are driven by a small set of counting
quantities over a :class:`~repro.data.response_matrix.ResponseMatrix`:

* ``c_ij`` — pairwise common-task counts,
* pairwise agreement counts,
* ``c_ijk`` — triple common-task counts,
* the ``(k+1)^3`` response count tensor of Algorithm A3, and
* the majority-disagreement proxy of the spammer filter.

The reference implementation computes these from the dict-of-dicts sparse
layout with Python set intersections, which makes batch evaluation
(``MWorkerEstimator.evaluate_all``) O(m^2 * n) in pure Python.  This module
provides the vectorized alternatives behind one interface:

* :class:`AgreementBackendBase` — the shared skeleton every vectorized
  backend implements: exact-integer pair/triple count queries, the derived
  float caches (``common_counts_f64``, pre-clamped rate matrices), and
  generic vote-table / majority-disagreement / A3-tensor computations built
  on per-worker row accessors;
* :class:`DenseAgreementBackend` — dense indicator/label arrays; **all**
  pairwise counts in one boolean matrix product (O(m^2 n) flops, in BLAS),
  triple counts from packed bitset rows or masked matrix products;
* :class:`~repro.data.sparse_backend.SparseAgreementBackend` — scipy.sparse
  CSR matmuls for the pairwise counts (work scales with the observed fill,
  not with m*n) over bitset-only row storage;
* :class:`~repro.data.sparse_backend.BitsetAgreementBackend` — packed rows
  only (one bit per cell per label plane), the low-memory fallback for
  grids whose dense arrays cannot be materialized.

Because every quantity is an exact integer count (all sums stay far below
2^53, so float matrix products and popcounts are exact), estimators produce
**bit-identical** results whichever backend computes the statistics; the
cross-backend differential suite in
``tests/property/test_cross_backend_differential.py`` enforces this for
every backend and every public entry point.

Backend selection (:func:`resolve_backend`) is cost-based: ``"auto"``
consults :func:`auto_backend_choice`, which weighs the grid size ``m * n``
against the observed fill (``n_responses / (m * n)``) to pick the cheapest
backend that can hold the data — see the function docstring for the exact
decision table.  An explicit ``backend=`` request always wins.

The dense backend additionally supports O(row) *delta updates*
(:meth:`DenseAgreementBackend.apply_response`), which the incremental
evaluator uses to keep the cached count matrices in sync with a response
stream without rebuilding; the bitset and sparse backends implement the
same method against their packed planes.

Every vectorized backend is *footprint-capable*: because the pairing fast
path reads straight from the cached count matrices
(:func:`~repro.core.pairing.greedy_pairs_dense` replicates the reference
scan step for step), an evaluation's dependency footprint can be derived
analytically from the scan log instead of from per-read callbacks, which
is what lets the incremental evaluator's recomputes shard on these
backends (see :mod:`repro.core.deps` and the capability matrix in
:mod:`repro.core.agreement`).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.data.response_matrix import UNANSWERED, ResponseMatrix

__all__ = [
    "AUTO_BITSET_CELL_LIMIT",
    "AUTO_DENSE_CELL_LIMIT",
    "AUTO_DENSE_WORKER_LIMIT",
    "AUTO_SPARSE_DENSITY",
    "AUTO_SPARSE_MIN_CELLS",
    "BACKEND_CHOICES",
    "AgreementBackendBase",
    "DenseAgreementBackend",
    "auto_backend_choice",
    "resolve_backend",
    "resolve_triple_backend",
]

#: ``backend="auto"`` uses the dense backend only while the worker-by-task
#: grid stays below this many cells (the indicator/label arrays are O(m*n)).
AUTO_DENSE_CELL_LIMIT: int = 50_000_000

#: ``backend="auto"`` also requires this many workers or fewer: the pair-count
#: caches are O(m^2) int64 matrices, so worker-heavy matrices would allocate
#: gigabytes even when m*n is modest.
AUTO_DENSE_WORKER_LIMIT: int = 4096

#: Observed-fill threshold of the cost model: below this density the
#: CSR-driven pair-count products (work proportional to the fill) beat the
#: dense O(m^2 n) products, and the fill-restricted triple grids dominate
#: the full masked matmuls.
AUTO_SPARSE_DENSITY: float = 0.05

#: Grids at or below this many cells always take the dense backend under
#: ``"auto"``: the dense build is trivially cheap there and avoids the
#: packed-row bookkeeping (this also keeps historical auto behaviour for
#: every small matrix).
AUTO_SPARSE_MIN_CELLS: int = 1 << 20

#: Ceiling for the bitset fallback, expressed in *binary-matrix* cells:
#: packed storage costs one bit per cell per plane and a binary matrix has
#: 3 planes (attempts + 2 labels), so grids up to 8x the dense cell limit
#: still fit when the dense arrays (1 byte + 2 bytes per cell) cannot be
#: materialized.  Higher arities carry ``arity + 1`` planes; the cost model
#: scales the ceiling down accordingly (``cells * (arity + 1) <= 3x`` this
#: limit) so the low-memory fallback never outgrows the budget that made it
#: reject the dense backend.
AUTO_BITSET_CELL_LIMIT: int = 8 * AUTO_DENSE_CELL_LIMIT

#: Valid values for the ``backend=`` knobs exposed across the library.
BACKEND_CHOICES: tuple[str, ...] = ("auto", "dense", "dict", "sparse", "bitset")

#: Popcount lookup table for the packed bitset rows (fallback for NumPy
#: builds without the native ``bitwise_count`` ufunc).
_POPCOUNT = np.array([bin(value).count("1") for value in range(256)], dtype=np.int64)

if hasattr(np, "bitwise_count"):

    def _popcount(packed: np.ndarray) -> np.ndarray:
        return np.bitwise_count(packed)

else:  # pragma: no cover - NumPy < 1.26

    def _popcount(packed: np.ndarray) -> np.ndarray:
        return _POPCOUNT[packed]

#: Largest task count for which 0/1 matrix products stay exact in float32:
#: every partial sum of a boolean product is a non-negative integer bounded
#: by the final count <= n_tasks, and integers up to 2^24 are exactly
#: representable in float32.  Above this the products fall back to float64.
_FLOAT32_EXACT_TASK_LIMIT: int = 2**24


def _indicator_product(indicator: np.ndarray, n_tasks: int) -> np.ndarray:
    """``indicator @ indicator.T`` with the cheapest exact dtype.

    ``indicator`` is a boolean (0/1) matrix; the product entries are exact
    integer counts in float32 whenever ``n_tasks`` fits
    :data:`_FLOAT32_EXACT_TASK_LIMIT` (SGEMM moves twice the elements per
    cycle of DGEMM), and in float64 always.
    """
    dtype = np.float32 if n_tasks <= _FLOAT32_EXACT_TASK_LIMIT else np.float64
    converted = indicator.astype(dtype)
    return converted @ converted.T


class AgreementBackendBase:
    """Shared skeleton of every vectorized agreement-statistics backend.

    A backend serves exact integer counts (pairwise common tasks and
    agreements, triple common tasks, per-task votes, the A3 count tensor)
    plus a handful of derived float caches the batched estimator stages
    slice from.  Because every count is an exact integer, two backends that
    agree on the counts produce bit-identical estimates — the concrete
    subclasses differ only in *storage* and in how the counts are computed:

    ==========  =======================  ==================================
    backend     storage                  pairwise counts
    ==========  =======================  ==================================
    ``dense``   bool/int16 ``(m, n)``    boolean matrix products (BLAS)
    ``sparse``  packed bits + CSR index  scipy.sparse CSR matmuls (~ fill)
    ``bitset``  packed bits only         AND + popcount over packed rows
    ==========  =======================  ==================================

    Capability flags
    ----------------
    ``supports_shared_export``
        Whether the backend implements the shared-state export protocol
        (:meth:`export_shared_state` / :meth:`attach_shared_state`) that
        process-sharded evaluation uses to ship precomputed state through
        ``multiprocessing.shared_memory`` (:mod:`repro.core.parallel`).
        Every vectorized backend — dense, sparse and bitset — supports it;
        only the dict path (no backend at all) forces ``shards=`` back to
        serial evaluation (results are identical — the knob is
        throughput-only).

    Subclass contract
    -----------------
    Concrete backends must provide the storage hooks ``_packed_rows``
    (packed attempt bitsets, big-endian bit order as ``np.packbits``),
    ``_attempt_row`` / ``_label_row`` (one worker's boolean attempt row and
    int label row with :data:`~repro.data.response_matrix.UNANSWERED` in
    unattempted cells), the count builders ``common_counts`` /
    ``agreement_counts``, the triple-grid queries ``triple_count_matrix`` /
    ``triple_count_grid_full``, and ``apply_response`` (the O(row) delta
    update).  Everything else — scalar pair/triple queries, the derived
    float caches, the vote table, the majority-disagreement proxy and the
    A3 count tensor — is inherited.  New backends must also register in the
    differential suite's path tables (see
    ``tests/property/test_cross_backend_differential.py``) so the
    bit-identity contract is enforced for them on every public entry point.
    """

    #: Knob value the backend answers to (``resolve_backend`` choice name).
    name: str = "base"

    #: See the class docstring; every concrete vectorized backend flips
    #: this on by implementing the shared-state export protocol below.
    supports_shared_export: bool = False

    #: Cap on the Python-list mirror of the pair-count matrix (~28 bytes per
    #: int object; 1024^2 is ~30 MB).
    _COMMON_LIST_WORKER_LIMIT = 1024

    _n_workers: int
    _n_tasks: int
    _arity: int

    def _init_caches(
        self,
        common_counts: np.ndarray | None = None,
        agreement_counts: np.ndarray | None = None,
    ) -> None:
        """Reset every lazily-built derived cache.

        Single source of truth for the shared cache attribute set — called
        by every concrete constructor (and by
        :meth:`DenseAgreementBackend.from_arrays`, which builds instances
        via ``__new__``).  Caches are kept in sync by ``apply_response``.
        """
        self._common: np.ndarray | None = common_counts
        self._agree: np.ndarray | None = agreement_counts
        self._task_votes: np.ndarray | None = None
        self._common_f64: np.ndarray | None = None
        self._common_list: list[list[int]] | None = None
        self._clamped_rates: dict[
            float, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        #: Number of derived-cache invalidation passes taken so far.  Each
        #: singleton ``apply_response`` that changes a statistic pays one;
        #: ``apply_responses`` pays one for a whole micro-batch — the
        #: counter is what the streaming benchmark/tests use to assert the
        #: batch path actually coalesces the invalidation work.
        self.invalidation_events: int = 0

    # ------------------------------------------------------------------ #
    # Shape
    # ------------------------------------------------------------------ #

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    @property
    def arity(self) -> int:
        return self._arity

    def _validate_workers(self, *workers: int) -> None:
        for worker in workers:
            if not (0 <= worker < self._n_workers):
                raise DataValidationError(
                    f"worker id {worker} out of range [0, {self._n_workers})"
                )

    # ------------------------------------------------------------------ #
    # Storage hooks (concrete backends implement these)
    # ------------------------------------------------------------------ #

    @property
    def _packed_rows(self) -> np.ndarray:
        """Packed per-worker attempt bitsets (``np.packbits`` rows)."""
        raise NotImplementedError

    def _attempt_row(self, worker: int) -> np.ndarray:
        """Boolean attempt indicator row of one worker, length ``n_tasks``."""
        raise NotImplementedError

    def _label_row(self, worker: int) -> np.ndarray:
        """Integer label row of one worker (``UNANSWERED`` where absent)."""
        raise NotImplementedError

    @property
    def common_counts(self) -> np.ndarray:
        """The full ``(m, m)`` matrix of pairwise common-task counts ``c_ij``."""
        raise NotImplementedError

    @property
    def agreement_counts(self) -> np.ndarray:
        """The full ``(m, m)`` matrix of pairwise agreement counts."""
        raise NotImplementedError

    def triple_count_matrix(
        self,
        worker: int,
        partners: Sequence[int] | np.ndarray,
        fast: bool = False,
    ) -> np.ndarray:
        """All ``c_{worker, x, y}`` for ``x, y`` in ``partners`` (float64,
        exact integer counts)."""
        raise NotImplementedError

    def triple_count_grid_full(self, worker: int) -> np.ndarray:
        """All ``c_{worker, x, y}`` over *every* worker pair, exact counts."""
        raise NotImplementedError

    def _validate_event(self, worker: int, task: int, label: int) -> None:
        if not (0 <= worker < self._n_workers):
            raise DataValidationError(f"worker id {worker} out of range")
        if not (0 <= task < self._n_tasks):
            raise DataValidationError(f"task id {task} out of range")
        if not (0 <= label < self._arity):
            raise DataValidationError(f"label {label} out of range")

    def _invalidate_derived(self) -> None:
        """Drop the derived read-only caches (a count is about to change)."""
        self.invalidation_events += 1
        self._common_f64 = None
        self._common_list = None
        self._clamped_rates.clear()

    def _apply_delta(
        self, worker: int, task: int, label: int, previous_label: int | None
    ) -> None:
        """Patch the storage and materialized counts for one changed cell.

        Called with pre-validated, statistic-changing events only; the
        derived caches have already been invalidated by the caller.
        """
        raise NotImplementedError

    def apply_response(
        self, worker: int, task: int, label: int, previous_label: int | None = None
    ) -> None:
        """O(row) delta update after one ``(worker, task, label)`` ingestion.

        ``previous_label`` must be the worker's prior response on ``task``
        (``None`` when this is a fresh response).  Every built cache —
        count matrices, bit planes, vote table — is patched in place
        instead of recomputed; derived read-only caches are dropped once.
        """
        self._validate_event(worker, task, label)
        if previous_label is not None and int(previous_label) == int(label):
            return
        self._invalidate_derived()
        self._apply_delta(worker, task, label, previous_label)

    def apply_responses(
        self, events: Sequence[tuple[int, int, int, int | None]]
    ) -> int:
        """Batched delta update for a micro-batch of ingested responses.

        ``events`` are ``(worker, task, label, previous_label)`` tuples in
        application order (``previous_label`` relative to the sequentially
        applied stream, exactly as :meth:`apply_response` would have seen
        them).  The result is bit-identical to applying the events one by
        one; the difference is cost: the derived caches are invalidated
        **once** for the whole batch, and while no count matrix / vote
        table is materialized yet the per-event O(m) co-attempter scans are
        replaced by grouped per-worker-row storage writes
        (:meth:`_apply_batch_storage`).  Returns the number of
        statistic-changing events applied.
        """
        effective = []
        for worker, task, label, previous in events:
            self._validate_event(worker, task, label)
            if previous is not None and int(previous) == int(label):
                continue
            effective.append((worker, task, label, previous))
        if not effective:
            return 0
        self._invalidate_derived()
        if not self._apply_batch_storage(effective):
            for worker, task, label, previous in effective:
                self._apply_delta(worker, task, label, previous)
        return len(effective)

    def _apply_batch_storage(
        self, events: list[tuple[int, int, int, int | None]]
    ) -> bool:
        """Grouped per-worker-row fast path for a whole micro-batch.

        Returns True when the batch was fully absorbed by storage writes
        (only legal while no count matrix / vote table is materialized —
        those must be patched per event).  The default declines; backends
        whose storage is authoritative override it.
        """
        return False

    # ------------------------------------------------------------------ #
    # Delta growth (streaming ingestion of unseen ids)
    # ------------------------------------------------------------------ #

    def extend(self, additional_workers: int = 0, additional_tasks: int = 0) -> None:
        """Grow the backend in place for new (empty) workers and/or tasks.

        Added rows/columns carry no responses, so every materialized count
        is either unchanged (new tasks) or extends with zeros (new
        workers); nothing is recomputed — this is the delta alternative to
        a full rebuild when the response stream brings ids unseen at
        construction.  Worker growth resizes the ``(m, m)`` count caches,
        so the derived per-pair caches are dropped; task-only growth keeps
        them (no pair statistic changed).
        """
        if additional_workers < 0 or additional_tasks < 0:
            raise DataValidationError("extension sizes must be non-negative")
        if additional_workers == 0 and additional_tasks == 0:
            return
        self._extend_storage(additional_workers, additional_tasks)
        if additional_workers:
            m = self._n_workers + additional_workers
            for attr in ("_common", "_agree"):
                matrix = getattr(self, attr)
                if matrix is not None:
                    grown = np.zeros((m, m), dtype=matrix.dtype)
                    grown[: self._n_workers, : self._n_workers] = matrix
                    setattr(self, attr, grown)
            self._common_f64 = None
            self._common_list = None
            self._clamped_rates.clear()
        if additional_tasks and self._task_votes is not None:
            self._task_votes = np.vstack(
                [
                    self._task_votes,
                    np.zeros((additional_tasks, self._arity), dtype=np.int64),
                ]
            )
        self._n_workers += additional_workers
        self._n_tasks += additional_tasks

    def _extend_storage(self, additional_workers: int, additional_tasks: int) -> None:
        """Grow the concrete storage arrays (rows and/or columns of zeros)."""
        raise NotImplementedError

    def triple_count_tensor(self) -> np.ndarray | None:
        """The full cached triple-count tensor, or None when unavailable.

        Only the dense backend materializes the tensor; the default is the
        documented fallback signal — callers fall back to
        :meth:`triple_count_grid_full` / per-worker grids.
        """
        return None

    # ------------------------------------------------------------------ #
    # Shared-state export (process-sharded evaluation)
    # ------------------------------------------------------------------ #

    def export_shared_state(self) -> dict[str, np.ndarray]:
        """Every array a shard needs, keyed for :meth:`attach_shared_state`.

        The export protocol behind ``supports_shared_export``: the parent
        process materializes its precomputed state (storage planes, count
        matrices, vote table, the triple tensor where cached) and returns
        the arrays by name; :mod:`repro.core.parallel` copies each into a
        ``multiprocessing.shared_memory`` segment and shard processes
        rebuild an equivalent backend over zero-copy views with
        :meth:`attach_shared_state` — no count is ever recomputed in a
        shard.  Keys are backend-specific; the only contract is that
        ``attach_shared_state`` of the same class understands them.

        The durable streaming layer (:mod:`repro.serve.durable`) reuses the
        same export shapes as its snapshot payload: the arrays land on disk
        (prefixed ``backend.`` in the snapshot manifest) and a resume hands
        *writable copies* back to ``attach_shared_state``, so the restored
        backend skips the from-scratch count rebuild and keeps
        delta-updating the attached arrays in place.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not support shared-state export"
        )

    @classmethod
    def attach_shared_state(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        n_workers: int,
        n_tasks: int,
        arity: int,
    ) -> "AgreementBackendBase":
        """Rebuild a backend over the views of an exported state.

        Inverse of :meth:`export_shared_state`.  Run inside shard
        processes, ``arrays`` are read-only shared-memory views that must
        not be mutated (and must outlive the backend — the caller keeps
        the segments mapped).  Run on a durable-snapshot restore, they are
        the loader's fresh writable copies and the attached backend
        resumes streaming deltas against them directly.
        """
        raise NotImplementedError(
            f"backend {cls.name!r} does not support shared-state export"
        )

    # ------------------------------------------------------------------ #
    # Derived float caches (shared)
    # ------------------------------------------------------------------ #

    @property
    def common_counts_f64(self) -> np.ndarray:
        """Float64 view of :attr:`common_counts` (exact; cached for slicing)."""
        if self._common_f64 is None:
            self._common_f64 = self.common_counts.astype(np.float64)
        return self._common_f64

    @property
    def common_counts_list(self) -> list[list[int]] | None:
        """Python-list mirror of :attr:`common_counts` for hot scalar scans.

        The greedy pairing's partner scan reads single counts millions of
        times per batch; plain-list indexing is several times cheaper than
        NumPy scalar indexing.  ``None`` for worker counts too large to
        mirror affordably (callers then scan the array directly).
        """
        if self._n_workers > self._COMMON_LIST_WORKER_LIMIT:
            return None
        if self._common_list is None:
            self._common_list = self.common_counts.tolist()
        return self._common_list

    def clamped_rate_data(
        self, clamp_margin: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rates, 2*rates - 1, clamp flags)`` for all pairs, cached.

        ``rates`` applies exactly the elementwise sequence of
        ``clamp_agreement`` to ``agreements / common``; pairs without common
        tasks come out NaN (callers mask them).  The batched evaluation
        stages read per-worker slices of these matrices, so the divisions,
        clamps and ``2q - 1`` terms are computed once per batch instead of
        once per evaluated worker.  Cached per margin and invalidated by
        ``apply_response``.
        """
        cached = self._clamped_rates.get(clamp_margin)
        if cached is not None:
            return cached
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = self.agreement_counts.astype(np.float64) / self.common_counts_f64
        over = raw > 1.0
        rates = np.where(over, 1.0, raw)
        lower = 0.5 + clamp_margin
        under = rates < lower
        rates = np.where(under, lower, rates)
        data = (rates, 2.0 * rates - 1.0, over | under)
        self._clamped_rates[clamp_margin] = data
        return data

    @property
    def task_votes(self) -> np.ndarray:
        """Per-task label vote counts, shape ``(n_tasks, arity)``.

        Generic row-by-row accumulation; the dense backend overrides this
        with a single vectorized pass over its label matrix (same counts).
        """
        if self._task_votes is None:
            votes = np.zeros((self._n_tasks, self._arity), dtype=np.int64)
            for worker in range(self._n_workers):
                tasks = np.nonzero(self._attempt_row(worker))[0]
                if tasks.size == 0:
                    continue
                # Tasks are unique within a row, so plain fancy-index
                # addition is safe (no duplicate-index collapse).
                votes[tasks, self._label_row(worker)[tasks].astype(np.int64)] += 1
            self._task_votes = votes
        return self._task_votes

    # ------------------------------------------------------------------ #
    # Pair / triple statistics (shared)
    # ------------------------------------------------------------------ #

    def pair(self, worker_a: int, worker_b: int) -> tuple[int, int]:
        """``(c_ab, agreement count)`` for one pair of workers."""
        self._validate_workers(worker_a, worker_b)
        return (
            int(self.common_counts[worker_a, worker_b]),
            int(self.agreement_counts[worker_a, worker_b]),
        )

    def triple_common_count(self, worker_a: int, worker_b: int, worker_c: int) -> int:
        """``c_abc`` via one AND + popcount over the packed bitset rows."""
        self._validate_workers(worker_a, worker_b, worker_c)
        packed = self._packed_rows
        joint = packed[worker_a] & packed[worker_b] & packed[worker_c]
        return int(_popcount(joint).sum())

    def triple_common_counts(
        self,
        worker: int | np.ndarray,
        partners_a: Sequence[int] | np.ndarray,
        partners_b: Sequence[int] | np.ndarray,
    ) -> np.ndarray:
        """``c_{w_t, a_t, b_t}`` for aligned triple arrays, in one pass.

        Unlike :meth:`triple_count_matrix` (which produces the full partner
        grid for the Lemma-4 assembly), this evaluates only the ``l``
        requested triples — one AND + popcount over the packed bitset rows
        per triple, vectorized across the whole batch.  This is what the
        batched per-triple stage consumes: one count per formed triple.
        ``worker`` may be a single id shared by every triple, or an array
        aligned with the partner arrays (the cross-worker batch of
        ``evaluate_all``).
        """
        a_index = np.asarray(partners_a, dtype=np.int64)
        b_index = np.asarray(partners_b, dtype=np.int64)
        if a_index.shape != b_index.shape:
            raise DataValidationError(
                "partners_a and partners_b must have identical shapes"
            )
        for index in (a_index, b_index):
            if index.size and (index.min() < 0 or index.max() >= self._n_workers):
                raise DataValidationError("partner id out of range")
        packed = self._packed_rows
        if np.ndim(worker) == 0:
            self._validate_workers(int(worker))
            worker_rows = packed[int(worker)][None, :]
        else:
            worker_index = np.asarray(worker, dtype=np.int64)
            if worker_index.shape != a_index.shape:
                raise DataValidationError(
                    "a worker array must align with the partner arrays"
                )
            if worker_index.size and (
                worker_index.min() < 0 or worker_index.max() >= self._n_workers
            ):
                raise DataValidationError("worker id out of range")
            worker_rows = packed[worker_index]
        if a_index.size == 0:
            return np.zeros(0, dtype=np.int64)
        joint = worker_rows & packed[a_index] & packed[b_index]
        return _popcount(joint).sum(axis=1, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Algorithm A3 count tensor (shared, via the row accessors)
    # ------------------------------------------------------------------ #

    def response_count_tensor(
        self, workers: tuple[int, int, int] | list[int]
    ) -> np.ndarray:
        """The ``(k+1)^3`` Counts tensor of Algorithm A3, via one bincount.

        Exactly matches :meth:`ResponseMatrix.response_count_tensor`: index 0
        in any coordinate means "did not attempt" and tasks attempted by none
        of the three workers are not counted.
        """
        if len(workers) != 3:
            raise DataValidationError(
                f"response_count_tensor expects exactly 3 workers, got {len(workers)}"
            )
        w1, w2, w3 = workers
        self._validate_workers(w1, w2, w3)
        if len({w1, w2, w3}) != 3:
            raise DataValidationError("the three workers must be distinct")
        k = self._arity
        side = k + 1
        indices = []
        for worker in (w1, w2, w3):
            shifted = self._label_row(worker).astype(np.int64) + 1
            indices.append(np.where(self._attempt_row(worker), shifted, 0))
        flat = (indices[0] * side + indices[1]) * side + indices[2]
        counts = np.bincount(flat, minlength=side**3).astype(float)
        counts = counts.reshape(side, side, side)
        counts[0, 0, 0] = 0.0
        return counts

    # ------------------------------------------------------------------ #
    # Spammer-filter proxy (shared, via the row accessors)
    # ------------------------------------------------------------------ #

    def majority_disagreement_rates(
        self, workers: Sequence[int] | None = None
    ) -> list[float | None]:
        """Majority-disagreement proxy per worker, vectorized.

        Mirrors :meth:`ResponseMatrix.disagreement_with_majority` exactly
        (own vote excluded, ties count as agreement) but computes the vote
        table once for all workers.  Workers that cannot be scored — no
        responses, or no task shared with anyone — map to ``None`` instead of
        raising.  ``workers`` restricts the scan to a subset (rates returned
        in the given order); the sharded spammer filter chunks the worker
        range with it, with the vote table built once up front.
        """
        if workers is None:
            workers = range(self._n_workers)
        else:
            self._validate_workers(*workers)
        votes = self.task_votes
        rates: list[float | None] = []
        for worker in workers:
            tasks = np.nonzero(self._attempt_row(worker))[0]
            if tasks.size == 0:
                rates.append(None)
                continue
            own = self._label_row(worker)[tasks].astype(np.int64)
            others = votes[tasks].copy()
            others[np.arange(tasks.size), own] -= 1
            judged = others.sum(axis=1) > 0
            n_judged = int(judged.sum())
            if n_judged == 0:
                rates.append(None)
                continue
            own_count = others[np.arange(tasks.size), own]
            best = others.max(axis=1)
            disagreements = int(((own_count < best) & judged).sum())
            rates.append(disagreements / n_judged)
        return rates


class DenseAgreementBackend(AgreementBackendBase):
    """Vectorized agreement-statistics provider for one response matrix.

    The backend keeps two dense arrays — a boolean attempt matrix ``A`` of
    shape ``(m, n)`` and an integer label matrix ``L`` (with
    :data:`~repro.data.response_matrix.UNANSWERED` in unattempted cells) —
    plus lazily-built derived caches:

    * ``common_counts``: the full ``(m, m)`` matrix of ``c_ij`` (one matmul);
    * ``agreement_counts``: the ``(m, m)`` pairwise agreement counts (one
      matmul per label value);
    * packed bitset rows for popcount-based triple counts;
    * the ``(n, arity)`` per-task vote table for the spammer filter.

    All counts are exact integers; see the module docstring for why the
    float64 matrix products cannot lose precision.
    """

    name = "dense"
    supports_shared_export = True

    def __init__(self, matrix: ResponseMatrix) -> None:
        self._n_workers = matrix.n_workers
        self._n_tasks = matrix.n_tasks
        self._arity = matrix.arity
        m, n = self._n_workers, self._n_tasks
        self._attempts = np.zeros((m, n), dtype=bool)
        self._labels = np.full((m, n), UNANSWERED, dtype=np.int16)
        for worker in range(m):
            responses = matrix.worker_responses(worker)
            if not responses:
                continue
            tasks = np.fromiter(responses.keys(), dtype=np.int64, count=len(responses))
            labels = np.fromiter(responses.values(), dtype=np.int64, count=len(responses))
            self._attempts[worker, tasks] = True
            self._labels[worker, tasks] = labels
        self._init_caches()

    def _init_caches(
        self,
        common_counts: np.ndarray | None = None,
        agreement_counts: np.ndarray | None = None,
    ) -> None:
        """Reset the shared caches plus the dense-only derived arrays.

        Called by both ``__init__`` and :meth:`from_arrays` (which builds
        instances via ``__new__``), so a cache added here exists on
        shard-reconstructed backends too.
        """
        super()._init_caches(
            common_counts=common_counts, agreement_counts=agreement_counts
        )
        self._packed: np.ndarray | None = None
        self._attempts_f32: np.ndarray | None = None
        self._triple_tensor: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_matrix(cls, matrix: ResponseMatrix) -> "DenseAgreementBackend":
        """Build a backend snapshot of ``matrix``."""
        return cls(matrix)

    @classmethod
    def from_arrays(
        cls,
        attempts: np.ndarray,
        labels: np.ndarray,
        arity: int,
        common_counts: np.ndarray | None = None,
        agreement_counts: np.ndarray | None = None,
    ) -> "DenseAgreementBackend":
        """Wrap existing indicator/label arrays without copying them.

        This is how shard worker processes reconstruct a backend over
        read-only ``multiprocessing.shared_memory`` buffers: the parent
        exports ``attempts``/``labels`` (and optionally the precomputed
        count matrices, so shards do not redo the O(m^2 n) matmuls) and each
        shard views them in place.  The arrays are adopted as-is; callers
        must not mutate them while the backend is alive.
        """
        if attempts.ndim != 2 or attempts.shape != labels.shape:
            raise DataValidationError(
                "attempts and labels must be 2-D arrays of identical shape, "
                f"got {attempts.shape} and {labels.shape}"
            )
        if arity < 2:
            raise DataValidationError(f"arity must be at least 2, got {arity}")
        self = cls.__new__(cls)
        self._n_workers, self._n_tasks = attempts.shape
        self._arity = arity
        self._attempts = attempts
        self._labels = labels
        self._init_caches(
            common_counts=common_counts, agreement_counts=agreement_counts
        )
        return self

    # ------------------------------------------------------------------ #
    # Shared-state export
    # ------------------------------------------------------------------ #

    def export_shared_state(self) -> dict[str, np.ndarray]:
        """Storage, count matrices, packed rows, votes and (when cached
        or cacheable) the triple tensor — everything shards would
        otherwise rebuild.  Materializes lazily-built state as a side
        effect, which is the point: pay each build once in the parent
        instead of once per shard.
        """
        exports = {
            "attempts": self._attempts,
            "labels": self._labels,
            "common": self.common_counts,
            "agree": self.agreement_counts,
            "packed": self._packed_rows,
            "task_votes": self.task_votes,
        }
        tensor = self.triple_count_tensor()
        if tensor is not None:
            exports["triple_tensor"] = tensor
        return exports

    @classmethod
    def attach_shared_state(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        n_workers: int,
        n_tasks: int,
        arity: int,
    ) -> "DenseAgreementBackend":
        self = cls.from_arrays(
            arrays["attempts"],
            arrays["labels"],
            arity,
            common_counts=arrays["common"],
            agreement_counts=arrays["agree"],
        )
        self._packed = arrays["packed"]
        self._task_votes = arrays["task_votes"]
        self._triple_tensor = arrays.get("triple_tensor")
        return self

    # ------------------------------------------------------------------ #
    # Storage hooks
    # ------------------------------------------------------------------ #

    def _attempt_row(self, worker: int) -> np.ndarray:
        return self._attempts[worker]

    def _label_row(self, worker: int) -> np.ndarray:
        return self._labels[worker]

    @property
    def _packed_rows(self) -> np.ndarray:
        if self._packed is None:
            self._packed = np.packbits(self._attempts, axis=1)
        return self._packed

    # ------------------------------------------------------------------ #
    # Lazy derived caches
    # ------------------------------------------------------------------ #

    @property
    def common_counts(self) -> np.ndarray:
        """The full ``(m, m)`` matrix of pairwise common-task counts ``c_ij``."""
        if self._common is None:
            self._common = np.rint(
                _indicator_product(self._attempts, self._n_tasks)
            ).astype(np.int64)
        return self._common

    @property
    def agreement_counts(self) -> np.ndarray:
        """The full ``(m, m)`` matrix of pairwise agreement counts."""
        if self._agree is None:
            agree = np.zeros((self._n_workers, self._n_workers), dtype=np.int64)
            for label in range(self._arity):
                agree += np.rint(
                    _indicator_product(self._labels == label, self._n_tasks)
                ).astype(np.int64)
            self._agree = agree
        return self._agree

    #: Cap on the float32 attempt-matrix cache: 4 bytes/cell, so this keeps
    #: the extra footprint under ~128 MB even at the dense auto-limit.
    _ATTEMPTS_F32_CELL_LIMIT = 2**25

    @property
    def _attempts_as_f32(self) -> np.ndarray | None:
        """Cached float32 attempt matrix (None when too large to cache)."""
        if self._n_workers * self._n_tasks > self._ATTEMPTS_F32_CELL_LIMIT:
            return None
        if self._attempts_f32 is None:
            self._attempts_f32 = self._attempts.astype(np.float32)
        return self._attempts_f32

    @property
    def task_votes(self) -> np.ndarray:
        """Per-task label vote counts, shape ``(n_tasks, arity)``."""
        if self._task_votes is None:
            votes = np.zeros((self._n_tasks, self._arity), dtype=np.int64)
            workers, tasks = np.nonzero(self._attempts)
            np.add.at(votes, (tasks, self._labels[workers, tasks].astype(np.int64)), 1)
            self._task_votes = votes
        return self._task_votes

    # ------------------------------------------------------------------ #
    # Triple-count grids
    # ------------------------------------------------------------------ #

    def triple_count_matrix(
        self,
        worker: int,
        partners: Sequence[int] | np.ndarray,
        fast: bool = False,
    ) -> np.ndarray:
        """All ``c_{worker, x, y}`` for ``x, y`` in ``partners``, in one matmul.

        Returns a ``(len(partners), len(partners))`` float64 array of exact
        integer counts; entry ``[s, t]`` is the number of tasks attempted by
        ``worker``, ``partners[s]`` and ``partners[t]`` alike.  With
        ``fast=True`` the product runs in float32 when the task count keeps
        it exact (identical values, ~2x throughput); the default float64
        path is preserved as the reference.
        """
        partner_index = np.asarray(partners, dtype=np.int64)
        self._validate_workers(worker)
        if partner_index.size and (
            partner_index.min() < 0 or partner_index.max() >= self._n_workers
        ):
            raise DataValidationError("partner id out of range")
        if fast and self._n_tasks <= _FLOAT32_EXACT_TASK_LIMIT:
            attempts_f32 = self._attempts_as_f32
            if attempts_f32 is not None and partner_index.size >= 0.75 * self._n_workers:
                # Dense partner sets (the evaluate_all case: every other
                # worker): mask the whole matrix with one contiguous 0/1
                # multiply (== AND), run the full symmetric product, and
                # gather the requested grid — cheaper than fancy-copying
                # the partner rows first.
                masked = attempts_f32 * attempts_f32[worker]
                full = masked @ masked.T
                return full[np.ix_(partner_index, partner_index)].astype(np.float64)
            if attempts_f32 is not None:
                product = attempts_f32[partner_index] * attempts_f32[worker]
            else:
                product = (
                    self._attempts[partner_index] & self._attempts[worker]
                ).astype(np.float32)
            return (product @ product.T).astype(np.float64)
        masked = self._attempts[partner_index] & self._attempts[worker]
        converted = masked.astype(np.float64)
        return converted @ converted.T

    #: Cap on the cached full triple-count tensor: ``m^3`` float32 cells must
    #: stay under this (2^26 cells is a 256 MB ceiling, reached around
    #: m ~ 400 workers).  Above the cap :meth:`triple_count_tensor` returns
    #:  None and callers fall back to per-worker grids.
    _TRIPLE_TENSOR_CELL_LIMIT = 2**26

    def triple_count_tensor(self) -> np.ndarray | None:
        """The full triple-count tensor ``C[w, x, y] = c_{w,x,y}``, cached.

        Built progressively in one ascending pass over workers, exploiting
        the full symmetry of the counts: worker ``w``'s rows for partners
        ``x < w`` are copied from the already-computed grids
        (``C[w, x, y] = C[x, w, y]``), and only the ``x, y >= w`` block is
        computed fresh — a masked product over the suffix rows.  That takes
        the total work from ``m`` full ``m x n`` products down to the
        triangular third, while every entry stays the exact integer count
        (float32 products of 0/1 matrices are exact up to 2^24 tasks, and
        copies are copies).

        Returns None when the ``m^3`` tensor would exceed the memory cap or
        the task count would overflow float32 exactness; callers fall back
        to :meth:`triple_count_matrix` / per-worker products.
        """
        if (
            self._n_workers**3 > self._TRIPLE_TENSOR_CELL_LIMIT
            or self._n_tasks > _FLOAT32_EXACT_TASK_LIMIT
        ):
            return None
        if self._triple_tensor is not None:
            return self._triple_tensor
        m = self._n_workers
        attempts_f32 = self._attempts_as_f32
        if attempts_f32 is None:
            attempts_f32 = self._attempts.astype(np.float32)
        tensor = np.empty((m, m, m), dtype=np.float32)
        for worker in range(m):
            grid = tensor[worker]
            if worker:
                # Rows for already-processed partners, by symmetry in the
                # first two indices.
                grid[:worker, :] = tensor[:worker, worker, :]
            masked = attempts_f32[worker:] * attempts_f32[worker]
            grid[worker:, worker:] = masked @ masked.T
            if worker:
                # Mirror the remaining block, by symmetry in the partners.
                grid[worker:, :worker] = grid[:worker, worker:].T
        self._triple_tensor = tensor
        return tensor

    def triple_count_grid_full(self, worker: int) -> np.ndarray:
        """All ``c_{worker, x, y}`` over *every* worker pair, exact counts.

        The ``(m, m)`` float32 grid for one worker — a view into the cached
        tensor when it fits, otherwise one masked matrix product.  Row and
        column ``worker`` hold the (valid) degenerate counts
        ``c_{w,w,x} = c_{w,x}``; callers that only consume partner pairs
        never read them.
        """
        self._validate_workers(worker)
        tensor = self.triple_count_tensor()
        if tensor is not None:
            return tensor[worker]
        if self._n_tasks > _FLOAT32_EXACT_TASK_LIMIT:
            masked = (self._attempts & self._attempts[worker]).astype(np.float64)
        elif self._attempts_as_f32 is not None:
            masked = self._attempts_as_f32 * self._attempts_as_f32[worker]
        else:
            masked = (self._attempts & self._attempts[worker]).astype(np.float32)
        return masked @ masked.T

    # ------------------------------------------------------------------ #
    # Delta updates (incremental evaluation)
    # ------------------------------------------------------------------ #

    def _invalidate_derived(self) -> None:
        super()._invalidate_derived()
        self._attempts_f32 = None
        self._triple_tensor = None

    def _apply_delta(
        self, worker: int, task: int, label: int, previous_label: int | None
    ) -> None:
        """O(m) delta update after one ``(worker, task, label)`` ingestion.

        Every built cache — common/agreement count matrices, bitset rows,
        vote table — is patched in place instead of being recomputed, which
        is what makes streaming ingestion O(co-attempters) per response
        rather than O(m^2 n).
        """
        co_attempters = np.nonzero(self._attempts[:, task])[0]
        co_attempters = co_attempters[co_attempters != worker]
        their_labels = self._labels[co_attempters, task].astype(np.int64)

        if previous_label is None:
            self._attempts[worker, task] = True
            if self._common is not None:
                self._common[worker, co_attempters] += 1
                self._common[co_attempters, worker] += 1
                self._common[worker, worker] += 1
            if self._packed is not None:
                self._packed[worker, task >> 3] |= np.uint8(0x80 >> (task & 7))
            if self._agree is not None:
                self._agree[worker, worker] += 1
        elif self._agree is not None:
            stale = (their_labels == int(previous_label)).astype(np.int64)
            self._agree[worker, co_attempters] -= stale
            self._agree[co_attempters, worker] -= stale
        if self._agree is not None:
            fresh = (their_labels == int(label)).astype(np.int64)
            self._agree[worker, co_attempters] += fresh
            self._agree[co_attempters, worker] += fresh
        if self._task_votes is not None:
            if previous_label is not None:
                self._task_votes[task, int(previous_label)] -= 1
            self._task_votes[task, int(label)] += 1
        self._labels[worker, task] = label

    def _apply_batch_storage(
        self, events: list[tuple[int, int, int, int | None]]
    ) -> bool:
        """Absorb a micro-batch with grouped per-worker-row writes.

        Legal only while no count matrix / vote table is materialized: then
        the dense arrays are the sole authority and the whole batch reduces
        to fancy-indexed assignments per touched worker row — no per-event
        O(m) co-attempter scan.  Duplicate ``(worker, task)`` cells within
        the batch are deduplicated keeping the last label (assignment
        semantics of the sequential replay).
        """
        if (
            self._common is not None
            or self._agree is not None
            or self._task_votes is not None
        ):
            return False
        by_worker: dict[int, tuple[list[int], list[int]]] = {}
        for worker, task, label, _previous in events:
            tasks, labels = by_worker.setdefault(worker, ([], []))
            tasks.append(task)
            labels.append(label)
        for worker, (tasks, labels) in by_worker.items():
            task_array = np.asarray(tasks, dtype=np.int64)
            label_array = np.asarray(labels, dtype=np.int64)
            # Keep the last occurrence per task: unique() on the reversed
            # array returns first occurrences, i.e. the stream's last.
            _, reversed_first = np.unique(task_array[::-1], return_index=True)
            keep = task_array.size - 1 - reversed_first
            self._attempts[worker, task_array[keep]] = True
            self._labels[worker, task_array[keep]] = label_array[keep]
            if self._packed is not None:
                self._packed[worker] = np.packbits(self._attempts[worker])
        return True

    def _extend_storage(self, additional_workers: int, additional_tasks: int) -> None:
        m, n = self._attempts.shape
        grown_attempts = np.zeros(
            (m + additional_workers, n + additional_tasks), dtype=bool
        )
        grown_attempts[:m, :n] = self._attempts
        grown_labels = np.full(
            (m + additional_workers, n + additional_tasks),
            UNANSWERED,
            dtype=self._labels.dtype,
        )
        grown_labels[:m, :n] = self._labels
        self._attempts = grown_attempts
        self._labels = grown_labels
        self._attempts_f32 = None
        if additional_workers:
            # (m, m, m) tensor shapes change; task-only growth keeps the
            # counts (the added columns are empty).
            self._triple_tensor = None
        if self._packed is not None:
            n_bytes = (n + additional_tasks + 7) // 8
            grown_packed = np.zeros(
                (m + additional_workers, n_bytes), dtype=np.uint8
            )
            # Valid because np.packbits zero-pads the trailing bits of the
            # final byte: existing bytes describe the old columns verbatim.
            grown_packed[:m, : self._packed.shape[1]] = self._packed
            self._packed = grown_packed


def auto_backend_choice(
    n_workers: int,
    n_tasks: int,
    n_responses: int,
    sparse_available: bool | None = None,
    arity: int = 2,
) -> str:
    """Cost model behind ``backend="auto"``: pick the cheapest viable backend.

    The decision weighs the grid size ``cells = m * n`` against the observed
    fill ``density = n_responses / cells``:

    * ``m > AUTO_DENSE_WORKER_LIMIT`` → ``"dict"`` — every vectorized
      backend caches O(m^2) pair-count matrices, which worker-heavy
      matrices cannot afford regardless of fill;
    * grid fits densely (``cells <= AUTO_DENSE_CELL_LIMIT``):
      ``"dense"``, except that large very-sparse grids
      (``cells > AUTO_SPARSE_MIN_CELLS`` and
      ``density < AUTO_SPARSE_DENSITY``) take ``"sparse"`` when scipy is
      importable — there the CSR pair-count products and the
      fill-restricted triple grids do work proportional to
      ``density * m * n`` instead of ``m * n`` per worker;
    * grid does *not* fit densely: ``"sparse"`` when it is sparse enough
      and scipy is importable, else ``"bitset"`` while the packed planes —
      ``arity + 1`` of them, one bit per cell each — stay under the
      binary-equivalent ``AUTO_BITSET_CELL_LIMIT`` budget, else ``"dict"``.

    An explicit ``backend=`` request bypasses this model entirely
    (:func:`resolve_backend` honours it even beyond every limit above).
    ``sparse_available`` overrides the scipy-importability probe (tests use
    this to pin both branches deterministically).
    """
    if sparse_available is None:
        from repro.data.sparse_backend import scipy_available

        sparse_available = scipy_available()
    cells = n_workers * n_tasks
    if n_workers > AUTO_DENSE_WORKER_LIMIT:
        return "dict"
    density = n_responses / cells if cells else 1.0
    sparse_enough = density < AUTO_SPARSE_DENSITY
    if cells <= AUTO_DENSE_CELL_LIMIT:
        if sparse_enough and sparse_available and cells > AUTO_SPARSE_MIN_CELLS:
            return "sparse"
        return "dense"
    if sparse_enough and sparse_available:
        return "sparse"
    if cells * (arity + 1) <= 3 * AUTO_BITSET_CELL_LIMIT:
        return "bitset"
    return "dict"


def resolve_backend(
    matrix: ResponseMatrix,
    backend: str | AgreementBackendBase | None = "auto",
) -> AgreementBackendBase | None:
    """Resolve a backend knob into a concrete backend (or None for dict).

    Parameters
    ----------
    matrix:
        The response data the backend will serve.
    backend:
        ``"dense"`` forces the vectorized dense backend, ``"sparse"`` the
        scipy.sparse CSR backend, ``"bitset"`` the packed-rows low-memory
        backend, ``"dict"`` the original dict-of-dicts path, and ``"auto"``
        (and None) applies the :func:`auto_backend_choice` cost model over
        the grid size and observed fill.  An explicit choice always wins
        (even beyond the auto limits), with one documented degradation:
        ``"sparse"`` without an importable scipy falls back to the dense
        backend (or bitset when the dense arrays cannot be materialized) —
        counts, and therefore estimates, are identical either way.  An
        existing backend instance is passed through unchanged (the
        incremental evaluator reuses its delta-updated backend this way).
    """
    if isinstance(backend, AgreementBackendBase):
        return backend
    if backend is None:
        backend = "auto"
    if backend not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
        )
    if backend == "auto":
        backend = auto_backend_choice(
            matrix.n_workers,
            matrix.n_tasks,
            matrix.n_responses,
            arity=matrix.arity,
        )
    if backend == "dict":
        return None
    if backend == "sparse":
        from repro.data.sparse_backend import SparseAgreementBackend, scipy_available

        if scipy_available():
            return SparseAgreementBackend.from_matrix(matrix)
        # Graceful degradation when scipy is absent: serve the same exact
        # counts from a scipy-free backend instead of failing.
        backend = (
            "dense"
            if matrix.n_workers * matrix.n_tasks <= AUTO_DENSE_CELL_LIMIT
            and matrix.n_workers <= AUTO_DENSE_WORKER_LIMIT
            else "bitset"
        )
    if backend == "bitset":
        from repro.data.sparse_backend import BitsetAgreementBackend

        return BitsetAgreementBackend.from_matrix(matrix)
    return DenseAgreementBackend.from_matrix(matrix)


def resolve_triple_backend(
    matrix: ResponseMatrix,
    backend: str | AgreementBackendBase | None = "auto",
) -> AgreementBackendBase | None:
    """Backend resolution for queries scoped to a single worker triple.

    Building a vectorized backend costs O(m*n) (plus O(m^2 n) on the first
    pair read), which is pure waste when the caller —
    ``evaluate_three_workers``, ``KaryEstimator.evaluate`` — only ever reads
    three workers.  Under ``"auto"`` the vectorized path is therefore used
    only when the matrix itself is triple-sized (the common Algorithm A1/A3
    shape, where the build is trivially cheap); an explicit backend request
    is still honoured.
    """
    if backend in ("auto", None) and matrix.n_workers > 16:
        return None
    return resolve_backend(matrix, backend)
