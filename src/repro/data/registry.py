"""Dataset registry: name -> generator for the paper's real-data stand-ins.

Gives benches, examples and tests a single place to enumerate the datasets
used in the paper's Figures 3, 4 and 5(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.data import real_datasets
from repro.data.response_matrix import ResponseMatrix

__all__ = ["DatasetSpec", "DATASET_REGISTRY", "dataset_names", "load_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata and loader for one dataset stand-in.

    Attributes
    ----------
    name:
        Short identifier used on the command line and in reports.
    description:
        One-line description including the paper's dimensions.
    arity:
        Label arity of the loaded matrix (after any paper-prescribed
        reduction).
    used_in:
        The paper figures this dataset appears in.
    loader:
        Zero-or-seed-argument callable returning the :class:`ResponseMatrix`.
    """

    name: str
    description: str
    arity: int
    used_in: tuple[str, ...]
    loader: Callable[..., ResponseMatrix]


DATASET_REGISTRY: dict[str, DatasetSpec] = {
    "ic": DatasetSpec(
        name="ic",
        description="Image Comparison (48 tasks x 19 workers, binary, regular -> 20% thinned)",
        arity=2,
        used_in=("fig3", "fig4"),
        loader=real_datasets.image_comparison,
    ),
    "rte": DatasetSpec(
        name="rte",
        description="Recognizing Textual Entailment (800 tasks x 164 workers, binary, sparse)",
        arity=2,
        used_in=("fig3", "fig4"),
        loader=real_datasets.rte_entailment,
    ),
    "tem": DatasetSpec(
        name="tem",
        description="Temporal ordering (462 tasks x 76 workers, binary, sparse)",
        arity=2,
        used_in=("fig3", "fig4"),
        loader=real_datasets.temporal_ordering,
    ),
    "mooc": DatasetSpec(
        name="mooc",
        description="MOOC peer grading (6-ary grades reduced to 3-ary)",
        arity=3,
        used_in=("fig5c",),
        loader=real_datasets.mooc_peer_grading,
    ),
    "wsd": DatasetSpec(
        name="wsd",
        description="Word sense disambiguation (3-ary with degenerate class, reduced to binary)",
        arity=2,
        used_in=("fig5c",),
        loader=real_datasets.word_sense_disambiguation,
    ),
    "ws": DatasetSpec(
        name="ws",
        description="Word similarity (11-ary ratings reduced to binary)",
        arity=2,
        used_in=("fig5c",),
        loader=real_datasets.word_similarity,
    ),
}


def dataset_names() -> list[str]:
    """Names of all registered datasets."""
    return sorted(DATASET_REGISTRY)


def load_dataset(name: str, seed: int | None = None) -> ResponseMatrix:
    """Load a registered dataset stand-in by name.

    Parameters
    ----------
    name:
        One of :func:`dataset_names`.
    seed:
        Optional seed override for the generator; the registered default is
        used when omitted, so repeated calls return identical data.
    """
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise ConfigurationError(
            f"unknown dataset '{name}'; available: {', '.join(dataset_names())}"
        )
    spec = DATASET_REGISTRY[key]
    if seed is None:
        return spec.loader()
    return spec.loader(seed=seed)
