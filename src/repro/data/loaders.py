"""Serialization of :class:`~repro.data.response_matrix.ResponseMatrix`.

Two plain-text formats are supported:

* **CSV** — one response per line, ``worker,task,label``; gold labels go in a
  companion CSV with lines ``task,label``.  This matches how public crowd
  datasets (e.g. the Snow et al. 2008 collections) are usually distributed.
* **JSON** — a single self-describing document with dimensions, responses and
  gold labels, convenient for round-tripping simulated datasets.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.exceptions import DataValidationError
from repro.data.response_matrix import ResponseMatrix

__all__ = [
    "save_response_matrix_csv",
    "load_response_matrix_csv",
    "save_response_matrix_json",
    "load_response_matrix_json",
]


def save_response_matrix_csv(
    matrix: ResponseMatrix,
    responses_path: str | Path,
    gold_path: str | Path | None = None,
) -> None:
    """Write responses (and optionally gold labels) as CSV files."""
    responses_path = Path(responses_path)
    with responses_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["worker", "task", "label"])
        for worker, task, label in matrix.iter_responses():
            writer.writerow([worker, task, label])
    if gold_path is not None and matrix.has_gold:
        gold_path = Path(gold_path)
        with gold_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["task", "label"])
            for task, label in sorted(matrix.gold_labels.items()):
                writer.writerow([task, label])


def load_response_matrix_csv(
    responses_path: str | Path,
    gold_path: str | Path | None = None,
    n_workers: int | None = None,
    n_tasks: int | None = None,
    arity: int | None = None,
) -> ResponseMatrix:
    """Load a :class:`ResponseMatrix` from CSV files written by
    :func:`save_response_matrix_csv` (or any file with the same columns)."""
    responses_path = Path(responses_path)
    records: list[tuple[int, int, int]] = []
    with responses_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"worker", "task", "label"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise DataValidationError(
                f"response CSV must have columns {sorted(required)}, "
                f"got {reader.fieldnames}"
            )
        for row in reader:
            records.append((int(row["worker"]), int(row["task"]), int(row["label"])))
    gold: dict[int, int] | None = None
    if gold_path is not None:
        gold = {}
        with Path(gold_path).open(newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or not {"task", "label"}.issubset(
                reader.fieldnames
            ):
                raise DataValidationError(
                    "gold CSV must have columns ['task', 'label'], "
                    f"got {reader.fieldnames}"
                )
            for row in reader:
                gold[int(row["task"])] = int(row["label"])
    return ResponseMatrix.from_records(
        records, n_workers=n_workers, n_tasks=n_tasks, arity=arity, gold=gold
    )


def save_response_matrix_json(matrix: ResponseMatrix, path: str | Path) -> None:
    """Write the matrix as a single self-describing JSON document."""
    document = {
        "n_workers": matrix.n_workers,
        "n_tasks": matrix.n_tasks,
        "arity": matrix.arity,
        "responses": [
            {"worker": worker, "task": task, "label": label}
            for worker, task, label in matrix.iter_responses()
        ],
        "gold": {str(task): label for task, label in matrix.gold_labels.items()},
    }
    Path(path).write_text(json.dumps(document, indent=2))


def load_response_matrix_json(path: str | Path) -> ResponseMatrix:
    """Load a matrix previously written by :func:`save_response_matrix_json`."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise DataValidationError(f"file {path} is not valid JSON: {exc}") from exc
    for key in ("n_workers", "n_tasks", "arity", "responses"):
        if key not in document:
            raise DataValidationError(f"JSON document is missing the '{key}' field")
    matrix = ResponseMatrix(
        n_workers=int(document["n_workers"]),
        n_tasks=int(document["n_tasks"]),
        arity=int(document["arity"]),
    )
    for record in document["responses"]:
        matrix.add_response(
            int(record["worker"]), int(record["task"]), int(record["label"])
        )
    for task, label in document.get("gold", {}).items():
        matrix.set_gold_label(int(task), int(label))
    return matrix
