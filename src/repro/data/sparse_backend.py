"""Sparse and low-memory agreement-statistics backends.

Real crowdsourcing matrices live in the *sparse* regime: each worker answers
a small fraction of the tasks, so the dense backend's O(m*n) indicator/label
arrays (and the O(m^2 n) masked products behind its triple grids) spend
almost all of their work on empty cells.  This module provides two backends
that exploit the observed fill while serving the **same exact integer
counts** — and therefore bit-identical estimates — as the dense and dict
paths:

* :class:`BitsetAgreementBackend` — keeps *only* packed bitset rows: one
  attempt plane plus one plane per label value, each one bit per cell
  (``(arity + 1) / 8`` bytes per cell versus the dense backend's 3 bytes).
  Pairwise counts come from AND + popcount over the packed rows; triple
  grids from fill-restricted matrix products (below).  This is the
  low-memory fallback for grids whose dense arrays cannot be materialized.
* :class:`SparseAgreementBackend` — the bitset storage plus a CSR index of
  the responses; the full pairwise common/agreement count matrices are
  built with scipy.sparse CSR matrix products whose work scales with the
  fill (O(sum of row-overlap) instead of O(m^2 n) dense flops).  Requires
  scipy; :func:`~repro.data.dense_backend.resolve_backend` degrades the
  request gracefully when scipy is absent.

Fill-restricted triple grids
----------------------------

The Lemma-4 grids ``c_{w, x, y}`` only involve tasks worker ``w`` attempted:
both backends therefore gather the partners' attempt bits at exactly those
``c_w = density * n`` columns and run one ``(l, c_w) @ (c_w, l)`` product —
work proportional to ``density * m * n * observed fill`` per worker instead
of the dense backend's full ``m * n`` masked product.  Products of 0/1
matrices are exact integers (float32 up to 2^24 tasks, float64 beyond), so
the grids equal the dense/dict values bit for bit.

Both backends inherit every shared query (scalar pairs/triples, the clamped
rate caches, vote table, majority-disagreement proxy, A3 count tensor) from
:class:`~repro.data.dense_backend.AgreementBackendBase` and implement the
same O(row) ``apply_response`` delta update the incremental evaluator uses.
Both also implement the shared-state export protocol behind ``shards=``
(:mod:`repro.core.parallel`): the packed bit planes, count matrices and
vote table ship through shared memory, so process shards attach views of
the precomputed state instead of rebuilding it — the sparse backend's CSR
index never leaves the parent (it is consumed building the count matrices
before export).  See the :class:`~repro.core.m_worker.MWorkerEstimator`
determinism contract.  Like the dense backend, both are
footprint-capable: the incremental evaluator's dependency ledger derives
each recompute's read set analytically (:mod:`repro.core.deps`), so
dependency-tracked recomputes shard on these backends too.

New backends (like these two) must register in the differential suite's
path tables (``tests/property/test_cross_backend_differential.py``) so the
bit-identity contract is enforced on every public entry point.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.data.dense_backend import (
    _FLOAT32_EXACT_TASK_LIMIT,
    _popcount,
    AgreementBackendBase,
)
from repro.data.response_matrix import UNANSWERED, ResponseMatrix

__all__ = [
    "BitsetAgreementBackend",
    "SparseAgreementBackend",
    "scipy_available",
]

#: Transient-memory bound for chunked bit unpacking: at most this many
#: unpacked cells (1 byte each) are materialized at a time.
_UNPACK_CHUNK_CELLS: int = 1 << 25

#: Test hook: force :func:`scipy_available` to a fixed answer so both the
#: scipy-present and scipy-absent code paths can be exercised from one
#: environment.  ``None`` means "probe the real import".
_SCIPY_OVERRIDE: bool | None = None


def scipy_available() -> bool:
    """Whether ``scipy.sparse`` is importable (the ``repro[sparse]`` extra)."""
    if _SCIPY_OVERRIDE is not None:
        return bool(_SCIPY_OVERRIDE)
    try:
        import scipy.sparse  # noqa: F401
    except ImportError:  # pragma: no cover - depends on the environment
        return False
    return True


class BitsetAgreementBackend(AgreementBackendBase):
    """Packed-rows-only agreement backend (the low-memory mode).

    Storage is ``arity + 1`` bit planes of shape ``(m, ceil(n / 8))``: one
    attempt plane and one plane per label value (a worker's bit is set in
    exactly the plane of the label they gave).  Every count is computed from
    these planes:

    * pairwise common counts: AND + popcount between attempt rows;
    * pairwise agreement counts: AND + popcount within each label plane,
      summed over planes;
    * triple counts: AND + popcount across three attempt rows (inherited),
      or fill-restricted products for whole grids (module docstring);
    * vote table / majority rates / A3 tensor: the generic row-accessor
      implementations of the base class over unpacked rows.

    All counts are exact integers, so estimates are bit-identical to the
    dense and dict backends; the differential suite enforces this.
    """

    name = "bitset"
    supports_shared_export = True

    def __init__(self, matrix: ResponseMatrix) -> None:
        self._n_workers = matrix.n_workers
        self._n_tasks = matrix.n_tasks
        self._arity = matrix.arity
        m, n = self._n_workers, self._n_tasks
        n_bytes = (n + 7) // 8
        self._packed = np.zeros((m, n_bytes), dtype=np.uint8)
        self._packed_labels = np.zeros((self._arity, m, n_bytes), dtype=np.uint8)
        row = np.zeros(n, dtype=bool)
        for worker in range(m):
            responses = matrix.worker_responses(worker)
            if not responses:
                continue
            tasks = np.fromiter(responses.keys(), dtype=np.int64, count=len(responses))
            labels = np.fromiter(
                responses.values(), dtype=np.int64, count=len(responses)
            )
            row[:] = False
            row[tasks] = True
            self._packed[worker] = np.packbits(row)
            for label in np.unique(labels):
                row[:] = False
                row[tasks[labels == label]] = True
                self._packed_labels[label, worker] = np.packbits(row)
            self._ingest_row(worker, tasks, labels)
        self._init_caches()

    def _ingest_row(self, worker: int, tasks: np.ndarray, labels: np.ndarray) -> None:
        """Hook for subclasses that keep extra per-row structure.

        Called once per non-empty worker row during construction with the
        raw (unsorted) task/label arrays, so a subclass can build its own
        index without re-iterating the response store.
        """

    @classmethod
    def from_matrix(cls, matrix: ResponseMatrix) -> "BitsetAgreementBackend":
        """Build a backend snapshot of ``matrix``."""
        return cls(matrix)

    # ------------------------------------------------------------------ #
    # Shared-state export
    # ------------------------------------------------------------------ #

    def export_shared_state(self) -> dict[str, np.ndarray]:
        """The packed planes plus every precomputed count a shard reads.

        Materializes the count matrices and vote table as a side effect
        (once, in the parent) so shards never pay the popcount/CSR builds;
        for the sparse subclass this also consumes and releases the CSR
        index, which therefore never needs exporting.  The durable
        snapshot layer (:mod:`repro.serve.durable`) persists exactly these
        keys, which is also why a sparse-backed session restores without
        scipy present: the CSR index was consumed before export, so
        :meth:`attach_shared_state` needs only the packed planes and
        counts.
        """
        return {
            "packed": self._packed,
            "packed_labels": self._packed_labels,
            "common": self.common_counts,
            "agree": self.agreement_counts,
            "task_votes": self.task_votes,
        }

    @classmethod
    def attach_shared_state(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        n_workers: int,
        n_tasks: int,
        arity: int,
    ) -> "BitsetAgreementBackend":
        self = cls.__new__(cls)
        self._n_workers = n_workers
        self._n_tasks = n_tasks
        self._arity = arity
        self._packed = arrays["packed"]
        self._packed_labels = arrays["packed_labels"]
        self._init_caches(
            common_counts=arrays["common"], agreement_counts=arrays["agree"]
        )
        self._task_votes = arrays["task_votes"]
        return self

    # ------------------------------------------------------------------ #
    # Storage hooks
    # ------------------------------------------------------------------ #

    @property
    def _packed_rows(self) -> np.ndarray:
        return self._packed

    def _attempt_row(self, worker: int) -> np.ndarray:
        return np.unpackbits(self._packed[worker], count=self._n_tasks).view(bool)

    def _label_row(self, worker: int) -> np.ndarray:
        row = np.full(self._n_tasks, UNANSWERED, dtype=np.int16)
        for label in range(self._arity):
            bits = np.unpackbits(
                self._packed_labels[label, worker], count=self._n_tasks
            ).view(bool)
            row[bits] = label
        return row

    # ------------------------------------------------------------------ #
    # Pairwise count matrices (popcounts over the packed planes)
    # ------------------------------------------------------------------ #

    def _pairwise_popcounts(self, plane: np.ndarray) -> np.ndarray:
        """``counts[i, j] = popcount(plane[i] & plane[j])`` for all pairs."""
        m = plane.shape[0]
        counts = np.empty((m, m), dtype=np.int64)
        for row in range(m):
            counts[row] = _popcount(plane & plane[row]).sum(axis=1, dtype=np.int64)
        return counts

    @property
    def common_counts(self) -> np.ndarray:
        if self._common is None:
            self._common = self._pairwise_popcounts(self._packed)
        return self._common

    @property
    def agreement_counts(self) -> np.ndarray:
        if self._agree is None:
            agree = np.zeros((self._n_workers, self._n_workers), dtype=np.int64)
            for label in range(self._arity):
                agree += self._pairwise_popcounts(self._packed_labels[label])
            self._agree = agree
        return self._agree

    # ------------------------------------------------------------------ #
    # Fill-restricted triple-count grids
    # ------------------------------------------------------------------ #

    def _attempt_submatrix(self, worker: int, row_index: np.ndarray) -> np.ndarray:
        """0/1 matrix of the requested rows' attempts at ``worker``'s tasks.

        Shape ``(len(row_index), c_worker)``; the grid product over it
        yields exact triple counts because every count is bounded by the
        task count (float32 exact up to 2^24 tasks, float64 beyond).  Rows
        are unpacked in bounded chunks so the transient footprint never
        exceeds :data:`_UNPACK_CHUNK_CELLS` cells.
        """
        tasks = np.nonzero(self._attempt_row(worker))[0]
        dtype = (
            np.float32 if self._n_tasks <= _FLOAT32_EXACT_TASK_LIMIT else np.float64
        )
        out = np.empty((row_index.size, tasks.size), dtype=dtype)
        chunk = max(1, _UNPACK_CHUNK_CELLS // max(1, self._n_tasks))
        for start in range(0, row_index.size, chunk):
            block = np.unpackbits(
                self._packed[row_index[start : start + chunk]],
                axis=1,
                count=self._n_tasks,
            )
            out[start : start + chunk] = block[:, tasks]
        return out

    def triple_count_matrix(
        self,
        worker: int,
        partners: Sequence[int] | np.ndarray,
        fast: bool = False,
    ) -> np.ndarray:
        """All ``c_{worker, x, y}`` for ``x, y`` in ``partners``.

        One fill-restricted product (module docstring); ``fast`` is
        accepted for interface compatibility and ignored — this path is
        already the cheap one, and its counts are exact either way.
        """
        partner_index = np.asarray(partners, dtype=np.int64)
        self._validate_workers(worker)
        if partner_index.size and (
            partner_index.min() < 0 or partner_index.max() >= self._n_workers
        ):
            raise DataValidationError("partner id out of range")
        sub = self._attempt_submatrix(worker, partner_index)
        return (sub @ sub.T).astype(np.float64)

    def triple_count_grid_full(self, worker: int) -> np.ndarray:
        """All ``c_{worker, x, y}`` over *every* worker pair, exact counts."""
        self._validate_workers(worker)
        sub = self._attempt_submatrix(worker, np.arange(self._n_workers))
        return sub @ sub.T

    # ------------------------------------------------------------------ #
    # Delta updates (incremental evaluation)
    # ------------------------------------------------------------------ #

    def _apply_delta(
        self, worker: int, task: int, label: int, previous_label: int | None
    ) -> None:
        """O(m) delta update mirroring the dense backend's semantics.

        The packed planes are the authoritative storage here, so the
        attempt/label bits are always patched; the lazily-built count
        matrices and vote table are patched only when materialized (exactly
        as the dense backend patches its caches).
        """
        byte_index = task >> 3
        bit = np.uint8(0x80 >> (task & 7))
        attempted = (self._packed[:, byte_index] & bit) != 0
        co_attempters = np.nonzero(attempted)[0]
        co_attempters = co_attempters[co_attempters != worker]
        their_labels = np.zeros(co_attempters.size, dtype=np.int64)
        for value in range(1, self._arity):
            marked = (
                self._packed_labels[value][co_attempters, byte_index] & bit
            ) != 0
            their_labels[marked] = value

        if previous_label is None:
            self._packed[worker, byte_index] |= bit
            if self._common is not None:
                self._common[worker, co_attempters] += 1
                self._common[co_attempters, worker] += 1
                self._common[worker, worker] += 1
            if self._agree is not None:
                self._agree[worker, worker] += 1
        else:
            self._packed_labels[int(previous_label)][worker, byte_index] &= np.uint8(
                0xFF ^ int(bit)
            )
            if self._agree is not None:
                stale = (their_labels == int(previous_label)).astype(np.int64)
                self._agree[worker, co_attempters] -= stale
                self._agree[co_attempters, worker] -= stale
        if self._agree is not None:
            fresh = (their_labels == int(label)).astype(np.int64)
            self._agree[worker, co_attempters] += fresh
            self._agree[co_attempters, worker] += fresh
        if self._task_votes is not None:
            if previous_label is not None:
                self._task_votes[task, int(previous_label)] -= 1
            self._task_votes[task, int(label)] += 1
        self._packed_labels[int(label)][worker, byte_index] |= bit

    def _apply_batch_storage(
        self, events: list[tuple[int, int, int, int | None]]
    ) -> bool:
        """Absorb a micro-batch with grouped per-worker bit writes.

        Legal only while no count matrix / vote table is materialized (the
        packed planes are then the sole authority).  Per touched cell only
        the *net* transition matters for the planes — the pre-batch label
        (the first event's ``previous``) is cleared and the last label set —
        so the per-event O(m) co-attempter scans vanish entirely.
        """
        if (
            self._common is not None
            or self._agree is not None
            or self._task_votes is not None
        ):
            return False
        # (worker, task) -> [pre-batch previous, final label]; dict order
        # preserves the stream order within each worker row.
        net: dict[tuple[int, int], list[int | None]] = {}
        for worker, task, label, previous in events:
            cell = net.get((worker, task))
            if cell is None:
                net[(worker, task)] = [previous, label]
            else:
                cell[1] = label
        for (worker, task), (previous, label) in net.items():
            byte_index = task >> 3
            bit = np.uint8(0x80 >> (task & 7))
            if previous is None:
                self._packed[worker, byte_index] |= bit
            elif int(previous) == int(label):
                continue
            else:
                self._packed_labels[int(previous)][worker, byte_index] &= np.uint8(
                    0xFF ^ int(bit)
                )
            self._packed_labels[int(label)][worker, byte_index] |= bit
        return True

    def _extend_storage(self, additional_workers: int, additional_tasks: int) -> None:
        m = self._packed.shape[0]
        n_bytes = (self._n_tasks + additional_tasks + 7) // 8
        grown = np.zeros((m + additional_workers, n_bytes), dtype=np.uint8)
        # np.packbits zero-pads the trailing bits of the final byte, so the
        # existing bytes describe the old columns verbatim.
        grown[:m, : self._packed.shape[1]] = self._packed
        self._packed = grown
        grown_labels = np.zeros(
            (self._arity, m + additional_workers, n_bytes), dtype=np.uint8
        )
        grown_labels[:, :m, : self._packed_labels.shape[2]] = self._packed_labels
        self._packed_labels = grown_labels


class SparseAgreementBackend(BitsetAgreementBackend):
    """scipy.sparse CSR backend for very large sparse grids.

    Inherits the bitset storage (packed planes drive the triple counts, the
    delta updates and every row-accessor query) and adds a CSR index of the
    responses used exclusively to build the full pairwise common/agreement
    count matrices with sparse matrix products — O(fill)-driven work where
    the bitset popcount build is O(m^2 n / 8) and the dense build O(m^2 n).

    Requires scipy (install the ``repro[sparse]`` extra);
    :func:`~repro.data.dense_backend.resolve_backend` degrades a
    ``backend="sparse"`` request to a scipy-free backend with identical
    counts when the import is unavailable, so only direct construction
    raises.
    """

    name = "sparse"

    def __init__(self, matrix: ResponseMatrix) -> None:
        if not scipy_available():
            raise ConfigurationError(
                "the sparse backend requires scipy; install the "
                "'repro[sparse]' extra or pick backend='bitset'"
            )
        # Filled by the _ingest_row hook during the single construction pass
        # of the bitset plane build (one (worker, tasks, labels) triple per
        # non-empty row, in ascending worker order).
        self._pending_rows: list[tuple[int, np.ndarray, np.ndarray]] = []
        super().__init__(matrix)
        # Assemble the CSR structure of the responses (rows = workers,
        # sorted column indices), consumed only by the one-shot count-matrix
        # builds below.
        m = self._n_workers
        lengths = np.zeros(m, dtype=np.int64)
        index_chunks: list[np.ndarray] = []
        label_chunks: list[np.ndarray] = []
        for worker, tasks, labels in self._pending_rows:
            lengths[worker] = tasks.size
            order = np.argsort(tasks)
            index_chunks.append(tasks[order])
            label_chunks.append(labels[order])
        del self._pending_rows
        self._csr_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(lengths)]
        )
        self._csr_indices = (
            np.concatenate(index_chunks)
            if index_chunks
            else np.zeros(0, dtype=np.int64)
        )
        self._csr_labels = (
            np.concatenate(label_chunks)
            if label_chunks
            else np.zeros(0, dtype=np.int64)
        )

    def _ingest_row(self, worker: int, tasks: np.ndarray, labels: np.ndarray) -> None:
        self._pending_rows.append((worker, tasks, labels))

    @classmethod
    def attach_shared_state(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        n_workers: int,
        n_tasks: int,
        arity: int,
    ) -> "SparseAgreementBackend":
        """Attach with the CSR index marked consumed.

        The exported state already contains the CSR-built count matrices,
        so an attached backend never runs a sparse product — it does not
        even need scipy, which keeps shard processes importable on
        scipy-free hosts evaluating a parent-side sparse backend.
        """
        self = super().attach_shared_state(
            arrays, n_workers=n_workers, n_tasks=n_tasks, arity=arity
        )
        self._csr_indptr = None
        self._csr_indices = None
        self._csr_labels = None
        return self

    def _csr_pair_product(
        self, indices: np.ndarray, indptr: np.ndarray
    ) -> np.ndarray:
        """``(M @ M.T).toarray()`` for the all-ones CSR with this pattern."""
        from scipy import sparse

        csr = sparse.csr_matrix(
            (np.ones(indices.size, dtype=np.int64), indices, indptr),
            shape=(self._n_workers, self._n_tasks),
        )
        return np.asarray((csr @ csr.T).toarray(), dtype=np.int64)

    def _release_csr_if_done(self) -> None:
        """Drop the CSR arrays once both count matrices are materialized.

        They are consumed only by the one-shot builds below and are never
        patched (``apply_response`` materializes both matrices first, after
        which the packed planes are the only authoritative storage), so on
        the backend's target workloads keeping them would pin ~16 bytes of
        dead index data per response for the backend's lifetime.
        """
        if self._common is not None and self._agree is not None:
            self._csr_indices = None
            self._csr_labels = None
            self._csr_indptr = None

    @property
    def common_counts(self) -> np.ndarray:
        if self._common is None:
            self._common = self._csr_pair_product(
                self._csr_indices, self._csr_indptr
            )
            self._release_csr_if_done()
        return self._common

    @property
    def agreement_counts(self) -> np.ndarray:
        if self._agree is None:
            # One product per label value over just that label's entries:
            # scipy SpGEMM works proportionally to the *stored* pattern, so
            # the sliced per-label CSRs (no explicit zeros) keep the total
            # agreement build at one full-fill's worth of work instead of
            # arity x full fill.
            agree = np.zeros((self._n_workers, self._n_workers), dtype=np.int64)
            rows = np.repeat(
                np.arange(self._n_workers), np.diff(self._csr_indptr)
            )
            for label in range(self._arity):
                mask = self._csr_labels == label
                label_indptr = np.concatenate(
                    [
                        np.zeros(1, dtype=np.int64),
                        np.cumsum(
                            np.bincount(rows[mask], minlength=self._n_workers)
                        ),
                    ]
                )
                agree += self._csr_pair_product(
                    self._csr_indices[mask], label_indptr
                )
            self._agree = agree
            self._release_csr_if_done()
        return self._agree

    def apply_response(
        self, worker: int, task: int, label: int, previous_label: int | None = None
    ) -> None:
        """Delta update; materializes the CSR-built matrices first.

        The CSR index arrays describe the *construction-time* responses and
        are never patched; the count matrices must therefore exist before
        the first delta lands so the update is applied to them in place
        (afterwards the packed planes are the only authoritative storage,
        exactly as in the bitset backend).
        """
        if not (previous_label is not None and int(previous_label) == int(label)):
            self.common_counts
            self.agreement_counts
        super().apply_response(worker, task, label, previous_label)

    def apply_responses(
        self, events: Sequence[tuple[int, int, int, int | None]]
    ) -> int:
        """Batched delta update; materializes the CSR-built matrices first.

        Same reasoning as :meth:`apply_response`: the CSR index describes
        the construction-time responses only, so both count matrices must
        exist before the first delta lands (this also means the grouped
        storage-only fast path never applies here — the materialized
        matrices are patched per event, exactly like the singleton path).
        """
        if any(
            not (previous is not None and int(previous) == int(label))
            for _worker, _task, label, previous in events
        ):
            self.common_counts
            self.agreement_counts
        return super().apply_responses(events)

    def _extend_storage(self, additional_workers: int, additional_tasks: int) -> None:
        super()._extend_storage(additional_workers, additional_tasks)
        # Task growth leaves the CSR index valid (column count is read from
        # the backend shape at product time); new workers are empty rows.
        if additional_workers and self._csr_indptr is not None:
            self._csr_indptr = np.concatenate(
                [
                    self._csr_indptr,
                    np.full(
                        additional_workers, self._csr_indptr[-1], dtype=np.int64
                    ),
                ]
            )
