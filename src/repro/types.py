"""Core value types shared across the library.

The central objects are :class:`ConfidenceInterval` (the paper's deliverable
for each worker error rate or confusion-matrix entry) and the per-worker
result records returned by the estimators in :mod:`repro.core`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = [
    "EstimateStatus",
    "ConfidenceInterval",
    "WorkerErrorEstimate",
    "ResponseProbabilityEstimate",
    "KaryWorkerEstimate",
    "TripleEstimate",
]


class EstimateStatus(enum.Enum):
    """Quality flag attached to every estimate the library produces.

    OK
        The estimate was produced without numerical intervention.
    CLAMPED
        Agreement rates or probabilities had to be clamped away from a
        singularity (e.g. an agreement rate at or below 1/2); the estimate is
        usable but less reliable.
    DEGENERATE
        The data did not support a meaningful estimate (e.g. a worker shares
        no tasks with any usable pair); the reported interval spans the whole
        parameter range.
    """

    OK = "ok"
    CLAMPED = "clamped"
    DEGENERATE = "degenerate"


@dataclass(frozen=True)
class ConfidenceInterval:
    """A c-confidence interval ``[lower, upper]`` around ``mean``.

    Attributes
    ----------
    mean:
        The point estimate at the centre of the interval (before clipping).
    lower, upper:
        Interval end points, clipped to the valid parameter range
        (``[0, 1]`` for probabilities).
    confidence:
        The nominal confidence level ``c`` in ``(0, 1)``.
    deviation:
        The standard deviation of the estimator from Theorem 1 (pre-clipping
        half-width is ``z_t * deviation``).
    """

    mean: float
    lower: float
    upper: float
    confidence: float
    deviation: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ValueError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )
        if self.upper < self.lower:
            raise ValueError(
                f"upper bound {self.upper} is below lower bound {self.lower}"
            )

    @property
    def size(self) -> float:
        """Width of the interval, the paper's 'size of interval' metric."""
        return self.upper - self.lower

    @property
    def half_width(self) -> float:
        """Half of the interval width."""
        return 0.5 * self.size

    def contains(self, value: float) -> bool:
        """Return True if ``value`` lies inside the closed interval."""
        return self.lower <= value <= self.upper

    def clipped(self, lo: float = 0.0, hi: float = 1.0) -> "ConfidenceInterval":
        """Return a copy with bounds clipped to ``[lo, hi]``."""
        return ConfidenceInterval(
            mean=min(max(self.mean, lo), hi),
            lower=min(max(self.lower, lo), hi),
            upper=min(max(self.upper, lo), hi),
            confidence=self.confidence,
            deviation=self.deviation,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"(mean={self.mean:.4f}, c={self.confidence:.2f})"
        )


@dataclass(frozen=True)
class TripleEstimate:
    """Result of evaluating one worker inside one triple (Algorithm A2 step 2).

    Attributes
    ----------
    worker:
        Identifier of the worker being evaluated.
    partners:
        The two other workers forming the triple.
    error_rate:
        The point estimate ``p_{k,i}`` from Eq. (1).
    deviation:
        Standard deviation ``Dev_{k,i}`` of the estimate.
    derivatives:
        Partial derivatives of the estimate with respect to the agreement
        rates ``q_{i,j1}`` and ``q_{i,j2}``, keyed by partner id.
    status:
        Numerical-quality flag for the estimate.
    """

    worker: int
    partners: tuple[int, int]
    error_rate: float
    deviation: float
    derivatives: Mapping[int, float]
    status: EstimateStatus = EstimateStatus.OK


@dataclass(frozen=True)
class WorkerErrorEstimate:
    """Final per-worker output of the binary estimators (Algorithms A1/A2).

    Attributes
    ----------
    worker:
        Worker identifier.
    interval:
        The c-confidence interval on the worker's error rate.
    n_tasks:
        Number of tasks the worker attempted in the data used.
    triples:
        The per-triple estimates that were aggregated (the plain 3-worker
        algorithm reports its single implicit triple here).
    weights:
        The linear weights used to combine the triple estimates (Lemma 5 or
        uniform), aligned with ``triples``.
    status:
        Worst numerical-quality flag encountered while producing the result.
    """

    worker: int
    interval: ConfidenceInterval
    n_tasks: int
    triples: Sequence[TripleEstimate] = field(default_factory=tuple)
    weights: Sequence[float] = field(default_factory=tuple)
    status: EstimateStatus = EstimateStatus.OK

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.triples):
            raise ValueError(
                f"weights (length {len(self.weights)}) must align with triples "
                f"(length {len(self.triples)}); one weight per aggregated triple"
            )

    @property
    def error_rate(self) -> float:
        """Point estimate of the error rate (centre of the interval)."""
        return self.interval.mean

    def contains_truth(self, true_error_rate: float) -> bool:
        """Convenience for coverage experiments."""
        return self.interval.contains(true_error_rate)


@dataclass(frozen=True)
class ResponseProbabilityEstimate:
    """Confidence interval for one entry ``P_i[j1, j2]`` of a worker's
    response-probability (confusion) matrix (Algorithm A3)."""

    worker: int
    true_label: int
    response_label: int
    interval: ConfidenceInterval
    status: EstimateStatus = EstimateStatus.OK


@dataclass(frozen=True)
class KaryWorkerEstimate:
    """Full k-ary output for one worker: a k x k grid of interval estimates.

    Attributes
    ----------
    worker:
        Worker identifier.
    arity:
        Number of possible responses ``k``.
    entries:
        Mapping ``(true_label, response_label) -> ResponseProbabilityEstimate``
        covering every cell of the confusion matrix.
    status:
        Worst status across the entries.
    """

    worker: int
    arity: int
    entries: Mapping[tuple[int, int], ResponseProbabilityEstimate]
    status: EstimateStatus = EstimateStatus.OK

    def interval(self, true_label: int, response_label: int) -> ConfidenceInterval:
        """Interval for ``P[true_label, response_label]``."""
        return self.entries[(true_label, response_label)].interval

    def point_matrix(self) -> list[list[float]]:
        """The point-estimate confusion matrix as a nested list."""
        return [
            [self.entries[(a, b)].interval.mean for b in range(self.arity)]
            for a in range(self.arity)
        ]

    def accuracy_interval(self, true_label: int) -> ConfidenceInterval:
        """Interval on the diagonal entry for ``true_label`` (probability of
        answering correctly when the truth is ``true_label``)."""
        return self.interval(true_label, true_label)

    def mean_error_rate(self, selectivity: Sequence[float] | None = None) -> float:
        """Scalar error rate implied by the confusion matrix.

        Weighted by ``selectivity`` (prior over true labels) when provided,
        uniform otherwise.
        """
        if selectivity is None:
            selectivity = [1.0 / self.arity] * self.arity
        if len(selectivity) != self.arity:
            raise ValueError("selectivity length must equal arity")
        total = float(sum(selectivity))
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            selectivity = [s / total for s in selectivity]
        return sum(
            selectivity[a] * (1.0 - self.entries[(a, a)].interval.mean)
            for a in range(self.arity)
        )
