"""Synthetic binary-task worker simulation.

Reproduces the simulation setting used throughout Section III: each worker
``w_i`` has an error rate ``p_i`` drawn uniformly from ``{0.1, 0.2, 0.3}``;
whenever the worker attempts a task they flip the true answer with
probability ``p_i``, independently of everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.density import attempt_mask, uniform_density

__all__ = [
    "PAPER_ERROR_RATES",
    "BinaryWorkerPopulation",
    "sample_error_rates",
    "simulate_binary_responses",
]

#: The error-rate palette used by the paper's simulations (Sections III-A, III-D).
PAPER_ERROR_RATES: tuple[float, ...] = (0.1, 0.2, 0.3)


def sample_error_rates(
    n_workers: int,
    rng: np.random.Generator,
    palette: Sequence[float] = PAPER_ERROR_RATES,
) -> np.ndarray:
    """Draw one error rate per worker uniformly from ``palette``."""
    if n_workers <= 0:
        raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
    palette_array = np.asarray(palette, dtype=float)
    if palette_array.size == 0:
        raise ConfigurationError("error-rate palette must not be empty")
    if np.any(palette_array < 0.0) or np.any(palette_array >= 1.0):
        raise ConfigurationError("error rates must lie in [0, 1)")
    indices = rng.integers(0, palette_array.size, size=n_workers)
    return palette_array[indices]


@dataclass
class BinaryWorkerPopulation:
    """A fixed set of binary workers with known error rates.

    Attributes
    ----------
    error_rates:
        Per-worker probability of answering a task incorrectly.
    task_positive_prior:
        A-priori probability that a task's true answer is label 1
        (the paper uses 0.5 throughout).
    """

    error_rates: np.ndarray
    task_positive_prior: float = 0.5
    _rng: np.random.Generator | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.error_rates = np.asarray(self.error_rates, dtype=float)
        if self.error_rates.ndim != 1 or self.error_rates.size == 0:
            raise ConfigurationError("error_rates must be a non-empty 1-D array")
        if np.any(self.error_rates < 0.0) or np.any(self.error_rates >= 1.0):
            raise ConfigurationError("error rates must lie in [0, 1)")
        if not (0.0 < self.task_positive_prior < 1.0):
            raise ConfigurationError(
                f"task_positive_prior must lie in (0, 1), got {self.task_positive_prior}"
            )

    @classmethod
    def from_paper_palette(
        cls, n_workers: int, rng: np.random.Generator
    ) -> "BinaryWorkerPopulation":
        """Population with error rates drawn from the paper's {0.1, 0.2, 0.3}."""
        return cls(error_rates=sample_error_rates(n_workers, rng))

    @property
    def n_workers(self) -> int:
        """Number of workers in the population."""
        return int(self.error_rates.size)

    def generate(
        self,
        n_tasks: int,
        rng: np.random.Generator,
        densities: np.ndarray | float = 1.0,
        ensure_pairwise_overlap: bool = True,
    ) -> ResponseMatrix:
        """Simulate responses on ``n_tasks`` fresh tasks.

        Parameters
        ----------
        n_tasks:
            Number of tasks to create.
        rng:
            Random generator driving truth sampling, attempts and errors.
        densities:
            Either a scalar density shared by all workers or a per-worker
            array of attempt probabilities.
        ensure_pairwise_overlap:
            Redraw the attempt mask until every worker pair shares tasks
            (see :func:`repro.simulation.density.attempt_mask`).

        Returns
        -------
        ResponseMatrix
            Responses with gold labels attached (the estimators ignore gold;
            the evaluation harness uses it for coverage checks).
        """
        if n_tasks <= 0:
            raise ConfigurationError(f"n_tasks must be positive, got {n_tasks}")
        m = self.n_workers
        truths = (rng.random(n_tasks) < self.task_positive_prior).astype(int)
        mask = attempt_mask(
            m, n_tasks, densities, rng, ensure_pairwise_overlap=ensure_pairwise_overlap
        )
        errors = rng.random((m, n_tasks)) < self.error_rates[:, None]
        matrix = ResponseMatrix(n_workers=m, n_tasks=n_tasks, arity=2)
        for worker in range(m):
            attempted = np.nonzero(mask[worker])[0]
            for task in attempted:
                truth = int(truths[task])
                label = 1 - truth if errors[worker, task] else truth
                matrix.add_response(worker, int(task), label)
        matrix.set_gold_labels(truths.tolist())
        return matrix


def simulate_binary_responses(
    n_workers: int,
    n_tasks: int,
    rng: np.random.Generator,
    density: float | np.ndarray = 1.0,
    error_rate_palette: Sequence[float] = PAPER_ERROR_RATES,
) -> tuple[ResponseMatrix, np.ndarray]:
    """One-call helper: draw a population and its responses.

    Returns the response matrix and the true per-worker error rates so the
    caller can score interval coverage.
    """
    population = BinaryWorkerPopulation(
        error_rates=sample_error_rates(n_workers, rng, palette=error_rate_palette)
    )
    if np.isscalar(density):
        densities: np.ndarray | float = uniform_density(n_workers, float(density))
    else:
        densities = np.asarray(density, dtype=float)
    matrix = population.generate(n_tasks, rng, densities=densities)
    return matrix, population.error_rates
