"""Synthetic workload generators reproducing the paper's simulation setups.

The experiments in Sections III-A, III-D and IV-B all draw workers with
known error behaviour, have them attempt a random subset of tasks, and then
check whether the computed confidence intervals contain the known truth.
This package provides those generators with explicit seeds so every
experiment is reproducible.
"""

from repro.simulation.binary import (
    PAPER_ERROR_RATES,
    BinaryWorkerPopulation,
    simulate_binary_responses,
    sample_error_rates,
)
from repro.simulation.kary import (
    PAPER_CONFUSION_MATRICES,
    KaryWorkerPopulation,
    simulate_kary_responses,
    sample_confusion_matrices,
    random_confusion_matrix,
)
from repro.simulation.density import (
    uniform_density,
    per_worker_density_ramp,
    attempt_mask,
)
from repro.simulation.adversarial import AdversarialPopulation
from repro.simulation.scenarios import (
    SimulationScenario,
    paper_binary_scenario,
    paper_kary_scenario,
    weight_optimization_scenario,
)
from repro.simulation.gauntlet import (
    GAUNTLET_FAMILIES,
    CollusionScenario,
    DriftScenario,
    GauntletFamily,
    ImbalanceScenario,
    RevisionStormScenario,
    high_arity_scenario,
    independent_baseline_scenario,
)

__all__ = [
    "PAPER_ERROR_RATES",
    "BinaryWorkerPopulation",
    "simulate_binary_responses",
    "sample_error_rates",
    "PAPER_CONFUSION_MATRICES",
    "KaryWorkerPopulation",
    "simulate_kary_responses",
    "sample_confusion_matrices",
    "random_confusion_matrix",
    "uniform_density",
    "per_worker_density_ramp",
    "attempt_mask",
    "AdversarialPopulation",
    "SimulationScenario",
    "paper_binary_scenario",
    "paper_kary_scenario",
    "weight_optimization_scenario",
    "GAUNTLET_FAMILIES",
    "GauntletFamily",
    "DriftScenario",
    "CollusionScenario",
    "RevisionStormScenario",
    "ImbalanceScenario",
    "high_arity_scenario",
    "independent_baseline_scenario",
]
