"""Named simulation scenarios matching the paper's experiment setups.

A :class:`SimulationScenario` bundles everything one repetition of a paper
experiment needs: how many workers and tasks, the density model, the arity,
and the worker-behaviour palette.  The evaluation harness
(:mod:`repro.evaluation.experiments`) iterates scenarios to regenerate the
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import PAPER_ERROR_RATES, BinaryWorkerPopulation, sample_error_rates
from repro.simulation.density import per_worker_density_ramp, uniform_density
from repro.simulation.kary import KaryWorkerPopulation, sample_confusion_matrices

__all__ = [
    "SimulationScenario",
    "paper_binary_scenario",
    "paper_kary_scenario",
    "weight_optimization_scenario",
]


@dataclass
class SimulationScenario:
    """A reproducible description of one simulated experiment configuration.

    Attributes
    ----------
    name:
        Human-readable identifier (used in reports).
    n_workers, n_tasks:
        Population and task-set sizes.
    arity:
        Number of labels (2 for the binary experiments).
    densities:
        Per-worker attempt probabilities.
    error_rate_palette:
        Palette the binary error rates are drawn from (binary scenarios only).
    confusion_palette:
        Palette the confusion matrices are drawn from (k-ary scenarios only).
    """

    name: str
    n_workers: int
    n_tasks: int
    arity: int = 2
    densities: np.ndarray | None = None
    error_rate_palette: Sequence[float] = PAPER_ERROR_RATES
    confusion_palette: Sequence[np.ndarray] | None = None
    _cached_densities: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_workers < 3:
            raise ConfigurationError(
                f"the paper's methods need at least 3 workers, got {self.n_workers}"
            )
        if self.n_tasks <= 0:
            raise ConfigurationError(f"n_tasks must be positive, got {self.n_tasks}")
        if self.arity < 2:
            raise ConfigurationError(f"arity must be at least 2, got {self.arity}")
        if self.densities is None:
            densities = uniform_density(self.n_workers, 1.0)
        else:
            # Copy: np.asarray would alias a caller-provided float array,
            # letting later mutations bypass the shape validation above and
            # silently change every sample() this scenario ever draws.
            densities = np.array(self.densities, dtype=float, copy=True)
            if densities.shape != (self.n_workers,):
                raise ConfigurationError(
                    f"densities must have shape ({self.n_workers},), "
                    f"got {densities.shape}"
                )
        densities.flags.writeable = False
        self._cached_densities = densities

    @property
    def effective_densities(self) -> np.ndarray:
        """Per-worker attempt probabilities actually used (read-only)."""
        return self._cached_densities

    @property
    def kind(self) -> str:
        """Which estimator family the scenario exercises.

        ``"binary"`` scenarios are scored with the m-worker binary
        estimator; ``"kary"`` ones with the Algorithm-A3 triple estimator.
        The gauntlet (:mod:`repro.evaluation.gauntlet`) keys its
        estimator-path support on this.
        """
        return "binary" if self.arity == 2 and self.confusion_palette is None else "kary"

    def sample(
        self, rng: np.random.Generator
    ) -> tuple[ResponseMatrix, np.ndarray | list[np.ndarray]]:
        """Draw one repetition: a fresh worker population and its responses.

        Returns
        -------
        (matrix, truth)
            ``truth`` is the per-worker error-rate array for binary scenarios
            and the list of per-worker confusion matrices for k-ary ones.
        """
        if self.arity == 2 and self.confusion_palette is None:
            population = BinaryWorkerPopulation(
                error_rates=sample_error_rates(
                    self.n_workers, rng, palette=self.error_rate_palette
                )
            )
            matrix = population.generate(
                self.n_tasks, rng, densities=self._cached_densities
            )
            return matrix, population.error_rates
        population_kary = KaryWorkerPopulation(
            confusion_matrices=sample_confusion_matrices(
                self.n_workers, self.arity, rng, palette=self.confusion_palette
            )
        )
        matrix = population_kary.generate(
            self.n_tasks, rng, densities=self._cached_densities
        )
        return matrix, population_kary.confusion_matrices

    def event_stream(
        self, rng: np.random.Generator
    ) -> tuple[list[tuple[int, int, int]], ResponseMatrix, np.ndarray | list[np.ndarray]]:
        """One repetition as a submission-ordered response-event stream.

        Returns ``(events, matrix, truth)``: applying ``events`` in order
        (through :class:`~repro.serve.session.StreamSession` or
        :meth:`~repro.core.incremental.IncrementalEvaluator.apply_batch`)
        reconstructs exactly ``matrix`` — last write wins per
        ``(worker, task)`` cell.  The base scenario emits each response once
        in shuffled order; revision-heavy scenarios override this to inject
        label-revision events before the final labels.
        """
        matrix, truth = self.sample(rng)
        events = list(matrix.iter_responses())
        permutation = rng.permutation(len(events))
        return [events[int(index)] for index in permutation], matrix, truth


def paper_binary_scenario(
    n_workers: int, n_tasks: int, density: float = 1.0
) -> SimulationScenario:
    """The Section III simulation: error rates in {0.1, 0.2, 0.3}, shared density."""
    return SimulationScenario(
        name=f"binary-m{n_workers}-n{n_tasks}-d{density:g}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
        densities=uniform_density(n_workers, density),
    )


def paper_kary_scenario(
    arity: int, n_tasks: int, density: float = 1.0, n_workers: int = 3
) -> SimulationScenario:
    """The Section IV-B simulation: 3 workers, paper confusion matrices."""
    return SimulationScenario(
        name=f"kary{arity}-m{n_workers}-n{n_tasks}-d{density:g}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=arity,
        densities=uniform_density(n_workers, density),
    )


def weight_optimization_scenario(n_workers: int = 7, n_tasks: int = 100) -> SimulationScenario:
    """The Fig 2(c) setting: per-worker density ramp so triples differ in quality."""
    return SimulationScenario(
        name=f"weight-opt-m{n_workers}-n{n_tasks}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
        densities=per_worker_density_ramp(n_workers),
    )
