"""Synthetic k-ary worker simulation.

Reproduces the Section IV-B setting: each worker is assigned one of three
per-arity response-probability (confusion) matrices with equal probability;
the true label of each task is uniform over the ``k`` labels; a worker's
response to a task is drawn from the row of their matrix indexed by the true
label.  The three matrices per arity are the ones printed in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.density import attempt_mask, uniform_density

__all__ = [
    "PAPER_CONFUSION_MATRICES",
    "random_confusion_matrix",
    "sample_confusion_matrices",
    "KaryWorkerPopulation",
    "simulate_kary_responses",
]

#: The worker response-probability matrices from Section IV-B, keyed by arity.
PAPER_CONFUSION_MATRICES: dict[int, tuple[np.ndarray, ...]] = {
    2: (
        np.array([[0.9, 0.1], [0.2, 0.8]]),
        np.array([[0.8, 0.2], [0.1, 0.9]]),
        np.array([[0.9, 0.1], [0.1, 0.9]]),
    ),
    3: (
        np.array([[0.6, 0.3, 0.1], [0.1, 0.6, 0.3], [0.3, 0.1, 0.6]]),
        np.array([[0.8, 0.1, 0.1], [0.2, 0.8, 0.0], [0.0, 0.2, 0.8]]),
        np.array([[0.9, 0.0, 0.1], [0.1, 0.9, 0.0], [0.0, 0.2, 0.8]]),
    ),
    4: (
        np.array(
            [
                [0.7, 0.1, 0.1, 0.1],
                [0.1, 0.6, 0.2, 0.1],
                [0.0, 0.1, 0.8, 0.1],
                [0.2, 0.1, 0.0, 0.7],
            ]
        ),
        np.array(
            [
                [0.8, 0.1, 0.0, 0.1],
                [0.1, 0.8, 0.0, 0.1],
                [0.1, 0.1, 0.7, 0.1],
                [0.0, 0.1, 0.2, 0.7],
            ]
        ),
        np.array(
            [
                [0.6, 0.1, 0.2, 0.1],
                [0.0, 0.7, 0.1, 0.2],
                [0.1, 0.0, 0.9, 0.0],
                [0.2, 0.0, 0.0, 0.8],
            ]
        ),
    ),
}


def _validate_confusion_matrix(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(
            f"confusion matrix must be square, got shape {matrix.shape}"
        )
    if np.any(matrix < 0.0) or np.any(matrix > 1.0):
        raise ConfigurationError("confusion matrix entries must lie in [0, 1]")
    row_sums = matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-6):
        raise ConfigurationError(
            f"confusion matrix rows must sum to 1, got row sums {row_sums}"
        )
    return matrix


def random_confusion_matrix(
    arity: int,
    rng: np.random.Generator,
    diagonal_low: float = 0.6,
    diagonal_high: float = 0.95,
) -> np.ndarray:
    """Draw a diagonally-dominant confusion matrix.

    The diagonal entry (probability of answering correctly) is drawn
    uniformly in ``[diagonal_low, diagonal_high]`` per row; the remaining
    mass is spread over the off-diagonal entries by a Dirichlet draw.  The
    diagonal dominance matches the paper's assumption ``P[j, j] > P[j, j']``.
    """
    if arity < 2:
        raise ConfigurationError(f"arity must be at least 2, got {arity}")
    if not (0.5 < diagonal_low <= diagonal_high < 1.0):
        raise ConfigurationError(
            "need 0.5 < diagonal_low <= diagonal_high < 1 for a diagonally "
            f"dominant matrix, got [{diagonal_low}, {diagonal_high}]"
        )
    matrix = np.zeros((arity, arity), dtype=float)
    for row in range(arity):
        diag = rng.uniform(diagonal_low, diagonal_high)
        off = rng.dirichlet(np.ones(arity - 1)) * (1.0 - diag)
        matrix[row, row] = diag
        matrix[row, [c for c in range(arity) if c != row]] = off
    return matrix


def sample_confusion_matrices(
    n_workers: int,
    arity: int,
    rng: np.random.Generator,
    palette: Sequence[np.ndarray] | None = None,
) -> list[np.ndarray]:
    """Assign each worker a confusion matrix drawn uniformly from ``palette``.

    When ``palette`` is None, the paper's matrices for the given arity are
    used if available, otherwise random diagonally-dominant matrices are
    generated.
    """
    if n_workers <= 0:
        raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
    if palette is None:
        if arity in PAPER_CONFUSION_MATRICES:
            palette = PAPER_CONFUSION_MATRICES[arity]
        else:
            palette = tuple(
                random_confusion_matrix(arity, rng) for _ in range(3)
            )
    validated = [_validate_confusion_matrix(m) for m in palette]
    if any(m.shape[0] != arity for m in validated):
        raise ConfigurationError("palette matrices must match the requested arity")
    choices = rng.integers(0, len(validated), size=n_workers)
    return [validated[int(c)].copy() for c in choices]


@dataclass
class KaryWorkerPopulation:
    """A fixed set of k-ary workers with known confusion matrices.

    Attributes
    ----------
    confusion_matrices:
        One row-stochastic ``k x k`` matrix per worker; entry ``[a, b]`` is the
        probability of answering ``b`` when the truth is ``a``.
    selectivity:
        Prior over true labels (the paper's ``S`` vector); uniform by default.
    """

    confusion_matrices: list[np.ndarray]
    selectivity: np.ndarray | None = None
    _arity: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.confusion_matrices:
            raise ConfigurationError("need at least one worker confusion matrix")
        self.confusion_matrices = [
            _validate_confusion_matrix(m) for m in self.confusion_matrices
        ]
        arities = {m.shape[0] for m in self.confusion_matrices}
        if len(arities) != 1:
            raise ConfigurationError("all confusion matrices must share one arity")
        self._arity = arities.pop()
        if self.selectivity is None:
            self.selectivity = np.full(self._arity, 1.0 / self._arity)
        else:
            self.selectivity = np.asarray(self.selectivity, dtype=float)
            if self.selectivity.shape != (self._arity,):
                raise ConfigurationError(
                    f"selectivity must have shape ({self._arity},), "
                    f"got {self.selectivity.shape}"
                )
            if np.any(self.selectivity < 0.0) or not np.isclose(
                self.selectivity.sum(), 1.0, atol=1e-6
            ):
                raise ConfigurationError("selectivity must be a probability vector")

    @classmethod
    def from_paper_palette(
        cls, n_workers: int, arity: int, rng: np.random.Generator
    ) -> "KaryWorkerPopulation":
        """Population whose matrices are drawn from the paper's palette."""
        return cls(
            confusion_matrices=sample_confusion_matrices(n_workers, arity, rng)
        )

    @property
    def n_workers(self) -> int:
        """Number of workers in the population."""
        return len(self.confusion_matrices)

    @property
    def arity(self) -> int:
        """Number of possible labels."""
        return self._arity

    def generate(
        self,
        n_tasks: int,
        rng: np.random.Generator,
        densities: np.ndarray | float = 1.0,
        ensure_pairwise_overlap: bool = True,
    ) -> ResponseMatrix:
        """Simulate responses on ``n_tasks`` fresh tasks (gold labels attached)."""
        if n_tasks <= 0:
            raise ConfigurationError(f"n_tasks must be positive, got {n_tasks}")
        m = self.n_workers
        k = self._arity
        truths = rng.choice(k, size=n_tasks, p=self.selectivity)
        mask = attempt_mask(
            m, n_tasks, densities, rng, ensure_pairwise_overlap=ensure_pairwise_overlap
        )
        matrix = ResponseMatrix(n_workers=m, n_tasks=n_tasks, arity=k)
        for worker in range(m):
            confusion = self.confusion_matrices[worker]
            attempted = np.nonzero(mask[worker])[0]
            for task in attempted:
                truth = int(truths[task])
                label = int(rng.choice(k, p=confusion[truth]))
                matrix.add_response(worker, int(task), label)
        matrix.set_gold_labels(truths.tolist())
        return matrix


def simulate_kary_responses(
    n_workers: int,
    n_tasks: int,
    arity: int,
    rng: np.random.Generator,
    density: float | np.ndarray = 1.0,
    palette: Sequence[np.ndarray] | None = None,
) -> tuple[ResponseMatrix, list[np.ndarray]]:
    """One-call helper: draw a k-ary population and its responses.

    Returns the response matrix together with the true per-worker confusion
    matrices so the caller can score interval coverage.
    """
    population = KaryWorkerPopulation(
        confusion_matrices=sample_confusion_matrices(
            n_workers, arity, rng, palette=palette
        )
    )
    if np.isscalar(density):
        densities: np.ndarray | float = uniform_density(n_workers, float(density))
    else:
        densities = np.asarray(density, dtype=float)
    matrix = population.generate(n_tasks, rng, densities=densities)
    return matrix, population.confusion_matrices
