"""Adversarial worker models for robustness experiments.

The paper assumes workers err independently and are not malicious
(``p_i < 1/2``).  Real crowds violate both: spammers answer randomly,
adversaries answer systematically wrongly, and colluders copy each other
(Section II cites work on adversarial behaviour, ref [20]).  This module
provides populations that break the assumptions in controlled ways so the
robustness of the confidence intervals can be measured — the paper's Figures
3/4 do this implicitly through real data; here the violation strength is a
dial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.density import attempt_mask, uniform_density

__all__ = ["AdversarialPopulation"]


@dataclass
class AdversarialPopulation:
    """Binary worker population with spammers, adversaries, and colluders.

    Parameters
    ----------
    honest_error_rates:
        Error rates of the honest workers (the assumption-conforming part of
        the crowd).
    n_spammers:
        Workers who answer uniformly at random (error rate exactly 1/2).
    n_adversaries:
        Workers who answer *incorrectly* with the given probability
        (``adversary_error_rate > 1/2`` breaks the non-maliciousness
        assumption).
    n_colluders:
        Workers who copy the response of a single "leader" colluder (breaking
        the independence assumption); the leader behaves like an honest
        worker with error rate ``colluder_error_rate``.
    """

    honest_error_rates: np.ndarray
    n_spammers: int = 0
    n_adversaries: int = 0
    n_colluders: int = 0
    adversary_error_rate: float = 0.8
    colluder_error_rate: float = 0.2

    def __post_init__(self) -> None:
        self.honest_error_rates = np.asarray(self.honest_error_rates, dtype=float)
        if self.honest_error_rates.ndim != 1 or self.honest_error_rates.size == 0:
            raise ConfigurationError("honest_error_rates must be a non-empty 1-D array")
        if np.any(self.honest_error_rates < 0.0) or np.any(self.honest_error_rates >= 0.5):
            raise ConfigurationError("honest workers must have error rates in [0, 0.5)")
        for name, value in (
            ("n_spammers", self.n_spammers),
            ("n_adversaries", self.n_adversaries),
            ("n_colluders", self.n_colluders),
        ):
            if value < 0:
                raise ConfigurationError(f"{name} must be non-negative, got {value}")
        if not (0.5 < self.adversary_error_rate <= 1.0):
            raise ConfigurationError(
                "adversary_error_rate must exceed 1/2 (that is what makes them adversarial)"
            )
        if not (0.0 <= self.colluder_error_rate < 0.5):
            raise ConfigurationError("colluder_error_rate must lie in [0, 0.5)")

    # ------------------------------------------------------------------ #

    @property
    def n_workers(self) -> int:
        """Total number of workers across all behaviour groups."""
        return (
            self.honest_error_rates.size
            + self.n_spammers
            + self.n_adversaries
            + self.n_colluders
        )

    def worker_kinds(self) -> list[str]:
        """Behaviour label per worker id: honest / spammer / adversary / colluder."""
        kinds = ["honest"] * self.honest_error_rates.size
        kinds += ["spammer"] * self.n_spammers
        kinds += ["adversary"] * self.n_adversaries
        kinds += ["colluder"] * self.n_colluders
        return kinds

    def true_error_rates(self) -> np.ndarray:
        """The effective per-worker error rate (colluders share the leader's)."""
        rates = list(self.honest_error_rates)
        rates += [0.5] * self.n_spammers
        rates += [self.adversary_error_rate] * self.n_adversaries
        rates += [self.colluder_error_rate] * self.n_colluders
        return np.asarray(rates, dtype=float)

    def generate(
        self,
        n_tasks: int,
        rng: np.random.Generator,
        density: float = 1.0,
    ) -> ResponseMatrix:
        """Simulate responses under the adversarial model (gold labels attached)."""
        if n_tasks <= 0:
            raise ConfigurationError(f"n_tasks must be positive, got {n_tasks}")
        m = self.n_workers
        truths = rng.integers(0, 2, size=n_tasks)
        mask = attempt_mask(m, n_tasks, uniform_density(m, density), rng)
        matrix = ResponseMatrix(n_workers=m, n_tasks=n_tasks, arity=2)
        kinds = self.worker_kinds()
        rates = self.true_error_rates()

        # Colluders copy a single leader's answers; draw those answers first.
        leader_answers: dict[int, int] = {}
        if self.n_colluders > 0:
            for task in range(n_tasks):
                truth = int(truths[task])
                wrong = rng.random() < self.colluder_error_rate
                leader_answers[task] = 1 - truth if wrong else truth

        for worker in range(m):
            kind = kinds[worker]
            for task in np.nonzero(mask[worker])[0]:
                truth = int(truths[task])
                if kind == "colluder":
                    label = leader_answers[int(task)]
                elif kind == "spammer":
                    label = int(rng.integers(0, 2))
                else:
                    wrong = rng.random() < rates[worker]
                    label = 1 - truth if wrong else truth
                matrix.add_response(worker, int(task), label)
        matrix.set_gold_labels(truths.tolist())
        return matrix
