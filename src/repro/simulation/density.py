"""Attempt-pattern (density) models.

The paper's non-regular experiments control which worker attempts which task
through a per-worker attempt probability ("density"):

* Section III-D1/D2 uses a single density ``d`` shared by all workers;
* Section III-D3 (the weight-optimization experiment, Fig 2(c)) gives worker
  ``i`` of ``m`` the density ``(0.5 * i + (m - i)) / m`` so different workers
  answer very different numbers of tasks.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["uniform_density", "per_worker_density_ramp", "attempt_mask"]


def uniform_density(n_workers: int, density: float) -> np.ndarray:
    """Every worker attempts each task with the same probability ``density``."""
    if n_workers <= 0:
        raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
    if not (0.0 < density <= 1.0):
        raise ConfigurationError(f"density must lie in (0, 1], got {density}")
    return np.full(n_workers, density, dtype=float)


def per_worker_density_ramp(n_workers: int) -> np.ndarray:
    """The Fig 2(c) density ramp: worker ``i`` gets ``(0.5*i + (m - i)) / m``.

    With 1-based worker index ``i`` (as in the paper), the first worker gets
    density close to 1 and the last close to 0.5, so different triples carry
    very different amounts of information — exactly the situation where
    Lemma 5's weight optimization matters.
    """
    if n_workers <= 0:
        raise ConfigurationError(f"n_workers must be positive, got {n_workers}")
    m = n_workers
    densities = np.array(
        [(0.5 * i + (m - i)) / m for i in range(1, m + 1)], dtype=float
    )
    return densities


def attempt_mask(
    n_workers: int,
    n_tasks: int,
    densities: np.ndarray | float,
    rng: np.random.Generator,
    ensure_pairwise_overlap: bool = True,
    max_retries: int = 50,
) -> np.ndarray:
    """Boolean ``(n_workers, n_tasks)`` mask of who attempts what.

    Each cell is drawn independently: worker ``i`` attempts task ``j`` with
    probability ``densities[i]``.  When ``ensure_pairwise_overlap`` is set the
    mask is re-drawn (up to ``max_retries`` times) until every pair of workers
    shares at least two common tasks, the minimum the 3-worker method needs to
    produce a finite-variance estimate; this mirrors the paper's (implicit)
    assumption that every pair of workers has common tasks.
    """
    if n_workers <= 0 or n_tasks <= 0:
        raise ConfigurationError("n_workers and n_tasks must be positive")
    if np.isscalar(densities):
        densities = uniform_density(n_workers, float(densities))
    densities = np.asarray(densities, dtype=float)
    if densities.shape != (n_workers,):
        raise ConfigurationError(
            f"densities must have shape ({n_workers},), got {densities.shape}"
        )
    if np.any(densities <= 0.0) or np.any(densities > 1.0):
        raise ConfigurationError("all densities must lie in (0, 1]")

    for _ in range(max_retries):
        mask = rng.random((n_workers, n_tasks)) < densities[:, None]
        if not ensure_pairwise_overlap:
            return mask
        overlaps = mask.astype(int) @ mask.astype(int).T
        off_diagonal = overlaps[~np.eye(n_workers, dtype=bool)]
        if off_diagonal.size == 0 or off_diagonal.min() >= 2:
            return mask
    # Could not satisfy the overlap requirement by rejection; force it by
    # making every worker attempt the first two tasks.
    mask = rng.random((n_workers, n_tasks)) < densities[:, None]
    mask[:, : min(2, n_tasks)] = True
    return mask
