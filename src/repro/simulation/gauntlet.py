"""Adversarial scenario families for the stress-test gauntlet.

The paper's simulations (Sections III-D/IV-B) assume a well-behaved crowd:
stationary error rates, independent workers, immutable labels, balanced
truth priors, small arity.  Real crowds violate every one of these.  Each
scenario family here extends
:class:`~repro.simulation.scenarios.SimulationScenario` to break exactly one
assumption with a dial on the violation strength, so the gauntlet
(:mod:`repro.evaluation.gauntlet`) can measure how far the paper's coverage
guarantees bend before they snap:

* :class:`DriftScenario` — worker error rates drift over task index (time),
  violating stationarity; coverage is judged against the time-averaged
  rate.
* :class:`CollusionScenario` — a ring of workers copies a leader's answers,
  violating the independence assumption behind Theorem 1's variance; with a
  strong ring the agreement statistics look near-perfect while the true
  error rate stays high, so intervals collapse around the wrong value.
* :class:`RevisionStormScenario` — label-revision storms: a fraction of
  responses is submitted wrong one or more times before the final label
  arrives, exercising the streaming revision path
  (:class:`~repro.serve.session.StreamSession`) rather than the estimator's
  assumptions; final estimates must be bit-identical to a batch build over
  the settled matrix.
* :class:`ImbalanceScenario` — extreme class imbalance in the truth prior.
* :func:`high_arity_scenario` — k-ary with arity well beyond the paper's
  printed palettes (random diagonally-dominant confusion matrices).
* :func:`independent_baseline_scenario` — the paper's own assumptions, kept
  in the registry so every violation has an in-grid control to degrade
  against.

:data:`GAUNTLET_FAMILIES` is the registry the gap-detection pass
(:func:`repro.evaluation.gauntlet.detect_gaps`) enumerates against the
backend capability matrix in :mod:`repro.core.agreement`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import BinaryWorkerPopulation, sample_error_rates
from repro.simulation.density import attempt_mask
from repro.simulation.scenarios import SimulationScenario

__all__ = [
    "DriftScenario",
    "CollusionScenario",
    "RevisionStormScenario",
    "ImbalanceScenario",
    "high_arity_scenario",
    "independent_baseline_scenario",
    "GauntletFamily",
    "GAUNTLET_FAMILIES",
]


@dataclass
class DriftScenario(SimulationScenario):
    """Time-varying worker error rates (task index as time).

    Each worker's error rate ramps linearly from its palette draw at task 0
    to that rate plus ``drift`` at the last task.  The reported truth is the
    **time-averaged** rate — the estimand a stationary estimator converges
    to — so coverage against it quantifies the damage non-stationarity does
    to the intervals.
    """

    drift: float = 0.3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (-0.5 <= self.drift <= 0.5) or self.drift == 0.0:
            raise ConfigurationError(
                f"drift must be non-zero and lie in [-0.5, 0.5], got {self.drift}"
            )

    def sample(
        self, rng: np.random.Generator
    ) -> tuple[ResponseMatrix, np.ndarray]:
        start = sample_error_rates(
            self.n_workers, rng, palette=self.error_rate_palette
        )
        end = np.clip(start + self.drift, 0.0, 0.95)
        phase = (
            np.arange(self.n_tasks) / (self.n_tasks - 1)
            if self.n_tasks > 1
            else np.zeros(1)
        )
        rate_grid = start[:, None] + (end - start)[:, None] * phase[None, :]
        truths = (rng.random(self.n_tasks) < 0.5).astype(int)
        mask = attempt_mask(
            self.n_workers, self.n_tasks, self.effective_densities, rng
        )
        errors = rng.random((self.n_workers, self.n_tasks)) < rate_grid
        matrix = ResponseMatrix(
            n_workers=self.n_workers, n_tasks=self.n_tasks, arity=2
        )
        for worker in range(self.n_workers):
            for task in np.nonzero(mask[worker])[0]:
                truth = int(truths[task])
                label = 1 - truth if errors[worker, task] else truth
                matrix.add_response(worker, int(task), label)
        matrix.set_gold_labels(truths.tolist())
        return matrix, rate_grid.mean(axis=1)


@dataclass
class CollusionScenario(SimulationScenario):
    """A collusion ring copying one leader's answers (correlated errors).

    Workers ``0 .. ring_size - 1`` form the ring: worker 0 is the leader
    (error rate ``leader_error_rate``); each other member copies the
    leader's answer on a task with probability ``collusion_strength`` and
    answers independently with their own palette rate otherwise.  The
    remaining workers are honest and independent.  The reported truth is
    each worker's *marginal* error rate — which the intervals claim to
    cover — while the induced correlation violates the independence the
    variance derivation needs, so measured coverage quantifies exactly how
    wrong the intervals get.
    """

    ring_size: int = 3
    collusion_strength: float = 1.0
    leader_error_rate: float = 0.25

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (2 <= self.ring_size <= self.n_workers):
            raise ConfigurationError(
                f"ring_size must lie in [2, n_workers], got {self.ring_size}"
            )
        if not (0.0 < self.collusion_strength <= 1.0):
            raise ConfigurationError(
                "collusion_strength must lie in (0, 1], got "
                f"{self.collusion_strength}"
            )
        if not (0.0 < self.leader_error_rate < 0.5):
            raise ConfigurationError(
                f"leader_error_rate must lie in (0, 0.5), got {self.leader_error_rate}"
            )

    def sample(
        self, rng: np.random.Generator
    ) -> tuple[ResponseMatrix, np.ndarray]:
        own_rates = sample_error_rates(
            self.n_workers, rng, palette=self.error_rate_palette
        )
        own_rates[0] = self.leader_error_rate
        truths = (rng.random(self.n_tasks) < 0.5).astype(int)
        mask = attempt_mask(
            self.n_workers, self.n_tasks, self.effective_densities, rng
        )
        leader_wrong = rng.random(self.n_tasks) < self.leader_error_rate
        leader_answers = np.where(leader_wrong, 1 - truths, truths)
        copies = rng.random((self.n_workers, self.n_tasks)) < self.collusion_strength
        own_wrong = rng.random((self.n_workers, self.n_tasks)) < own_rates[:, None]

        matrix = ResponseMatrix(
            n_workers=self.n_workers, n_tasks=self.n_tasks, arity=2
        )
        marginal = own_rates.copy()
        for member in range(1, self.ring_size):
            marginal[member] = (
                self.collusion_strength * self.leader_error_rate
                + (1.0 - self.collusion_strength) * own_rates[member]
            )
        for worker in range(self.n_workers):
            in_ring = worker < self.ring_size
            for task in np.nonzero(mask[worker])[0]:
                task = int(task)
                truth = int(truths[task])
                if worker == 0:
                    label = int(leader_answers[task])
                elif in_ring and copies[worker, task]:
                    label = int(leader_answers[task])
                else:
                    label = 1 - truth if own_wrong[worker, task] else truth
                matrix.add_response(worker, task, label)
        matrix.set_gold_labels(truths.tolist())
        return matrix, marginal


@dataclass
class RevisionStormScenario(SimulationScenario):
    """Label-revision storms over an otherwise well-behaved crowd.

    The settled state (what :meth:`sample` returns) is the base scenario's
    matrix; :meth:`event_stream` submits a ``revision_fraction`` of the
    responses wrong up to ``max_revisions`` times before the final label,
    with per-response submission order preserved under a random global
    interleave.  Streaming consumers must converge to the settled matrix
    bit-identically — this is the gauntlet's
    :class:`~repro.serve.session.StreamSession` workout, not an estimator
    stressor.
    """

    revision_fraction: float = 0.5
    max_revisions: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.revision_fraction <= 1.0):
            raise ConfigurationError(
                f"revision_fraction must lie in (0, 1], got {self.revision_fraction}"
            )
        if self.max_revisions < 1:
            raise ConfigurationError(
                f"max_revisions must be at least 1, got {self.max_revisions}"
            )

    def event_stream(
        self, rng: np.random.Generator
    ) -> tuple[list[tuple[int, int, int]], ResponseMatrix, np.ndarray | list[np.ndarray]]:
        matrix, truth = self.sample(rng)
        responses = list(matrix.iter_responses())
        stormed = rng.random(len(responses)) < self.revision_fraction
        keyed: list[tuple[float, tuple[int, int, int]]] = []
        for index, (worker, task, label) in enumerate(responses):
            if stormed[index]:
                n_prelim = int(rng.integers(1, self.max_revisions + 1))
            else:
                n_prelim = 0
            # One uniform key per event, sorted within the response, keeps
            # the preliminary labels strictly before the final one under
            # the global sort — last write wins must yield the settled label.
            keys = np.sort(rng.random(n_prelim + 1))
            for position in range(n_prelim):
                wrong = int(rng.integers(0, self.arity))
                keyed.append((float(keys[position]), (worker, task, wrong)))
            keyed.append((float(keys[-1]), (worker, task, label)))
        keyed.sort(key=lambda item: item[0])
        return [event for _, event in keyed], matrix, truth


@dataclass
class ImbalanceScenario(SimulationScenario):
    """Extreme class imbalance in the truth prior.

    The paper simulates a balanced 0.5 prior; skewing it starves one label's
    agreement statistics (most common tasks share the majority truth), which
    stresses the clamping around the Eq. (1) singularity.
    """

    positive_prior: float = 0.95

    def __post_init__(self) -> None:
        super().__post_init__()
        if not (0.0 < self.positive_prior < 1.0):
            raise ConfigurationError(
                f"positive_prior must lie in (0, 1), got {self.positive_prior}"
            )

    def sample(
        self, rng: np.random.Generator
    ) -> tuple[ResponseMatrix, np.ndarray]:
        population = BinaryWorkerPopulation(
            error_rates=sample_error_rates(
                self.n_workers, rng, palette=self.error_rate_palette
            ),
            task_positive_prior=self.positive_prior,
        )
        matrix = population.generate(
            self.n_tasks, rng, densities=self.effective_densities
        )
        return matrix, population.error_rates


def independent_baseline_scenario(
    n_workers: int = 7, n_tasks: int = 150
) -> SimulationScenario:
    """The paper's own assumptions — the in-grid control every violation
    family is compared against."""
    return SimulationScenario(
        name=f"independent-m{n_workers}-n{n_tasks}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
    )


def drift_scenario(
    n_workers: int = 7, n_tasks: int = 150, drift: float = 0.3
) -> DriftScenario:
    """Error rates ramping up by ``drift`` over the task horizon."""
    return DriftScenario(
        name=f"drift-m{n_workers}-n{n_tasks}-d{drift:g}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
        drift=drift,
    )


def collusion_scenario(
    n_workers: int = 7,
    n_tasks: int = 150,
    ring_size: int = 3,
    collusion_strength: float = 1.0,
) -> CollusionScenario:
    """A ``ring_size`` collusion ring copying its leader."""
    return CollusionScenario(
        name=f"collusion-m{n_workers}-n{n_tasks}-r{ring_size}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
        ring_size=ring_size,
        collusion_strength=collusion_strength,
    )


def revision_storm_scenario(
    n_workers: int = 7, n_tasks: int = 150, revision_fraction: float = 0.5
) -> RevisionStormScenario:
    """Half the responses revised at least once before settling."""
    return RevisionStormScenario(
        name=f"revision-storm-m{n_workers}-n{n_tasks}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
        revision_fraction=revision_fraction,
    )


def imbalance_scenario(
    n_workers: int = 7, n_tasks: int = 150, positive_prior: float = 0.95
) -> ImbalanceScenario:
    """A heavily skewed truth prior."""
    return ImbalanceScenario(
        name=f"imbalance-m{n_workers}-n{n_tasks}-p{positive_prior:g}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=2,
        positive_prior=positive_prior,
    )


def high_arity_scenario(
    arity: int = 6, n_tasks: int = 250, n_workers: int = 3
) -> SimulationScenario:
    """K-ary far beyond the paper's printed palettes (random matrices)."""
    if arity <= 4:
        raise ConfigurationError(
            f"high_arity_scenario wants arity beyond the paper's 2-4, got {arity}"
        )
    return SimulationScenario(
        name=f"high-arity-k{arity}-n{n_tasks}",
        n_workers=n_workers,
        n_tasks=n_tasks,
        arity=arity,
    )


@dataclass(frozen=True)
class GauntletFamily:
    """One registered scenario family: a factory plus grid metadata.

    ``kind`` decides the estimator paths the gauntlet must cover for the
    family ("binary" scenarios run every backend x estimator path the
    capability matrix licenses; "kary" ones run the scalar A3 path per
    backend), so registering a family here is what makes gap detection
    demand cells for it.
    """

    name: str
    description: str
    kind: str
    factory: Callable[..., SimulationScenario] = field(repr=False)

    def build(self, **overrides) -> SimulationScenario:
        """Instantiate the family's scenario (smoke-friendly defaults)."""
        return self.factory(**overrides)


#: The registry the gauntlet's gap-detection pass enumerates.  Every family
#: here x every (backend, estimator-path) cell the capability matrix in
#: :mod:`repro.core.agreement` licenses must appear in a full gauntlet run.
GAUNTLET_FAMILIES: dict[str, GauntletFamily] = {
    family.name: family
    for family in (
        GauntletFamily(
            name="independent",
            description="paper assumptions (control)",
            kind="binary",
            factory=independent_baseline_scenario,
        ),
        GauntletFamily(
            name="drift",
            description="time-varying worker error rates",
            kind="binary",
            factory=drift_scenario,
        ),
        GauntletFamily(
            name="collusion",
            description="collusion ring (correlated errors)",
            kind="binary",
            factory=collusion_scenario,
        ),
        GauntletFamily(
            name="revision-storm",
            description="label revisions through the streaming layer",
            kind="binary",
            factory=revision_storm_scenario,
        ),
        GauntletFamily(
            name="imbalance",
            description="extreme class imbalance",
            kind="binary",
            factory=imbalance_scenario,
        ),
        GauntletFamily(
            name="high-arity",
            description="k-ary beyond the paper's palettes",
            kind="kary",
            factory=high_arity_scenario,
        ),
    )
}
