"""Majority-vote aggregation.

Majority vote is both the simplest label-aggregation baseline and the
ingredient of the paper's spammer filter (Section III-E2): a worker's
disagreement with the majority is a cheap proxy for their error rate.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.exceptions import InsufficientDataError
from repro.data.response_matrix import ResponseMatrix

__all__ = ["majority_vote_labels", "majority_disagreement_rates", "majority_accuracy"]


def majority_vote_labels(
    matrix: ResponseMatrix,
    rng: np.random.Generator | None = None,
) -> dict[int, int]:
    """Most common response per task; ties broken at random (or lowest label).

    Tasks nobody answered are absent from the result.
    """
    labels: dict[int, int] = {}
    for task in range(matrix.n_tasks):
        responses = matrix.task_responses(task)
        if not responses:
            continue
        votes = Counter(responses.values())
        top_count = max(votes.values())
        top_labels = sorted(label for label, count in votes.items() if count == top_count)
        if len(top_labels) == 1 or rng is None:
            labels[task] = top_labels[0]
        else:
            labels[task] = int(rng.choice(top_labels))
    return labels


def majority_disagreement_rates(matrix: ResponseMatrix) -> dict[int, float | None]:
    """Per-worker fraction of tasks where they disagree with the others' majority.

    Workers with no co-attempted task map to None.
    """
    rates: dict[int, float | None] = {}
    for worker in range(matrix.n_workers):
        try:
            rates[worker] = matrix.disagreement_with_majority(worker)
        except InsufficientDataError:
            rates[worker] = None
    return rates


def majority_accuracy(matrix: ResponseMatrix) -> float:
    """Fraction of gold-labelled tasks the majority vote answers correctly."""
    if not matrix.has_gold:
        raise InsufficientDataError("majority_accuracy requires gold labels")
    labels = majority_vote_labels(matrix)
    judged = 0
    correct = 0
    for task, gold in matrix.gold_labels.items():
        if task not in labels:
            continue
        judged += 1
        if labels[task] == gold:
            correct += 1
    if judged == 0:
        raise InsufficientDataError("no gold-labelled task has any response")
    return correct / judged
