"""Dawid-Skene expectation maximization (the classical EM comparator).

The related-work section of the paper points at a long line of EM-based
worker-quality estimators descending from Dawid & Skene (1979).  They produce
*point* estimates of worker confusion matrices and task labels but no
confidence intervals — which is precisely the gap the paper fills.  This
implementation supports arbitrary arity and non-regular data and is used by
the ablation benches to compare point-estimate quality and by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.data.response_matrix import ResponseMatrix

__all__ = ["DawidSkeneResult", "dawid_skene"]

_SMOOTHING = 1e-6


@dataclass(frozen=True)
class DawidSkeneResult:
    """Output of the Dawid-Skene EM run.

    Attributes
    ----------
    confusion_matrices:
        Per-worker row-stochastic ``k x k`` matrices; entry ``[a, b]`` is the
        estimated probability the worker answers ``b`` when the truth is ``a``.
    class_priors:
        Estimated prior over true labels.
    task_posteriors:
        ``(n_tasks, k)`` posterior over the true label of each task (rows for
        tasks with no responses are the prior).
    log_likelihood_trace:
        Observed-data log likelihood after each EM iteration (non-decreasing
        up to numerical tolerance).
    converged:
        Whether the log-likelihood improvement fell below the tolerance
        within the iteration budget.
    n_iterations:
        Number of EM iterations actually performed.
    """

    confusion_matrices: list[np.ndarray]
    class_priors: np.ndarray
    task_posteriors: np.ndarray
    log_likelihood_trace: list[float]
    converged: bool
    n_iterations: int

    def worker_error_rate(self, worker: int) -> float:
        """Scalar error rate implied by a worker's confusion matrix,
        weighted by the estimated class priors."""
        confusion = self.confusion_matrices[worker]
        return float(
            sum(
                self.class_priors[a] * (1.0 - confusion[a, a])
                for a in range(confusion.shape[0])
            )
        )

    def most_likely_labels(self) -> dict[int, int]:
        """MAP label per task."""
        return {
            task: int(np.argmax(self.task_posteriors[task]))
            for task in range(self.task_posteriors.shape[0])
        }


def _initialize_posteriors(matrix: ResponseMatrix) -> np.ndarray:
    """Majority-vote soft initialization of the task posteriors."""
    k = matrix.arity
    posteriors = np.full((matrix.n_tasks, k), 1.0 / k)
    for task in range(matrix.n_tasks):
        responses = matrix.task_responses(task)
        if not responses:
            continue
        votes = np.full(k, _SMOOTHING)
        for label in responses.values():
            votes[label] += 1.0
        posteriors[task] = votes / votes.sum()
    return posteriors


def dawid_skene(
    matrix: ResponseMatrix,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
) -> DawidSkeneResult:
    """Run Dawid-Skene EM on a response matrix of any arity.

    Parameters
    ----------
    matrix:
        The (possibly non-regular) response data.
    max_iterations:
        Iteration budget.
    tolerance:
        EM stops when the log-likelihood improves by less than this.
    """
    if max_iterations <= 0:
        raise ConfigurationError(
            f"max_iterations must be positive, got {max_iterations}"
        )
    if matrix.n_responses == 0:
        raise InsufficientDataError("the response matrix contains no responses")

    k = matrix.arity
    n_tasks = matrix.n_tasks
    n_workers = matrix.n_workers
    posteriors = _initialize_posteriors(matrix)
    confusion = [np.full((k, k), 1.0 / k) for _ in range(n_workers)]
    priors = np.full(k, 1.0 / k)
    trace: list[float] = []
    converged = False
    iterations_done = 0

    # Pre-index responses per task for the E step and per worker for the M step.
    responses_by_task = [matrix.task_responses(task) for task in range(n_tasks)]
    responses_by_worker = [matrix.worker_responses(worker) for worker in range(n_workers)]

    for iteration in range(max_iterations):
        # M step: confusion matrices and class priors from soft labels.
        for worker in range(n_workers):
            counts = np.full((k, k), _SMOOTHING)
            for task, label in responses_by_worker[worker].items():
                counts[:, label] += posteriors[task]
            confusion[worker] = counts / counts.sum(axis=1, keepdims=True)
        prior_counts = posteriors.sum(axis=0) + _SMOOTHING
        priors = prior_counts / prior_counts.sum()

        # E step: posterior over true labels per task.
        log_likelihood = 0.0
        for task in range(n_tasks):
            responses = responses_by_task[task]
            if not responses:
                posteriors[task] = priors
                continue
            log_weights = np.log(priors)
            for worker, label in responses.items():
                log_weights = log_weights + np.log(confusion[worker][:, label] + _SMOOTHING)
            max_log = float(np.max(log_weights))
            weights = np.exp(log_weights - max_log)
            total = float(weights.sum())
            posteriors[task] = weights / total
            log_likelihood += max_log + float(np.log(total))

        trace.append(log_likelihood)
        iterations_done = iteration + 1
        if iteration > 0 and abs(trace[-1] - trace[-2]) < tolerance:
            converged = True
            break

    return DawidSkeneResult(
        confusion_matrices=confusion,
        class_priors=priors,
        task_posteriors=posteriors,
        log_likelihood_trace=trace,
        converged=converged,
        n_iterations=iterations_done,
    )
