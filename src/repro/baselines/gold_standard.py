"""Gold-standard worker evaluation (the classical approach).

When gold answers exist, a worker's error rate is a plain binomial proportion
and textbook intervals apply.  This module is the "what the paper replaces"
baseline: it needs gold answers the paper's methods do without, but when
gold is available it is the tightest interval one can hope for, so it serves
as a lower bound in the benchmarks.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.data.response_matrix import ResponseMatrix
from repro.stats.intervals import wald_interval, wilson_interval
from repro.types import ConfidenceInterval, EstimateStatus, WorkerErrorEstimate

__all__ = ["gold_standard_intervals"]

_METHODS = {"wald": wald_interval, "wilson": wilson_interval}


def gold_standard_intervals(
    matrix: ResponseMatrix,
    confidence: float,
    method: str = "wilson",
) -> dict[int, WorkerErrorEstimate]:
    """Error-rate intervals computed directly against gold labels.

    Parameters
    ----------
    matrix:
        Response data with gold labels on (at least some) tasks.
    confidence:
        Confidence level of the intervals.
    method:
        ``"wilson"`` (default) or ``"wald"``.

    Returns
    -------
    dict
        Worker id -> :class:`WorkerErrorEstimate`.  Workers who answered no
        gold-labelled task are omitted.
    """
    if method not in _METHODS:
        raise ConfigurationError(
            f"unknown interval method '{method}'; expected one of {sorted(_METHODS)}"
        )
    if not matrix.has_gold:
        raise InsufficientDataError(
            "gold_standard_intervals requires gold labels on the matrix"
        )
    interval_fn = _METHODS[method]
    results: dict[int, WorkerErrorEstimate] = {}
    for worker in range(matrix.n_workers):
        wrong = 0
        judged = 0
        for task, label in matrix.worker_responses(worker).items():
            gold = matrix.gold_label(task)
            if gold is None:
                continue
            judged += 1
            if label != gold:
                wrong += 1
        if judged == 0:
            continue
        interval: ConfidenceInterval = interval_fn(wrong, judged, confidence)
        results[worker] = WorkerErrorEstimate(
            worker=worker,
            interval=interval,
            n_tasks=judged,
            status=EstimateStatus.OK,
        )
    return results
