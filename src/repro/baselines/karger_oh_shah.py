"""Karger-Oh-Shah iterative message passing (binary label inference).

Reference [29] of the paper ("Efficient crowdsourcing for multi-class
labeling", Karger, Oh, Shah) is the best-known algebraic alternative to EM
for inferring task labels and worker reliabilities on binary tasks.  It is
included as a label-inference baseline for the ablation benches: unlike the
paper's method it evaluates *tasks* rather than workers and provides no
per-worker confidence intervals, which is exactly the contrast the related
work section draws.

The algorithm operates on the bipartite worker-task graph with responses
mapped to +/-1 and alternates:

* task messages:   x_{t -> w} = sum_{w' != w} y_{w' -> t} * A[w', t]
* worker messages: y_{w -> t} = sum_{t' != t} x_{t' -> w} * A[w, t']

After a fixed number of iterations the label of task ``t`` is the sign of
``sum_w y_{w -> t} * A[w, t]``, and a worker-reliability score is the
normalized aggregate of their messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.data.response_matrix import ResponseMatrix

__all__ = ["KargerOhShahResult", "karger_oh_shah"]


@dataclass(frozen=True)
class KargerOhShahResult:
    """Output of the message-passing run.

    Attributes
    ----------
    labels:
        Task id -> inferred binary label (only tasks with responses).
    task_scores:
        Task id -> the signed aggregate the label decision is based on
        (magnitude is a rough confidence proxy, but carries no guarantee).
    worker_scores:
        Worker id -> normalized reliability score in [-1, 1]; higher means
        the worker tends to agree with the inferred labels.
    n_iterations:
        Number of message-passing iterations performed.
    """

    labels: dict[int, int]
    task_scores: dict[int, float]
    worker_scores: dict[int, float]
    n_iterations: int


def karger_oh_shah(
    matrix: ResponseMatrix,
    n_iterations: int = 10,
    rng: np.random.Generator | None = None,
) -> KargerOhShahResult:
    """Run KOS message passing on binary response data.

    Parameters
    ----------
    matrix:
        Binary response data (non-regular data is fine; the graph simply has
        fewer edges).
    n_iterations:
        Number of alternating message updates; the algorithm converges
        quickly and 10 iterations are ample for crowdsourcing-sized graphs.
    rng:
        Source for the random message initialization (a fixed seed is used
        when omitted so results are reproducible).
    """
    if not matrix.is_binary:
        raise ConfigurationError("karger_oh_shah handles binary tasks only")
    if n_iterations <= 0:
        raise ConfigurationError(f"n_iterations must be positive, got {n_iterations}")
    if matrix.n_responses == 0:
        raise InsufficientDataError("the response matrix contains no responses")
    if rng is None:
        rng = np.random.default_rng(0)

    # Edge list of the bipartite graph with responses in {-1, +1}.
    edges: list[tuple[int, int, float]] = [
        (worker, task, 1.0 if label == 1 else -1.0)
        for worker, task, label in matrix.iter_responses()
    ]
    edge_index = {(worker, task): index for index, (worker, task, _) in enumerate(edges)}
    signs = np.array([sign for _, _, sign in edges])

    tasks_of_worker: dict[int, list[int]] = {}
    workers_of_task: dict[int, list[int]] = {}
    for index, (worker, task, _) in enumerate(edges):
        tasks_of_worker.setdefault(worker, []).append(index)
        workers_of_task.setdefault(task, []).append(index)

    # Worker->task messages, initialized to N(1, 1) as in the original paper.
    worker_messages = rng.normal(loc=1.0, scale=1.0, size=len(edges))
    task_messages = np.zeros(len(edges))

    for _ in range(n_iterations):
        # Task -> worker: aggregate the other workers' opinions about the task.
        for task, incident in workers_of_task.items():
            incident_signs = signs[incident]
            incident_messages = worker_messages[incident]
            total = float(np.dot(incident_signs, incident_messages))
            for index in incident:
                task_messages[index] = total - signs[index] * worker_messages[index]
        # Worker -> task: aggregate how well the worker matched other tasks.
        for worker, incident in tasks_of_worker.items():
            incident_signs = signs[incident]
            incident_messages = task_messages[incident]
            total = float(np.dot(incident_signs, incident_messages))
            for index in incident:
                worker_messages[index] = total - signs[index] * task_messages[index]
        # Normalize to keep the magnitudes bounded across iterations.
        scale = float(np.max(np.abs(worker_messages)))
        if scale > 0:
            worker_messages = worker_messages / scale

    labels: dict[int, int] = {}
    task_scores: dict[int, float] = {}
    for task, incident in workers_of_task.items():
        score = float(np.dot(signs[incident], worker_messages[incident]))
        task_scores[task] = score
        labels[task] = 1 if score >= 0.0 else 0

    worker_scores: dict[int, float] = {}
    for worker, incident in tasks_of_worker.items():
        aligned = 0.0
        for index in incident:
            _, task, _ = edges[index]
            inferred_sign = 1.0 if labels[task] == 1 else -1.0
            aligned += signs[index] * inferred_sign
        worker_scores[worker] = aligned / len(incident)

    # Workers with no responses get a neutral score.
    for worker in range(matrix.n_workers):
        worker_scores.setdefault(worker, 0.0)

    return KargerOhShahResult(
        labels=labels,
        task_scores=task_scores,
        worker_scores=worker_scores,
        n_iterations=n_iterations,
    )
