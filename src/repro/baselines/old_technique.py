"""The "old technique" of reference [2] (Joglekar et al., SIGKDD 2013).

Figure 1 of the paper compares the new delta-method intervals against the
intervals of [2].  The original technique assumes regular binary data and
equal false-positive/false-negative rates, evaluates a worker by collapsing
the remaining workers into two *super-workers* (each answering with the
majority vote of its half), and derives a **conservative** confidence
interval by propagating worst-case bounds on the three pairwise agreement
rates through the error-rate formula.

Reference [2] ships no public code, so this is a re-derivation from the
description in the present paper: per-agreement-rate confidence intervals
(normal approximation with a union bound across the three rates) are pushed
through Eq. (1) by interval arithmetic, which is valid but loose — matching
the paper's characterization of the old intervals as "excessively large /
overly conservative" while the new intervals are roughly 40 % tighter at
moderate confidence levels.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.three_worker import clamp_agreement, error_rate_from_agreements
from repro.data.response_matrix import ResponseMatrix
from repro.stats.normal import normal_quantile
from repro.types import ConfidenceInterval, EstimateStatus, WorkerErrorEstimate

__all__ = ["OldTechniqueEstimator", "evaluate_workers_old"]


def _super_worker_responses(
    matrix: ResponseMatrix, members: list[int], rng: np.random.Generator
) -> dict[int, int]:
    """Majority response of a group of workers, per task they all answered.

    Reference [2] requires regular data, so the super-worker is only defined
    on tasks every member answered; ties are broken uniformly at random.
    """
    if not members:
        raise ConfigurationError("a super-worker needs at least one member")
    common = matrix.common_tasks(*members)
    responses: dict[int, int] = {}
    for task in common:
        votes = [matrix.response(member, task) for member in members]
        ones = sum(1 for vote in votes if vote == 1)
        zeros = len(votes) - ones
        if ones > zeros:
            responses[task] = 1
        elif zeros > ones:
            responses[task] = 0
        else:
            responses[task] = int(rng.integers(0, 2))
    return responses


def _agreement(
    responses_a: dict[int, int], responses_b: dict[int, int]
) -> tuple[float, int]:
    """Agreement rate and common-task count between two response dictionaries."""
    common = set(responses_a) & set(responses_b)
    if not common:
        raise InsufficientDataError("the two response sets share no task")
    agreements = sum(1 for task in common if responses_a[task] == responses_b[task])
    return agreements / len(common), len(common)


@dataclass
class OldTechniqueEstimator:
    """Conservative super-worker intervals in the style of reference [2].

    Parameters
    ----------
    confidence:
        Confidence level of the produced intervals.
    seed:
        Seed for the tie-breaking randomness inside super-worker majority
        votes (kept explicit so results are reproducible).
    """

    confidence: float = 0.95
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )

    def evaluate_worker(self, matrix: ResponseMatrix, worker: int) -> WorkerErrorEstimate:
        """Conservative interval for one worker's error rate."""
        if not matrix.is_binary:
            raise ConfigurationError("the old technique only handles binary tasks")
        if matrix.n_workers < 3:
            raise InsufficientDataError("at least 3 workers are required")
        rng = np.random.default_rng(self.seed + worker)
        others = [w for w in range(matrix.n_workers) if w != worker]
        half = len(others) // 2
        group_a = others[:half]
        group_b = others[half:]

        own_responses = matrix.worker_responses(worker)
        responses_a = _super_worker_responses(matrix, group_a, rng)
        responses_b = _super_worker_responses(matrix, group_b, rng)

        q_ia, n_ia = _agreement(own_responses, responses_a)
        q_ib, n_ib = _agreement(own_responses, responses_b)
        q_ab, n_ab = _agreement(responses_a, responses_b)

        # Each of the three agreement rates gets an individual normal-theory
        # confidence interval at the target level; the conservativeness of the
        # old technique comes from the worst-case (interval-arithmetic)
        # propagation below, which sums the per-rate uncertainties instead of
        # combining them in quadrature as Theorem 1 does.
        alpha = 1.0 - self.confidence
        per_rate_quantile = normal_quantile(1.0 - alpha / 2.0)

        def rate_bounds(q: float, n: int) -> tuple[float, float]:
            half_width = per_rate_quantile * math.sqrt(max(q * (1.0 - q), 1e-12) / n)
            return (q - half_width, q + half_width)

        bounds = [rate_bounds(q_ia, n_ia), rate_bounds(q_ib, n_ib), rate_bounds(q_ab, n_ab)]

        # Interval arithmetic: evaluate the error-rate formula on every corner
        # of the box of agreement-rate bounds and take the extreme values.
        clamped_any = False
        corner_values = []
        for corner in itertools.product(*bounds):
            clamped_corner = []
            for value in corner:
                clamped_value, was_clamped = clamp_agreement(value)
                clamped_any = clamped_any or was_clamped
                clamped_corner.append(clamped_value)
            corner_values.append(error_rate_from_agreements(*clamped_corner))

        q_ia_c, clamped_1 = clamp_agreement(q_ia)
        q_ib_c, clamped_2 = clamp_agreement(q_ib)
        q_ab_c, clamped_3 = clamp_agreement(q_ab)
        clamped_any = clamped_any or clamped_1 or clamped_2 or clamped_3
        centre = error_rate_from_agreements(q_ia_c, q_ib_c, q_ab_c)

        lower = min(corner_values)
        upper = max(corner_values)
        interval = ConfidenceInterval(
            mean=min(max(centre, 0.0), 1.0),
            lower=min(max(lower, 0.0), 1.0),
            upper=min(max(upper, 0.0), 1.0),
            confidence=self.confidence,
            deviation=(upper - lower) / 2.0,
        )
        return WorkerErrorEstimate(
            worker=worker,
            interval=interval,
            n_tasks=len(own_responses),
            status=EstimateStatus.CLAMPED if clamped_any else EstimateStatus.OK,
        )

    def evaluate_all(self, matrix: ResponseMatrix) -> list[WorkerErrorEstimate]:
        """Conservative intervals for every worker."""
        return [
            self.evaluate_worker(matrix, worker) for worker in range(matrix.n_workers)
        ]


def evaluate_workers_old(
    matrix: ResponseMatrix, confidence: float, seed: int = 0
) -> list[WorkerErrorEstimate]:
    """One-call wrapper around :class:`OldTechniqueEstimator`."""
    estimator = OldTechniqueEstimator(confidence=confidence, seed=seed)
    return estimator.evaluate_all(matrix)
