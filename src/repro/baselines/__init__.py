"""Baseline and comparator methods.

* :mod:`repro.baselines.old_technique` — the "old technique" of reference [2]
  (SIGKDD 2013), the comparison target of the paper's Figure 1.
* :mod:`repro.baselines.majority_vote` — majority-vote aggregation and the
  disagreement-with-majority error proxy.
* :mod:`repro.baselines.dawid_skene` — the classical Dawid-Skene EM point
  estimator (no confidence intervals), representing the EM-based related work.
* :mod:`repro.baselines.gold_standard` — textbook intervals when gold answers
  are available (the classical evaluation the introduction starts from).
"""

from repro.baselines.old_technique import OldTechniqueEstimator, evaluate_workers_old
from repro.baselines.majority_vote import (
    majority_vote_labels,
    majority_disagreement_rates,
)
from repro.baselines.dawid_skene import DawidSkeneResult, dawid_skene
from repro.baselines.gold_standard import gold_standard_intervals
from repro.baselines.karger_oh_shah import KargerOhShahResult, karger_oh_shah
from repro.baselines.bootstrap import BootstrapEstimator, bootstrap_intervals

__all__ = [
    "OldTechniqueEstimator",
    "evaluate_workers_old",
    "majority_vote_labels",
    "majority_disagreement_rates",
    "DawidSkeneResult",
    "dawid_skene",
    "gold_standard_intervals",
    "KargerOhShahResult",
    "karger_oh_shah",
    "BootstrapEstimator",
    "bootstrap_intervals",
]
