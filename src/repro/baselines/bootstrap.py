"""Bootstrap confidence intervals for worker error rates (comparison baseline).

A natural alternative to the paper's analytical (delta-method) intervals is
the nonparametric bootstrap: resample tasks with replacement, recompute the
point estimate of each worker's error rate on every resample, and report
percentile intervals.  The bootstrap needs no derivative or covariance
formulas, but each interval costs hundreds of re-estimations — the cost the
paper's closed-form machinery avoids — and on sparse data its resamples
frequently lose the overlap the estimator needs.  The ablation bench compares
coverage, width, and runtime of the two approaches.

The point estimator bootstrapped here is the paper's own agreement-based
estimate (Eq. (1) aggregated over triples), so the comparison isolates the
*interval construction* rather than the underlying estimator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.agreement import AgreementStatistics, compute_agreement_statistics
from repro.core.pairing import form_triples
from repro.core.three_worker import clamp_agreement, error_rate_from_agreements
from repro.data.response_matrix import ResponseMatrix
from repro.types import ConfidenceInterval, EstimateStatus, WorkerErrorEstimate

__all__ = ["BootstrapEstimator", "bootstrap_intervals"]


def _point_estimate(
    matrix: ResponseMatrix,
    worker: int,
    stats: AgreementStatistics | None = None,
) -> float | None:
    """The paper's agreement-based point estimate (uniform triple average).

    Pass a shared ``stats`` when estimating several workers of the same
    matrix, so the agreement statistics are computed once per resample
    rather than once per (worker, resample).
    """
    if stats is None:
        stats = compute_agreement_statistics(matrix)
    candidates = [w for w in range(matrix.n_workers) if w != worker]
    triples = form_triples(stats, worker, candidates)
    estimates = []
    for _, partner_a, partner_b in triples:
        try:
            q_ia, _ = clamp_agreement(stats.agreement_rate(worker, partner_a))
            q_ib, _ = clamp_agreement(stats.agreement_rate(worker, partner_b))
            q_ab, _ = clamp_agreement(stats.agreement_rate(partner_a, partner_b))
        except InsufficientDataError:
            continue
        estimates.append(error_rate_from_agreements(q_ia, q_ib, q_ab))
    if not estimates:
        return None
    return float(np.clip(np.mean(estimates), 0.0, 1.0))


def _resample_tasks(
    matrix: ResponseMatrix, rng: np.random.Generator
) -> ResponseMatrix:
    """Draw tasks with replacement and rebuild a response matrix.

    Each drawn task becomes a new task id, so a task drawn twice contributes
    two (identical) columns — the standard nonparametric bootstrap over tasks.
    """
    drawn = rng.integers(0, matrix.n_tasks, size=matrix.n_tasks)
    resampled = ResponseMatrix(
        n_workers=matrix.n_workers, n_tasks=matrix.n_tasks, arity=matrix.arity
    )
    for new_task, original_task in enumerate(drawn):
        for worker, label in matrix.task_responses(int(original_task)).items():
            resampled.add_response(worker, new_task, label)
    return resampled


@dataclass
class BootstrapEstimator:
    """Percentile-bootstrap intervals around the paper's point estimator.

    Parameters
    ----------
    confidence:
        Confidence level of the intervals.
    n_resamples:
        Number of bootstrap resamples (each one re-estimates every worker).
    seed:
        Seed for the resampling randomness.
    """

    confidence: float = 0.95
    n_resamples: int = 200
    seed: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {self.confidence}"
            )
        if self.n_resamples < 10:
            raise ConfigurationError(
                f"n_resamples must be at least 10, got {self.n_resamples}"
            )

    def evaluate_worker(self, matrix: ResponseMatrix, worker: int) -> WorkerErrorEstimate:
        """Bootstrap interval for one worker."""
        return self.evaluate_all(matrix, workers=[worker])[worker]

    def evaluate_all(
        self, matrix: ResponseMatrix, workers: list[int] | None = None
    ) -> dict[int, WorkerErrorEstimate]:
        """Bootstrap intervals for the requested workers (all by default)."""
        if not matrix.is_binary:
            raise ConfigurationError("the bootstrap baseline handles binary data only")
        if matrix.n_workers < 3:
            raise InsufficientDataError("at least 3 workers are required")
        if workers is None:
            workers = list(range(matrix.n_workers))
        rng = np.random.default_rng(self.seed)
        samples: dict[int, list[float]] = {worker: [] for worker in workers}
        for _ in range(self.n_resamples):
            resampled = _resample_tasks(matrix, rng)
            stats = compute_agreement_statistics(resampled)
            for worker in workers:
                estimate = _point_estimate(resampled, worker, stats=stats)
                if estimate is not None:
                    samples[worker].append(estimate)

        alpha = 1.0 - self.confidence
        results: dict[int, WorkerErrorEstimate] = {}
        for worker in workers:
            values = np.asarray(samples[worker])
            point = _point_estimate(matrix, worker)
            if values.size < 10 or point is None:
                interval = ConfidenceInterval(
                    mean=0.25, lower=0.0, upper=1.0,
                    confidence=self.confidence, deviation=1.0,
                )
                status = EstimateStatus.DEGENERATE
            else:
                lower = float(np.quantile(values, alpha / 2.0))
                upper = float(np.quantile(values, 1.0 - alpha / 2.0))
                interval = ConfidenceInterval(
                    mean=point,
                    lower=min(lower, point),
                    upper=max(upper, point),
                    confidence=self.confidence,
                    deviation=float(values.std()),
                )
                status = EstimateStatus.OK
            results[worker] = WorkerErrorEstimate(
                worker=worker,
                interval=interval,
                n_tasks=matrix.n_tasks_of(worker),
                status=status,
            )
        return results


def bootstrap_intervals(
    matrix: ResponseMatrix,
    confidence: float,
    n_resamples: int = 200,
    seed: int = 0,
) -> dict[int, WorkerErrorEstimate]:
    """One-call wrapper around :class:`BootstrapEstimator`."""
    estimator = BootstrapEstimator(
        confidence=confidence, n_resamples=n_resamples, seed=seed
    )
    return estimator.evaluate_all(matrix)
