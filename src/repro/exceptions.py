"""Exception hierarchy for the :mod:`repro` library.

Every error the library raises deliberately derives from
:class:`CrowdAssessmentError`, so downstream users can catch library-specific
failures with a single ``except`` clause while still letting programming
errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class CrowdAssessmentError(Exception):
    """Base class for all errors raised by the repro library."""


class DataValidationError(CrowdAssessmentError):
    """Raised when input response data is malformed or inconsistent.

    Examples: responses outside the declared label set, negative worker or
    task identifiers, a gold label for a task that does not exist.
    """


class InsufficientDataError(CrowdAssessmentError):
    """Raised when the data cannot support the requested estimate.

    The paper requires, for example, that every pair of workers in a triple
    shares at least one common task (Section III-B), and that at least three
    workers are available for any evaluation without a gold standard.
    """


class DegenerateEstimateError(CrowdAssessmentError):
    """Raised when an estimate is mathematically degenerate.

    The closed-form error-rate function of Eq. (1) has a singularity when a
    pairwise agreement rate equals 1/2; the k-ary spectral estimator fails
    when a response-frequency matrix is singular.  Callers that prefer a
    best-effort answer can pass ``strict=False`` to the estimators, in which
    case a clamped estimate flagged as degenerate is returned instead of this
    exception being raised.
    """


class ConvergenceError(CrowdAssessmentError):
    """Raised when an iterative procedure (e.g. Dawid-Skene EM) fails to
    converge within the configured iteration budget and the caller asked for
    strict behaviour."""


class ConfigurationError(CrowdAssessmentError):
    """Raised when an estimator or experiment is configured inconsistently
    (e.g. a confidence level outside (0, 1), a negative density)."""


class DurableStateError(CrowdAssessmentError):
    """Raised when persisted streaming state cannot be trusted or reused.

    Examples: a write-ahead log whose versioned header is missing or from an
    unsupported future version, a sequence gap between a snapshot and the
    surviving WAL records, or an attempt to open a fresh durable session on
    a directory that already holds state (which must be resumed instead).
    Truncated or corrupt WAL *tails* and snapshots that fail their checksum
    are NOT errors — they are the expected residue of a crash and are
    discarded cleanly during replay (see :mod:`repro.serve.durable`)."""
