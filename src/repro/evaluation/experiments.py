"""One function per figure of the paper's evaluation.

Every function returns an :class:`ExperimentResult` containing the same
series the corresponding figure plots, so the benchmark harness (and the
examples) can print paper-comparable numbers.  The paper uses 500 repetitions
and a 19-point confidence grid; the defaults here are reduced so a full
reproduction run finishes in minutes on a laptop — pass ``n_repetitions`` and
``confidence_grid`` explicitly to match the paper exactly.

Figure index
------------

========  ===========================================================
figure    function
========  ===========================================================
Fig 1     :func:`figure1_old_vs_new`
Fig 2(a)  :func:`figure2a_accuracy`
Fig 2(b)  :func:`figure2b_density`
Fig 2(c)  :func:`figure2c_weight_optimization`
Fig 3     :func:`figure3_real_data_accuracy`
Fig 4     :func:`figure4_spammer_filtered_accuracy`
Fig 5(a)  :func:`figure5a_kary_accuracy`
Fig 5(b)  :func:`figure5b_kary_density`
Fig 5(c)  :func:`figure5c_kary_real_data`
========  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.old_technique import OldTechniqueEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.data.registry import load_dataset
from repro.evaluation.coverage import (
    binary_coverage,
    dataset_coverage,
    kary_coverage,
    kary_dataset_coverage,
)
from repro.evaluation.sweeps import SweepResult
from repro.simulation.binary import simulate_binary_responses
from repro.simulation.density import per_worker_density_ramp
from repro.simulation.kary import simulate_kary_responses
from repro.types import EstimateStatus

__all__ = [
    "PAPER_CONFIDENCE_GRID",
    "DEFAULT_CONFIDENCE_GRID",
    "ExperimentResult",
    "figure1_old_vs_new",
    "figure2a_accuracy",
    "figure2b_density",
    "figure2c_weight_optimization",
    "figure3_real_data_accuracy",
    "figure4_spammer_filtered_accuracy",
    "figure5a_kary_accuracy",
    "figure5b_kary_density",
    "figure5c_kary_real_data",
]

#: The paper's confidence grid: 0.05, 0.10, ..., 0.95.
PAPER_CONFIDENCE_GRID: tuple[float, ...] = tuple(
    round(0.05 * step, 2) for step in range(1, 20)
)

#: Coarser default grid used by the benches so they run in seconds.
DEFAULT_CONFIDENCE_GRID: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9)

#: Density grid of Figures 2(b) and 5(b).
PAPER_DENSITY_GRID: tuple[float, ...] = tuple(
    round(0.5 + 0.05 * step, 2) for step in range(0, 10)
)

DEFAULT_DENSITY_GRID: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9)

#: Minimum common-task thresholds per k-ary dataset (Section IV-C uses
#: 60/100/30 on the originals; the stand-ins have their own overlap
#: structure, so the thresholds are scaled to keep ~50 usable triples).
KARY_DATASET_THRESHOLDS: dict[str, int] = {"mooc": 20, "wsd": 40, "ws": 15}


@dataclass
class ExperimentResult:
    """The reproduced content of one paper figure.

    Attributes
    ----------
    figure:
        Paper figure id, e.g. ``"fig2a"``.
    title:
        Human-readable description.
    sweep:
        The named series with their axis labels.
    notes:
        Free-form notes (e.g. reduced repetition counts).
    """

    figure: str
    title: str
    sweep: SweepResult
    notes: str = ""
    parameters: dict[str, object] = field(default_factory=dict)

    @property
    def series(self) -> dict[str, list[tuple[float, float]]]:
        """Convenience: label -> list of (x, y) points."""
        return {label: list(series.points) for label, series in self.sweep.series.items()}


def _mean_interval_size(estimates, include_degenerate: bool = False) -> float:
    sizes = [
        estimate.interval.size
        for estimate in estimates
        if include_degenerate or estimate.status is not EstimateStatus.DEGENERATE
    ]
    if not sizes:
        return float("nan")
    return float(np.mean(sizes))


# --------------------------------------------------------------------------- #
# Figure 1 — old vs new technique, interval size vs confidence
# --------------------------------------------------------------------------- #


def figure1_old_vs_new(
    n_tasks: int = 100,
    worker_counts: Sequence[int] = (3, 7),
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    n_repetitions: int = 30,
    seed: int = 0,
) -> ExperimentResult:
    """Figure 1: average interval size vs confidence, new vs old technique.

    Regular data, error rates drawn from {0.1, 0.2, 0.3}.  The paper reports
    the new intervals being up to ~40 % smaller; the exact factor depends on
    the conservative-baseline re-derivation (see DESIGN.md), but the ordering
    (new < old at every confidence level) must hold.
    """
    rng = np.random.default_rng(seed)
    sweep = SweepResult(
        name="fig1", x_label="confidence level", y_label="mean interval size"
    )
    for n_workers in worker_counts:
        matrices = [
            simulate_binary_responses(n_workers, n_tasks, rng, density=1.0)[0]
            for _ in range(n_repetitions)
        ]
        for confidence in confidence_grid:
            new_estimator = MWorkerEstimator(confidence=confidence)
            old_estimator = OldTechniqueEstimator(confidence=confidence, seed=seed)
            new_sizes = []
            old_sizes = []
            for matrix in matrices:
                new_sizes.append(_mean_interval_size(new_estimator.evaluate_all(matrix)))
                old_sizes.append(_mean_interval_size(old_estimator.evaluate_all(matrix)))
            sweep.add_point(
                f"new technique, {n_workers} workers", confidence, float(np.mean(new_sizes))
            )
            sweep.add_point(
                f"old technique, {n_workers} workers", confidence, float(np.mean(old_sizes))
            )
    return ExperimentResult(
        figure="fig1",
        title="Interval size vs confidence: new vs old technique "
        f"(n={n_tasks} tasks, regular data)",
        sweep=sweep,
        parameters={
            "n_tasks": n_tasks,
            "worker_counts": tuple(worker_counts),
            "n_repetitions": n_repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Figure 2(a) — interval accuracy vs confidence (binary, non-regular)
# --------------------------------------------------------------------------- #


def figure2a_accuracy(
    configurations: Sequence[tuple[int, int]] = ((3, 100), (3, 300), (7, 100), (7, 300)),
    density: float = 0.8,
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    n_repetitions: int = 60,
    seed: int = 1,
) -> ExperimentResult:
    """Figure 2(a): interval-accuracy vs confidence for (workers, tasks) pairs."""
    rng = np.random.default_rng(seed)
    sweep = SweepResult(
        name="fig2a", x_label="confidence level", y_label="interval accuracy"
    )
    for n_workers, n_tasks in configurations:
        label = f"{n_workers} workers {n_tasks} tasks"
        for confidence in confidence_grid:
            result = binary_coverage(
                n_workers=n_workers,
                n_tasks=n_tasks,
                confidence=confidence,
                rng=rng,
                density=density,
                n_repetitions=n_repetitions,
            )
            sweep.add_point(label, confidence, result.accuracy)
    return ExperimentResult(
        figure="fig2a",
        title="Accuracy of the m-worker binary non-regular method vs confidence "
        f"(density={density})",
        sweep=sweep,
        parameters={
            "configurations": tuple(configurations),
            "density": density,
            "n_repetitions": n_repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Figure 2(b) — interval size vs density
# --------------------------------------------------------------------------- #


def figure2b_density(
    configurations: Sequence[tuple[int, int]] = ((7, 100), (3, 300), (7, 300)),
    densities: Sequence[float] = DEFAULT_DENSITY_GRID,
    confidence: float = 0.8,
    n_repetitions: int = 60,
    seed: int = 2,
) -> ExperimentResult:
    """Figure 2(b): average interval size vs data density at c = 0.8."""
    rng = np.random.default_rng(seed)
    sweep = SweepResult(name="fig2b", x_label="density", y_label="mean interval size")
    for n_workers, n_tasks in configurations:
        label = f"{n_workers} workers, {n_tasks} tasks"
        for density in densities:
            result = binary_coverage(
                n_workers=n_workers,
                n_tasks=n_tasks,
                confidence=confidence,
                rng=rng,
                density=density,
                n_repetitions=n_repetitions,
            )
            sweep.add_point(label, density, result.mean_size)
    return ExperimentResult(
        figure="fig2b",
        title=f"Interval size vs density (c={confidence})",
        sweep=sweep,
        parameters={
            "configurations": tuple(configurations),
            "confidence": confidence,
            "n_repetitions": n_repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Figure 2(c) — weight optimization ablation
# --------------------------------------------------------------------------- #


def figure2c_weight_optimization(
    n_workers: int = 7,
    n_tasks: int = 100,
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    n_repetitions: int = 60,
    seed: int = 3,
) -> ExperimentResult:
    """Figure 2(c): interval size with Lemma-5 weights vs uniform weights.

    The per-worker density ramp ``d_i = (0.5 i + m - i) / m`` makes triples
    carry very different amounts of information, which is where the weight
    optimization pays off (about 2x smaller intervals in the paper).
    """
    rng = np.random.default_rng(seed)
    densities = per_worker_density_ramp(n_workers)
    sweep = SweepResult(
        name="fig2c", x_label="confidence level", y_label="mean interval size"
    )
    for confidence in confidence_grid:
        for optimize, label in ((True, "with optimization"), (False, "no optimization")):
            result = binary_coverage(
                n_workers=n_workers,
                n_tasks=n_tasks,
                confidence=confidence,
                rng=rng,
                density=densities,
                n_repetitions=n_repetitions,
                optimize_weights=optimize,
            )
            sweep.add_point(label, confidence, result.mean_size)
    return ExperimentResult(
        figure="fig2c",
        title="Interval size vs confidence, optimized vs uniform triple weights",
        sweep=sweep,
        parameters={
            "n_workers": n_workers,
            "n_tasks": n_tasks,
            "n_repetitions": n_repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Figures 3 and 4 — real-data accuracy, without and with spammer filtering
# --------------------------------------------------------------------------- #


def _real_data_accuracy(
    figure: str,
    title: str,
    datasets: Sequence[str],
    confidence_grid: Sequence[float],
    remove_spammers: bool,
    seed: int,
) -> ExperimentResult:
    sweep = SweepResult(
        name=figure, x_label="confidence level", y_label="interval accuracy"
    )
    display_names = {"ic": "Image Comparison", "rte": "RTE", "tem": "Temporal"}
    for dataset_name in datasets:
        matrix = load_dataset(dataset_name, seed=seed)
        label = display_names.get(dataset_name, dataset_name)
        for confidence in confidence_grid:
            result = dataset_coverage(
                matrix, confidence=confidence, remove_spammers=remove_spammers
            )
            sweep.add_point(label, confidence, result.accuracy)
    return ExperimentResult(
        figure=figure,
        title=title,
        sweep=sweep,
        notes="datasets are seeded synthetic stand-ins with the shapes of the "
        "originals (see DESIGN.md, substitutions)",
        parameters={"datasets": tuple(datasets), "remove_spammers": remove_spammers},
    )


def figure3_real_data_accuracy(
    datasets: Sequence[str] = ("ic", "rte", "tem"),
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    seed: int = 7,
) -> ExperimentResult:
    """Figure 3: interval accuracy on the three binary datasets, no filtering."""
    return _real_data_accuracy(
        "fig3",
        "Interval accuracy vs confidence on real-data stand-ins (no spammer filter)",
        datasets,
        confidence_grid,
        remove_spammers=False,
        seed=seed,
    )


def figure4_spammer_filtered_accuracy(
    datasets: Sequence[str] = ("ic", "rte", "tem"),
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    seed: int = 7,
) -> ExperimentResult:
    """Figure 4: the same measurement after pruning near-spammers (threshold 0.4)."""
    return _real_data_accuracy(
        "fig4",
        "Interval accuracy vs confidence on real-data stand-ins (spammers removed)",
        datasets,
        confidence_grid,
        remove_spammers=True,
        seed=seed,
    )


# --------------------------------------------------------------------------- #
# Figure 5(a) — k-ary accuracy vs confidence
# --------------------------------------------------------------------------- #


def figure5a_kary_accuracy(
    arities: Sequence[int] = (2, 3, 4),
    task_counts: Sequence[int] = (100, 1000),
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    n_repetitions: int = 20,
    seed: int = 11,
) -> ExperimentResult:
    """Figure 5(a): k-ary interval accuracy vs confidence for several arities."""
    rng = np.random.default_rng(seed)
    sweep = SweepResult(
        name="fig5a", x_label="confidence level", y_label="interval accuracy"
    )
    for arity in arities:
        for n_tasks in task_counts:
            label = f"arity {arity}, {n_tasks} tasks"
            for confidence in confidence_grid:
                result = kary_coverage(
                    arity=arity,
                    n_tasks=n_tasks,
                    confidence=confidence,
                    rng=rng,
                    density=1.0,
                    n_repetitions=n_repetitions,
                )
                sweep.add_point(label, confidence, result.accuracy)
    return ExperimentResult(
        figure="fig5a",
        title="k-ary interval accuracy vs confidence (3 workers, paper matrices)",
        sweep=sweep,
        parameters={
            "arities": tuple(arities),
            "task_counts": tuple(task_counts),
            "n_repetitions": n_repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Figure 5(b) — k-ary interval size vs density and arity
# --------------------------------------------------------------------------- #


def figure5b_kary_density(
    arities: Sequence[int] = (2, 3, 4),
    densities: Sequence[float] = DEFAULT_DENSITY_GRID,
    n_tasks: int = 500,
    confidence: float = 0.8,
    n_repetitions: int = 20,
    seed: int = 13,
) -> ExperimentResult:
    """Figure 5(b): average k-ary interval size vs density for each arity."""
    rng = np.random.default_rng(seed)
    sweep = SweepResult(name="fig5b", x_label="density", y_label="mean interval size")
    for arity in arities:
        label = f"arity {arity}"
        for density in densities:
            result = kary_coverage(
                arity=arity,
                n_tasks=n_tasks,
                confidence=confidence,
                rng=rng,
                density=density,
                n_repetitions=n_repetitions,
            )
            sweep.add_point(label, density, result.mean_size)
    return ExperimentResult(
        figure="fig5b",
        title=f"k-ary interval size vs density (n={n_tasks}, c={confidence})",
        sweep=sweep,
        parameters={
            "arities": tuple(arities),
            "n_tasks": n_tasks,
            "confidence": confidence,
            "n_repetitions": n_repetitions,
        },
    )


# --------------------------------------------------------------------------- #
# Figure 5(c) — k-ary accuracy on real datasets
# --------------------------------------------------------------------------- #


def figure5c_kary_real_data(
    datasets: Sequence[str] = ("mooc", "wsd", "ws"),
    confidence_grid: Sequence[float] = DEFAULT_CONFIDENCE_GRID,
    n_triples: int = 20,
    seed: int = 17,
) -> ExperimentResult:
    """Figure 5(c): k-ary interval accuracy on the MOOC / WSD / WS stand-ins.

    Random triples of workers with enough common tasks are evaluated, as in
    Section IV-C; thresholds are scaled to the stand-ins' overlap structure.
    """
    rng = np.random.default_rng(seed)
    sweep = SweepResult(
        name="fig5c", x_label="confidence level", y_label="interval accuracy"
    )
    display_names = {"mooc": "MOOC arity 3", "wsd": "WSD arity 2", "ws": "Wordsim arity 2"}
    for dataset_name in datasets:
        matrix = load_dataset(dataset_name)
        threshold = KARY_DATASET_THRESHOLDS.get(dataset_name, 20)
        label = display_names.get(dataset_name, dataset_name)
        for confidence in confidence_grid:
            result = kary_dataset_coverage(
                matrix,
                confidence=confidence,
                min_common_tasks=threshold,
                n_triples=n_triples,
                rng=rng,
            )
            sweep.add_point(label, confidence, result.accuracy)
    return ExperimentResult(
        figure="fig5c",
        title="k-ary interval accuracy on real-data stand-ins",
        sweep=sweep,
        notes="datasets are seeded synthetic stand-ins; common-task thresholds "
        "scaled to their overlap structure (see DESIGN.md)",
        parameters={"datasets": tuple(datasets), "n_triples": n_triples},
    )
