"""Interval-accuracy (coverage) and interval-size measurement.

These helpers run an estimator many times on freshly simulated data (or on a
fixed real dataset with gold-derived truth) and report the two quantities the
paper plots everywhere: the fraction of intervals containing the truth and
the average interval width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.m_worker import MWorkerEstimator
from repro.core.kary import KaryEstimator
from repro.core.spammer_filter import filter_spammers
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import simulate_binary_responses
from repro.simulation.kary import simulate_kary_responses
from repro.types import EstimateStatus

__all__ = [
    "CoverageResult",
    "binary_coverage",
    "kary_coverage",
    "dataset_coverage",
    "kary_dataset_coverage",
]


@dataclass(frozen=True)
class CoverageResult:
    """Aggregate coverage statistics over many intervals.

    Attributes
    ----------
    n_intervals:
        Number of intervals produced and checked.
    n_covering:
        How many of them contained the true parameter.
    mean_size:
        Average interval width.
    mean_absolute_error:
        Average distance between interval centre and true parameter.
    """

    n_intervals: int
    n_covering: int
    mean_size: float
    mean_absolute_error: float

    @property
    def accuracy(self) -> float:
        """The paper's interval-accuracy: covering fraction."""
        if self.n_intervals == 0:
            return float("nan")
        return self.n_covering / self.n_intervals

    @staticmethod
    def from_observations(
        covered: list[bool], sizes: list[float], errors: list[float]
    ) -> "CoverageResult":
        """Build the aggregate from raw per-interval observations."""
        if not covered:
            return CoverageResult(0, 0, float("nan"), float("nan"))
        return CoverageResult(
            n_intervals=len(covered),
            n_covering=sum(covered),
            mean_size=float(np.mean(sizes)),
            mean_absolute_error=float(np.mean(errors)),
        )


def binary_coverage(
    n_workers: int,
    n_tasks: int,
    confidence: float,
    rng: np.random.Generator,
    density: float | np.ndarray = 0.8,
    n_repetitions: int = 100,
    optimize_weights: bool = True,
    include_degenerate: bool = False,
) -> CoverageResult:
    """Coverage of the m-worker binary estimator on simulated data.

    Reproduces the measurement loop of Sections III-D1/D2/D3: fresh worker
    population and responses per repetition, intervals for every worker,
    checked against the known error rates.
    """
    if n_repetitions <= 0:
        raise ConfigurationError("n_repetitions must be positive")
    estimator = MWorkerEstimator(
        confidence=confidence, optimize_weights=optimize_weights
    )
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    for _ in range(n_repetitions):
        matrix, true_rates = simulate_binary_responses(
            n_workers, n_tasks, rng, density=density
        )
        estimates = estimator.evaluate_all(matrix)
        for estimate in estimates:
            if estimate.status is EstimateStatus.DEGENERATE and not include_degenerate:
                continue
            truth = float(true_rates[estimate.worker])
            covered.append(estimate.interval.contains(truth))
            sizes.append(estimate.interval.size)
            errors.append(abs(estimate.interval.mean - truth))
    return CoverageResult.from_observations(covered, sizes, errors)


def kary_coverage(
    arity: int,
    n_tasks: int,
    confidence: float,
    rng: np.random.Generator,
    density: float = 1.0,
    n_repetitions: int = 50,
    n_workers: int = 3,
    epsilon: float = 0.01,
) -> CoverageResult:
    """Coverage of the k-ary estimator on simulated data (Section IV-B)."""
    if n_repetitions <= 0:
        raise ConfigurationError("n_repetitions must be positive")
    estimator = KaryEstimator(confidence=confidence, epsilon=epsilon)
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    for _ in range(n_repetitions):
        matrix, confusion = simulate_kary_responses(
            n_workers, n_tasks, arity, rng, density=density
        )
        try:
            estimates = estimator.evaluate(matrix, workers=(0, 1, 2))
        except InsufficientDataError:
            continue
        for position, estimate in enumerate(estimates):
            if estimate.status is EstimateStatus.DEGENERATE:
                continue
            truth_matrix = confusion[position]
            for a in range(arity):
                for b in range(arity):
                    interval = estimate.interval(a, b)
                    truth = float(truth_matrix[a, b])
                    covered.append(interval.contains(truth))
                    sizes.append(interval.size)
                    errors.append(abs(interval.mean - truth))
    return CoverageResult.from_observations(covered, sizes, errors)


def dataset_coverage(
    matrix: ResponseMatrix,
    confidence: float,
    remove_spammers: bool = False,
    spammer_threshold: float = 0.4,
    min_gold_tasks: int = 5,
    optimize_weights: bool = True,
) -> CoverageResult:
    """Coverage of the binary estimator on one (real or stand-in) dataset.

    As in Section III-E, the "true" error rate of each worker is the fraction
    of gold-labelled tasks they answered incorrectly; workers with fewer than
    ``min_gold_tasks`` gold-labelled answers are skipped because their proxy
    truth is itself too noisy to judge coverage against.
    """
    if not matrix.has_gold:
        raise InsufficientDataError("dataset_coverage requires gold labels")
    working = matrix
    id_map = list(range(matrix.n_workers))
    if remove_spammers:
        filtered = filter_spammers(matrix, threshold=spammer_threshold)
        working = filtered.filtered
        id_map = list(filtered.kept_workers)
    estimator = MWorkerEstimator(
        confidence=confidence, optimize_weights=optimize_weights
    )
    estimates = estimator.evaluate_all(working)
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    for estimate in estimates:
        if estimate.status is EstimateStatus.DEGENERATE:
            continue
        original_id = id_map[estimate.worker]
        try:
            truth = matrix.empirical_error_rate(original_id)
        except InsufficientDataError:
            continue
        gold_answered = sum(
            1
            for task in matrix.worker_responses(original_id)
            if matrix.gold_label(task) is not None
        )
        if gold_answered < min_gold_tasks:
            continue
        covered.append(estimate.interval.contains(truth))
        sizes.append(estimate.interval.size)
        errors.append(abs(estimate.interval.mean - truth))
    return CoverageResult.from_observations(covered, sizes, errors)


def kary_dataset_coverage(
    matrix: ResponseMatrix,
    confidence: float,
    min_common_tasks: int,
    n_triples: int,
    rng: np.random.Generator,
    epsilon: float = 0.01,
) -> CoverageResult:
    """Coverage of the k-ary estimator on one dataset (Section IV-C).

    Random triples of workers sharing at least ``min_common_tasks`` tasks are
    drawn (as the paper does); the "true" response probabilities are the
    empirical confusion matrices against gold labels.
    """
    if not matrix.has_gold:
        raise InsufficientDataError("kary_dataset_coverage requires gold labels")
    arity = matrix.arity
    estimator = KaryEstimator(confidence=confidence, epsilon=epsilon)
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []

    eligible_triples = _sample_triples(matrix, min_common_tasks, n_triples, rng)
    if not eligible_triples:
        raise InsufficientDataError(
            f"no triple of workers shares at least {min_common_tasks} tasks"
        )
    for triple in eligible_triples:
        try:
            estimates = estimator.evaluate(matrix, workers=triple)
        except InsufficientDataError:
            continue
        for worker, estimate in zip(triple, estimates):
            if estimate.status is EstimateStatus.DEGENERATE:
                continue
            truth_matrix = matrix.empirical_confusion_matrix(worker)
            for a in range(arity):
                for b in range(arity):
                    interval = estimate.interval(a, b)
                    truth = float(truth_matrix[a, b])
                    covered.append(interval.contains(truth))
                    sizes.append(interval.size)
                    errors.append(abs(interval.mean - truth))
    return CoverageResult.from_observations(covered, sizes, errors)


def _sample_triples(
    matrix: ResponseMatrix,
    min_common_tasks: int,
    n_triples: int,
    rng: np.random.Generator,
    max_attempts: int = 5000,
) -> list[tuple[int, int, int]]:
    """Draw up to ``n_triples`` random worker triples with enough overlap."""
    triples: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    attempts = 0
    workers = np.arange(matrix.n_workers)
    while len(triples) < n_triples and attempts < max_attempts:
        attempts += 1
        chosen = tuple(sorted(int(w) for w in rng.choice(workers, size=3, replace=False)))
        if chosen in seen:
            continue
        seen.add(chosen)
        if matrix.n_common_tasks(*chosen) >= min_common_tasks:
            triples.append(chosen)
    return triples
