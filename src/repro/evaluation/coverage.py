"""Interval-accuracy (coverage) and interval-size measurement.

These helpers run an estimator many times on freshly simulated data (or on a
fixed real dataset with gold-derived truth) and report the two quantities the
paper plots everywhere: the fraction of intervals containing the truth and
the average interval width.

Accounting contract
-------------------

Every helper in this module reports *how much of the requested measurement
actually happened*, not only the aggregates:

* ``n_repetitions`` — units of measurement attempted (simulation
  repetitions, dataset workers, sampled triples);
* ``n_skipped_repetitions`` — units that produced no intervals at all
  (estimator raised :class:`~repro.exceptions.InsufficientDataError`, or a
  dataset worker had no usable gold truth).  When the usable fraction drops
  below ``min_usable_fraction`` the repetition-driven helpers warn
  (:class:`CoverageAccountingWarning`) or, with ``strict=True``, raise —
  silently aggregating over a sliver of the requested repetitions is how a
  broken regime masquerades as a well-covered one;
* ``n_degenerate`` — intervals whose estimate was
  :attr:`~repro.types.EstimateStatus.DEGENERATE`.  All helpers share one
  filtering predicate (:func:`usable_estimate`) and one knob
  (``include_degenerate``, default False), so coverage numbers are
  comparable across the binary, k-ary and dataset paths — the gauntlet
  (:mod:`repro.evaluation.gauntlet`) relies on this to compare estimators
  cell by cell.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.core.m_worker import MWorkerEstimator
from repro.core.kary import KaryEstimator
from repro.core.spammer_filter import filter_spammers
from repro.data.response_matrix import ResponseMatrix
from repro.simulation.binary import simulate_binary_responses
from repro.simulation.kary import simulate_kary_responses
from repro.types import EstimateStatus

__all__ = [
    "CoverageAccountingWarning",
    "CoverageResult",
    "DEFAULT_MIN_USABLE_FRACTION",
    "usable_estimate",
    "binary_coverage",
    "kary_coverage",
    "dataset_coverage",
    "kary_dataset_coverage",
]


class CoverageAccountingWarning(UserWarning):
    """Raised-as-warning when a coverage run silently lost repetitions.

    Emitted when the usable fraction of a repetition-driven measurement
    drops below the caller's threshold; pass ``strict=True`` to turn the
    warning into an :class:`~repro.exceptions.InsufficientDataError`.
    """


#: Below this usable fraction a coverage run warns (or fails with
#: ``strict=True``): aggregates over fewer than half the requested
#: repetitions are not the measurement the caller asked for.
DEFAULT_MIN_USABLE_FRACTION: float = 0.5


def usable_estimate(status: EstimateStatus, include_degenerate: bool = False) -> bool:
    """The shared degenerate-filtering predicate of every coverage helper.

    A DEGENERATE estimate spans the whole parameter range, so it trivially
    covers the truth; counting it would inflate accuracy while reporting a
    meaningless width.  All helpers exclude them by default and surface the
    count as ``n_degenerate``; ``include_degenerate=True`` opts into
    counting them (the paper's Fig 1 old-technique comparison needs this).
    """
    return include_degenerate or status is not EstimateStatus.DEGENERATE


@dataclass(frozen=True)
class CoverageResult:
    """Aggregate coverage statistics over many intervals.

    Attributes
    ----------
    n_intervals:
        Number of intervals produced and checked.
    n_covering:
        How many of them contained the true parameter.
    mean_size:
        Average interval width.
    mean_absolute_error:
        Average distance between interval centre and true parameter.
    n_degenerate:
        Estimates flagged DEGENERATE during the run (excluded from the
        aggregates unless the helper was asked to include them).
    n_skipped_repetitions:
        Repetitions (or dataset workers / triples) that produced no
        intervals at all — estimator raised, or truth was unavailable.
    n_repetitions:
        Repetitions (or workers / triples) attempted; 0 means the helper
        predates the accounting and did not report it.
    """

    n_intervals: int
    n_covering: int
    mean_size: float
    mean_absolute_error: float
    n_degenerate: int = 0
    n_skipped_repetitions: int = 0
    n_repetitions: int = 0

    @property
    def accuracy(self) -> float:
        """The paper's interval-accuracy: covering fraction."""
        if self.n_intervals == 0:
            return float("nan")
        return self.n_covering / self.n_intervals

    @property
    def usable_fraction(self) -> float:
        """Fraction of attempted repetitions that produced intervals."""
        if self.n_repetitions == 0:
            return float("nan")
        return (self.n_repetitions - self.n_skipped_repetitions) / self.n_repetitions

    @staticmethod
    def from_observations(
        covered: list[bool],
        sizes: list[float],
        errors: list[float],
        n_degenerate: int = 0,
        n_skipped_repetitions: int = 0,
        n_repetitions: int = 0,
    ) -> "CoverageResult":
        """Build the aggregate from raw per-interval observations."""
        if not covered:
            return CoverageResult(
                0,
                0,
                float("nan"),
                float("nan"),
                n_degenerate=n_degenerate,
                n_skipped_repetitions=n_skipped_repetitions,
                n_repetitions=n_repetitions,
            )
        return CoverageResult(
            n_intervals=len(covered),
            n_covering=sum(covered),
            mean_size=float(np.mean(sizes)),
            mean_absolute_error=float(np.mean(errors)),
            n_degenerate=n_degenerate,
            n_skipped_repetitions=n_skipped_repetitions,
            n_repetitions=n_repetitions,
        )


def _check_usable_fraction(
    helper: str,
    n_repetitions: int,
    n_skipped: int,
    min_usable_fraction: float,
    strict: bool,
) -> None:
    """Warn (or raise with ``strict``) when too many repetitions vanished."""
    if n_repetitions <= 0:
        return
    usable = (n_repetitions - n_skipped) / n_repetitions
    if usable >= min_usable_fraction:
        return
    message = (
        f"{helper}: only {n_repetitions - n_skipped} of {n_repetitions} "
        f"repetitions produced estimates (usable fraction {usable:.2f} < "
        f"{min_usable_fraction:.2f}); the aggregates describe far less data "
        "than requested"
    )
    if strict:
        raise InsufficientDataError(message)
    warnings.warn(message, CoverageAccountingWarning, stacklevel=3)


def binary_coverage(
    n_workers: int,
    n_tasks: int,
    confidence: float,
    rng: np.random.Generator,
    density: float | np.ndarray = 0.8,
    n_repetitions: int = 100,
    optimize_weights: bool = True,
    include_degenerate: bool = False,
) -> CoverageResult:
    """Coverage of the m-worker binary estimator on simulated data.

    Reproduces the measurement loop of Sections III-D1/D2/D3: fresh worker
    population and responses per repetition, intervals for every worker,
    checked against the known error rates.
    """
    if n_repetitions <= 0:
        raise ConfigurationError("n_repetitions must be positive")
    estimator = MWorkerEstimator(
        confidence=confidence, optimize_weights=optimize_weights
    )
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    n_degenerate = 0
    for _ in range(n_repetitions):
        matrix, true_rates = simulate_binary_responses(
            n_workers, n_tasks, rng, density=density
        )
        estimates = estimator.evaluate_all(matrix)
        for estimate in estimates:
            if estimate.status is EstimateStatus.DEGENERATE:
                n_degenerate += 1
            if not usable_estimate(estimate.status, include_degenerate):
                continue
            truth = float(true_rates[estimate.worker])
            covered.append(estimate.interval.contains(truth))
            sizes.append(estimate.interval.size)
            errors.append(abs(estimate.interval.mean - truth))
    return CoverageResult.from_observations(
        covered,
        sizes,
        errors,
        n_degenerate=n_degenerate,
        n_repetitions=n_repetitions,
    )


def kary_coverage(
    arity: int,
    n_tasks: int,
    confidence: float,
    rng: np.random.Generator,
    density: float = 1.0,
    n_repetitions: int = 50,
    n_workers: int = 3,
    epsilon: float = 0.01,
    include_degenerate: bool = False,
    min_usable_fraction: float = DEFAULT_MIN_USABLE_FRACTION,
    strict: bool = False,
) -> CoverageResult:
    """Coverage of the k-ary estimator on simulated data (Section IV-B).

    Repetitions whose triple cannot be evaluated (the estimator raises
    :class:`~repro.exceptions.InsufficientDataError`) are counted in
    ``n_skipped_repetitions`` instead of vanishing; when the usable
    fraction drops below ``min_usable_fraction`` the run warns
    (:class:`CoverageAccountingWarning`) or raises with ``strict=True``.
    """
    if n_repetitions <= 0:
        raise ConfigurationError("n_repetitions must be positive")
    estimator = KaryEstimator(confidence=confidence, epsilon=epsilon)
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    n_degenerate = 0
    n_skipped = 0
    for _ in range(n_repetitions):
        matrix, confusion = simulate_kary_responses(
            n_workers, n_tasks, arity, rng, density=density
        )
        try:
            estimates = estimator.evaluate(matrix, workers=(0, 1, 2))
        except InsufficientDataError:
            n_skipped += 1
            continue
        for position, estimate in enumerate(estimates):
            if estimate.status is EstimateStatus.DEGENERATE:
                n_degenerate += 1
            if not usable_estimate(estimate.status, include_degenerate):
                continue
            truth_matrix = confusion[position]
            for a in range(arity):
                for b in range(arity):
                    interval = estimate.interval(a, b)
                    truth = float(truth_matrix[a, b])
                    covered.append(interval.contains(truth))
                    sizes.append(interval.size)
                    errors.append(abs(interval.mean - truth))
    _check_usable_fraction(
        "kary_coverage", n_repetitions, n_skipped, min_usable_fraction, strict
    )
    return CoverageResult.from_observations(
        covered,
        sizes,
        errors,
        n_degenerate=n_degenerate,
        n_skipped_repetitions=n_skipped,
        n_repetitions=n_repetitions,
    )


def dataset_coverage(
    matrix: ResponseMatrix,
    confidence: float,
    remove_spammers: bool = False,
    spammer_threshold: float = 0.4,
    min_gold_tasks: int = 5,
    optimize_weights: bool = True,
    include_degenerate: bool = False,
) -> CoverageResult:
    """Coverage of the binary estimator on one (real or stand-in) dataset.

    As in Section III-E, the "true" error rate of each worker is the fraction
    of gold-labelled tasks they answered incorrectly; workers with fewer than
    ``min_gold_tasks`` gold-labelled answers are counted in
    ``n_skipped_repetitions`` (their proxy truth is itself too noisy to
    judge coverage against) with ``n_repetitions`` set to the number of
    estimated workers.
    """
    if not matrix.has_gold:
        raise InsufficientDataError("dataset_coverage requires gold labels")
    working = matrix
    id_map = list(range(matrix.n_workers))
    if remove_spammers:
        filtered = filter_spammers(matrix, threshold=spammer_threshold)
        working = filtered.filtered
        id_map = list(filtered.kept_workers)
    estimator = MWorkerEstimator(
        confidence=confidence, optimize_weights=optimize_weights
    )
    estimates = estimator.evaluate_all(working)
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    n_degenerate = 0
    n_skipped = 0
    for estimate in estimates:
        if estimate.status is EstimateStatus.DEGENERATE:
            n_degenerate += 1
        if not usable_estimate(estimate.status, include_degenerate):
            continue
        original_id = id_map[estimate.worker]
        try:
            truth = matrix.empirical_error_rate(original_id)
        except InsufficientDataError:
            n_skipped += 1
            continue
        gold_answered = sum(
            1
            for task in matrix.worker_responses(original_id)
            if matrix.gold_label(task) is not None
        )
        if gold_answered < min_gold_tasks:
            n_skipped += 1
            continue
        covered.append(estimate.interval.contains(truth))
        sizes.append(estimate.interval.size)
        errors.append(abs(estimate.interval.mean - truth))
    return CoverageResult.from_observations(
        covered,
        sizes,
        errors,
        n_degenerate=n_degenerate,
        n_skipped_repetitions=n_skipped,
        n_repetitions=len(estimates),
    )


def kary_dataset_coverage(
    matrix: ResponseMatrix,
    confidence: float,
    min_common_tasks: int,
    n_triples: int,
    rng: np.random.Generator,
    epsilon: float = 0.01,
    include_degenerate: bool = False,
    min_usable_fraction: float = DEFAULT_MIN_USABLE_FRACTION,
    strict: bool = False,
) -> CoverageResult:
    """Coverage of the k-ary estimator on one dataset (Section IV-C).

    Random triples of workers sharing at least ``min_common_tasks`` tasks are
    drawn (as the paper does); the "true" response probabilities are the
    empirical confusion matrices against gold labels.  Triples the estimator
    cannot evaluate are counted in ``n_skipped_repetitions`` (with
    ``n_repetitions`` the number of eligible triples drawn) under the same
    warn/strict threshold as :func:`kary_coverage`.
    """
    if not matrix.has_gold:
        raise InsufficientDataError("kary_dataset_coverage requires gold labels")
    arity = matrix.arity
    estimator = KaryEstimator(confidence=confidence, epsilon=epsilon)
    covered: list[bool] = []
    sizes: list[float] = []
    errors: list[float] = []
    n_degenerate = 0
    n_skipped = 0

    eligible_triples = _sample_triples(matrix, min_common_tasks, n_triples, rng)
    if not eligible_triples:
        raise InsufficientDataError(
            f"no triple of workers shares at least {min_common_tasks} tasks"
        )
    for triple in eligible_triples:
        try:
            estimates = estimator.evaluate(matrix, workers=triple)
        except InsufficientDataError:
            n_skipped += 1
            continue
        for worker, estimate in zip(triple, estimates):
            if estimate.status is EstimateStatus.DEGENERATE:
                n_degenerate += 1
            if not usable_estimate(estimate.status, include_degenerate):
                continue
            truth_matrix = matrix.empirical_confusion_matrix(worker)
            for a in range(arity):
                for b in range(arity):
                    interval = estimate.interval(a, b)
                    truth = float(truth_matrix[a, b])
                    covered.append(interval.contains(truth))
                    sizes.append(interval.size)
                    errors.append(abs(interval.mean - truth))
    _check_usable_fraction(
        "kary_dataset_coverage",
        len(eligible_triples),
        n_skipped,
        min_usable_fraction,
        strict,
    )
    return CoverageResult.from_observations(
        covered,
        sizes,
        errors,
        n_degenerate=n_degenerate,
        n_skipped_repetitions=n_skipped,
        n_repetitions=len(eligible_triples),
    )


def _sample_triples(
    matrix: ResponseMatrix,
    min_common_tasks: int,
    n_triples: int,
    rng: np.random.Generator,
    max_attempts: int = 5000,
) -> list[tuple[int, int, int]]:
    """Draw up to ``n_triples`` random worker triples with enough overlap."""
    triples: list[tuple[int, int, int]] = []
    seen: set[tuple[int, int, int]] = set()
    attempts = 0
    workers = np.arange(matrix.n_workers)
    while len(triples) < n_triples and attempts < max_attempts:
        attempts += 1
        chosen = tuple(sorted(int(w) for w in rng.choice(workers, size=3, replace=False)))
        if chosen in seen:
            continue
        seen.add(chosen)
        if matrix.n_common_tasks(*chosen) >= min_common_tasks:
            triples.append(chosen)
    return triples
