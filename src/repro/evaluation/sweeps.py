"""Lightweight series/sweep containers used by the figure-reproduction code.

A figure in the paper is a set of named series (one per legend entry), each a
list of (x, y) points.  :class:`SweepResult` holds that structure plus axis
labels, so the reporting module can render any figure the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["Series", "SweepResult", "run_sweep"]


@dataclass
class Series:
    """One named line of a figure: a label plus (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        """Append one point to the series."""
        self.points.append((float(x), float(y)))

    @property
    def xs(self) -> list[float]:
        """The x coordinates, in insertion order."""
        return [point[0] for point in self.points]

    @property
    def ys(self) -> list[float]:
        """The y coordinates, in insertion order."""
        return [point[1] for point in self.points]

    def y_at(self, x: float, tolerance: float = 1e-9) -> float:
        """The y value recorded at a given x (exact match within tolerance)."""
        for point_x, point_y in self.points:
            if abs(point_x - x) <= tolerance:
                return point_y
        raise ConfigurationError(f"series '{self.label}' has no point at x={x}")


@dataclass
class SweepResult:
    """A named collection of series sharing the same axes."""

    name: str
    x_label: str
    y_label: str
    series: dict[str, Series] = field(default_factory=dict)

    def series_named(self, label: str) -> Series:
        """Fetch (or lazily create) the series with the given label."""
        if label not in self.series:
            self.series[label] = Series(label=label)
        return self.series[label]

    def add_point(self, label: str, x: float, y: float) -> None:
        """Append one point to the series with the given label."""
        self.series_named(label).add(x, y)

    @property
    def labels(self) -> list[str]:
        """Series labels in insertion order."""
        return list(self.series)


def run_sweep(
    name: str,
    x_label: str,
    y_label: str,
    x_values: Sequence[float],
    series_labels: Iterable[str],
    evaluate: Callable[[str, float], float],
) -> SweepResult:
    """Evaluate ``evaluate(label, x)`` on a grid and collect the results.

    A convenience wrapper for the common "for each series, for each x, compute
    one number" experiment structure.
    """
    result = SweepResult(name=name, x_label=x_label, y_label=y_label)
    for label in series_labels:
        for x in x_values:
            result.add_point(label, float(x), float(evaluate(label, float(x))))
    return result
