"""Scenario gauntlet: a lazily-computed experiment report over the
``scenario family x backend x estimator path`` grid.

:class:`GauntletResults` follows the fuzzbench ``ExperimentResults``
pattern: the object is cheap to construct and every metric is computed
lazily and memoized on first read, so a report template (the CLI table, the
JSON report, the benchmark gate) only pays for the cells it actually
renders.  A cell is one coverage/calibration measurement: a scenario family
from :data:`~repro.simulation.gauntlet.GAUNTLET_FAMILIES`, scored through
one agreement backend and one estimator path licensed by the capability
matrix in :mod:`repro.core.agreement`.

The gap-detection pass (:func:`detect_gaps`) recomputes the full expected
grid from the registry x capability matrix and flags any cell a report
failed to plan, so the gauntlet stays exhaustive as backends and scenario
families multiply: registering either is what *creates* the obligation to
test it.

All cells run through the shared accounting of
:mod:`repro.evaluation.coverage` — one degenerate predicate
(:func:`~repro.evaluation.coverage.usable_estimate`), with degenerate and
skipped-repetition counts surfaced per cell — so numbers are comparable
across estimators; that comparability is what makes "collusion degrades
coverage vs the independent baseline" a measurement instead of an anecdote.
"""

from __future__ import annotations

import functools
import zlib
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.agreement import (
    BACKEND_CAPABILITIES,
    supported_estimator_paths,
)
from repro.core.kary import KaryEstimator
from repro.core.m_worker import MWorkerEstimator
from repro.evaluation.coverage import CoverageResult, usable_estimate
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.gauntlet import GAUNTLET_FAMILIES, GauntletFamily
from repro.simulation.scenarios import SimulationScenario
from repro.types import EstimateStatus

__all__ = [
    "CellKey",
    "GauntletCell",
    "GauntletResults",
    "detect_gaps",
    "expected_cells",
    "format_gauntlet_report",
]

#: One grid coordinate: (scenario family, backend, estimator path).
CellKey = tuple[str, str, str]


@dataclass(frozen=True)
class GauntletCell:
    """The rendered content of one gauntlet grid cell."""

    family: str
    backend: str
    path: str
    confidence: float
    coverage: CoverageResult

    @property
    def calibration_error(self) -> float:
        """Signed miscalibration: measured coverage minus the nominal level.

        Near zero for a well-calibrated cell; strongly negative when an
        assumption violation makes the intervals overconfident (the
        collusion cells are the canonical example).
        """
        return self.coverage.accuracy - self.confidence

    @property
    def key(self) -> CellKey:
        return (self.family, self.backend, self.path)


def expected_cells(
    families: Mapping[str, GauntletFamily] | Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
) -> tuple[CellKey, ...]:
    """The full grid the registry x capability matrix demands, in order.

    For every registered scenario family and every backend, one cell per
    estimator path :func:`~repro.core.agreement.supported_estimator_paths`
    licenses for the family's kind.  This is the enumeration gap detection
    compares a report against.
    """
    resolved = _resolve_families(families)
    backend_names = _resolve_backends(backends)
    cells: list[CellKey] = []
    for name, family in resolved.items():
        for backend in backend_names:
            for path in supported_estimator_paths(backend, kind=family.kind):
                cells.append((name, backend, path))
    return tuple(cells)


def _resolve_families(
    families: Mapping[str, GauntletFamily] | Sequence[str] | None,
) -> dict[str, GauntletFamily]:
    if families is None:
        return dict(GAUNTLET_FAMILIES)
    if isinstance(families, Mapping):
        return dict(families)
    resolved: dict[str, GauntletFamily] = {}
    for name in families:
        if name not in GAUNTLET_FAMILIES:
            raise ConfigurationError(
                f"unknown gauntlet family {name!r}; registered: "
                f"{sorted(GAUNTLET_FAMILIES)}"
            )
        resolved[name] = GAUNTLET_FAMILIES[name]
    return resolved


def _resolve_backends(backends: Sequence[str] | None) -> tuple[str, ...]:
    if backends is None:
        return tuple(BACKEND_CAPABILITIES)
    for backend in backends:
        if backend not in BACKEND_CAPABILITIES:
            raise ConfigurationError(
                f"unknown backend {backend!r}; capability matrix covers "
                f"{sorted(BACKEND_CAPABILITIES)}"
            )
    return tuple(backends)


class GauntletResults:
    """Lazily-computed gauntlet report (fuzzbench ``ExperimentResults`` style).

    Construction is O(grid size) bookkeeping only — no simulation runs
    until a cell (or a summary property that needs it) is rendered, and
    every computed cell is memoized.  ``n_computed_cells`` exposes how much
    of the grid has actually been paid for, which the lazy-contract test
    pins.

    Parameters
    ----------
    families:
        Family names to include (default: the full registry), or a mapping
        of name -> :class:`~repro.simulation.gauntlet.GauntletFamily` for
        ad-hoc grids.
    backends:
        Backends to include (default: every row of the capability matrix).
    n_repetitions, confidence:
        Repetitions per cell and the nominal interval level.
    seed:
        Master seed; each cell derives an independent, order-insensitive
        stream from it, so rendering cells in any order (or only some of
        them) never changes any cell's numbers.
    scenario_overrides:
        Optional per-family factory keyword overrides (e.g. smaller
        ``n_tasks`` for the CI smoke leg).
    """

    def __init__(
        self,
        families: Mapping[str, GauntletFamily] | Sequence[str] | None = None,
        backends: Sequence[str] | None = None,
        *,
        n_repetitions: int = 10,
        confidence: float = 0.9,
        seed: int = 20150413,
        scenario_overrides: Mapping[str, Mapping] | None = None,
    ) -> None:
        if n_repetitions <= 0:
            raise ConfigurationError("n_repetitions must be positive")
        if not (0.0 < confidence < 1.0):
            raise ConfigurationError(
                f"confidence must lie strictly between 0 and 1, got {confidence}"
            )
        self._families = _resolve_families(families)
        self._backends = _resolve_backends(backends)
        self.n_repetitions = int(n_repetitions)
        self.confidence = float(confidence)
        self.seed = int(seed)
        overrides = dict(scenario_overrides or {})
        self._scenarios: dict[str, SimulationScenario] = {
            name: family.build(**overrides.get(name, {}))
            for name, family in self._families.items()
        }
        self._cells: dict[CellKey, GauntletCell] = {}

    # ------------------------------------------------------------------ #
    # Grid bookkeeping (never triggers computation)
    # ------------------------------------------------------------------ #

    @property
    def cell_keys(self) -> tuple[CellKey, ...]:
        """The planned grid, in rendering order."""
        return expected_cells(self._families, self._backends)

    @property
    def n_computed_cells(self) -> int:
        """How many cells have actually been rendered (lazy contract)."""
        return len(self._cells)

    def scenario(self, family: str) -> SimulationScenario:
        """The scenario instance measured for ``family``."""
        return self._scenarios[family]

    # ------------------------------------------------------------------ #
    # Cells (lazy, memoized)
    # ------------------------------------------------------------------ #

    def cell(self, family: str, backend: str, path: str) -> GauntletCell:
        """Render one grid cell, computing it on first access only."""
        key: CellKey = (family, backend, path)
        if key in self._cells:
            return self._cells[key]
        if family not in self._families:
            raise ConfigurationError(
                f"family {family!r} is not part of this gauntlet run"
            )
        if backend not in self._backends:
            raise ConfigurationError(
                f"backend {backend!r} is not part of this gauntlet run"
            )
        kind = self._families[family].kind
        if path not in supported_estimator_paths(backend, kind=kind):
            raise ConfigurationError(
                f"estimator path {path!r} is not licensed for backend "
                f"{backend!r} ({kind}); see the capability matrix in "
                "repro.core.agreement"
            )
        rendered = self._compute_cell(key)
        self._cells[key] = rendered
        return rendered

    def rows(self) -> list[GauntletCell]:
        """Render the full grid (the eager path reports build on)."""
        return [self.cell(*key) for key in self.cell_keys]

    def _cell_rng(self, key: CellKey) -> np.random.Generator:
        # Independent per-cell stream derived from (seed, cell digest):
        # rendering order, partial rendering and grid composition cannot
        # leak randomness between cells.
        digest = zlib.crc32("|".join(key).encode("utf-8"))
        return np.random.default_rng([self.seed, digest])

    def _compute_cell(self, key: CellKey) -> GauntletCell:
        family, backend, path = key
        scenario = self._scenarios[family]
        rng = self._cell_rng(key)
        if self._families[family].kind == "kary":
            coverage = self._kary_coverage(scenario, backend, rng)
        else:
            coverage = self._binary_coverage(scenario, backend, path, rng)
        return GauntletCell(
            family=family,
            backend=backend,
            path=path,
            confidence=self.confidence,
            coverage=coverage,
        )

    def _binary_coverage(
        self,
        scenario: SimulationScenario,
        backend: str,
        path: str,
        rng: np.random.Generator,
    ) -> CoverageResult:
        covered: list[bool] = []
        sizes: list[float] = []
        errors: list[float] = []
        n_degenerate = 0
        n_skipped = 0
        estimator = MWorkerEstimator(
            confidence=self.confidence,
            backend=backend,
            batch_triples=path == "batched",
            batch_lemma4=path == "batched",
        )
        for _ in range(self.n_repetitions):
            if path == "streamed":
                from repro.serve.session import replay_stream

                events, _, truth = scenario.event_stream(rng)
                try:
                    estimates = list(
                        replay_stream(
                            events, confidence=self.confidence, backend=backend
                        ).values()
                    )
                except InsufficientDataError:
                    n_skipped += 1
                    continue
            else:
                matrix, truth = scenario.sample(rng)
                try:
                    estimates = estimator.evaluate_all(matrix)
                except InsufficientDataError:
                    n_skipped += 1
                    continue
            for estimate in estimates:
                if estimate.status is EstimateStatus.DEGENERATE:
                    n_degenerate += 1
                if not usable_estimate(estimate.status):
                    continue
                truth_value = float(truth[estimate.worker])
                covered.append(estimate.interval.contains(truth_value))
                sizes.append(estimate.interval.size)
                errors.append(abs(estimate.interval.mean - truth_value))
        return CoverageResult.from_observations(
            covered,
            sizes,
            errors,
            n_degenerate=n_degenerate,
            n_skipped_repetitions=n_skipped,
            n_repetitions=self.n_repetitions,
        )

    def _kary_coverage(
        self,
        scenario: SimulationScenario,
        backend: str,
        rng: np.random.Generator,
    ) -> CoverageResult:
        covered: list[bool] = []
        sizes: list[float] = []
        errors: list[float] = []
        n_degenerate = 0
        n_skipped = 0
        arity = scenario.arity
        estimator = KaryEstimator(confidence=self.confidence, backend=backend)
        for _ in range(self.n_repetitions):
            matrix, confusion = scenario.sample(rng)
            try:
                estimates = estimator.evaluate(matrix, workers=(0, 1, 2))
            except InsufficientDataError:
                n_skipped += 1
                continue
            for position, estimate in enumerate(estimates):
                if estimate.status is EstimateStatus.DEGENERATE:
                    n_degenerate += 1
                if not usable_estimate(estimate.status):
                    continue
                truth_matrix = confusion[position]
                for a in range(arity):
                    for b in range(arity):
                        interval = estimate.interval(a, b)
                        truth = float(truth_matrix[a, b])
                        covered.append(interval.contains(truth))
                        sizes.append(interval.size)
                        errors.append(abs(interval.mean - truth))
        return CoverageResult.from_observations(
            covered,
            sizes,
            errors,
            n_degenerate=n_degenerate,
            n_skipped_repetitions=n_skipped,
            n_repetitions=self.n_repetitions,
        )

    # ------------------------------------------------------------------ #
    # Summary metrics (lazy; these DO render the cells they need)
    # ------------------------------------------------------------------ #

    @functools.cached_property
    def gaps(self) -> tuple[CellKey, ...]:
        """Cells the full registry demands but this run does not plan."""
        return detect_gaps(self)

    @functools.cached_property
    def worst_calibration(self) -> GauntletCell:
        """The cell with the largest absolute miscalibration (renders all)."""
        rendered = [cell for cell in self.rows() if cell.coverage.n_intervals > 0]
        if not rendered:
            raise InsufficientDataError("no gauntlet cell produced intervals")
        return max(rendered, key=lambda cell: abs(cell.calibration_error))

    @functools.cached_property
    def family_coverage(self) -> dict[str, float]:
        """Mean measured coverage per family over its rendered grid row."""
        totals: dict[str, list[float]] = {name: [] for name in self._families}
        for cell in self.rows():
            if cell.coverage.n_intervals > 0:
                totals[cell.family].append(cell.coverage.accuracy)
        return {
            name: float(np.mean(values)) if values else float("nan")
            for name, values in totals.items()
        }

    def to_report(self) -> dict:
        """The JSON-ready report the CLI and benchmark emit (renders all)."""
        return {
            "confidence": self.confidence,
            "n_repetitions": self.n_repetitions,
            "seed": self.seed,
            "families": sorted(self._families),
            "backends": list(self._backends),
            "cells": [
                {
                    "family": cell.family,
                    "backend": cell.backend,
                    "path": cell.path,
                    "scenario": self._scenarios[cell.family].name,
                    "n_intervals": cell.coverage.n_intervals,
                    "coverage": cell.coverage.accuracy,
                    "calibration_error": cell.calibration_error,
                    "mean_size": cell.coverage.mean_size,
                    "mean_absolute_error": cell.coverage.mean_absolute_error,
                    "n_degenerate": cell.coverage.n_degenerate,
                    "n_skipped_repetitions": cell.coverage.n_skipped_repetitions,
                    "n_repetitions": cell.coverage.n_repetitions,
                }
                for cell in self.rows()
            ],
            "gaps": ["/".join(key) for key in self.gaps],
        }


def detect_gaps(
    results: GauntletResults,
    families: Mapping[str, GauntletFamily] | Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
) -> tuple[CellKey, ...]:
    """Cells the registry x capability matrix demands but ``results`` lacks.

    By default the expectation is the **full** registry over the **full**
    capability matrix — a gauntlet run restricted to a subset of families
    or backends is exactly what this pass exists to flag.  Pass
    ``families``/``backends`` to narrow the expectation deliberately (e.g.
    a smoke leg that skips nothing it claims to cover).
    """
    planned = set(results.cell_keys)
    return tuple(
        key for key in expected_cells(families, backends) if key not in planned
    )


def _format_ratio(value: float) -> str:
    return "-" if np.isnan(value) else f"{value:.3f}"


def format_gauntlet_report(results: GauntletResults) -> str:
    """Render the grid as the CLI's aligned text table (renders all cells)."""
    from repro.evaluation.reporting import format_table

    header = [
        "family",
        "backend",
        "path",
        "intervals",
        "coverage",
        "target",
        "calib",
        "width",
        "degen",
        "skipped",
    ]
    rows = []
    for cell in results.rows():
        coverage = cell.coverage
        rows.append(
            [
                cell.family,
                cell.backend,
                cell.path,
                str(coverage.n_intervals),
                _format_ratio(coverage.accuracy),
                f"{cell.confidence:.2f}",
                "-"
                if np.isnan(coverage.accuracy)
                else f"{cell.calibration_error:+.3f}",
                _format_ratio(coverage.mean_size),
                str(coverage.n_degenerate),
                f"{coverage.n_skipped_repetitions}/{coverage.n_repetitions}",
            ]
        )
    lines = [format_table(header, rows)]
    if results.gaps:
        lines.append("")
        lines.append(f"UNTESTED CELLS ({len(results.gaps)}):")
        lines.extend(f"  {'/'.join(key)}" for key in results.gaps)
    else:
        lines.append("")
        lines.append(
            "gap detection: zero untested (scenario x backend x path) cells"
        )
    return "\n".join(lines)
