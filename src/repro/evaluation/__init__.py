"""Experiment harness: coverage measurement, sweeps, and figure reproduction.

The paper's evaluation reports two metrics:

* **interval-accuracy** — the fraction of computed c-confidence intervals
  that contain the true parameter (ideal value: the confidence level c);
* **interval size** — the average width of the intervals (smaller is better
  as long as accuracy holds).

:mod:`repro.evaluation.experiments` packages one function per paper figure;
:mod:`repro.evaluation.reporting` renders the results as plain-text tables.
"""

from repro.evaluation.coverage import (
    CoverageAccountingWarning,
    CoverageResult,
    DEFAULT_MIN_USABLE_FRACTION,
    usable_estimate,
    binary_coverage,
    kary_coverage,
    dataset_coverage,
    kary_dataset_coverage,
)
from repro.evaluation.gauntlet import (
    GauntletCell,
    GauntletResults,
    detect_gaps,
    expected_cells,
    format_gauntlet_report,
)
from repro.evaluation.sweeps import Series, SweepResult
from repro.evaluation.experiments import (
    ExperimentResult,
    figure1_old_vs_new,
    figure2a_accuracy,
    figure2b_density,
    figure2c_weight_optimization,
    figure3_real_data_accuracy,
    figure4_spammer_filtered_accuracy,
    figure5a_kary_accuracy,
    figure5b_kary_density,
    figure5c_kary_real_data,
    PAPER_CONFIDENCE_GRID,
)
from repro.evaluation.reporting import format_table, format_experiment, series_to_rows

__all__ = [
    "CoverageAccountingWarning",
    "CoverageResult",
    "DEFAULT_MIN_USABLE_FRACTION",
    "usable_estimate",
    "GauntletCell",
    "GauntletResults",
    "detect_gaps",
    "expected_cells",
    "format_gauntlet_report",
    "binary_coverage",
    "kary_coverage",
    "dataset_coverage",
    "kary_dataset_coverage",
    "Series",
    "SweepResult",
    "ExperimentResult",
    "figure1_old_vs_new",
    "figure2a_accuracy",
    "figure2b_density",
    "figure2c_weight_optimization",
    "figure3_real_data_accuracy",
    "figure4_spammer_filtered_accuracy",
    "figure5a_kary_accuracy",
    "figure5b_kary_density",
    "figure5c_kary_real_data",
    "PAPER_CONFIDENCE_GRID",
    "format_table",
    "format_experiment",
    "series_to_rows",
]
