"""Plain-text rendering of experiment results.

The benches print the same rows/series the paper's figures plot; these
helpers format a :class:`~repro.evaluation.sweeps.SweepResult` (or an
:class:`~repro.evaluation.experiments.ExperimentResult`) as an aligned text
table with one column per series.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.experiments import ExperimentResult
from repro.evaluation.sweeps import SweepResult

__all__ = ["series_to_rows", "format_table", "format_experiment"]


def series_to_rows(sweep: SweepResult) -> tuple[list[str], list[list[str]]]:
    """Convert a sweep into (header, rows) with one column per series.

    The x grid is the union of all series' x values, sorted; missing points
    render as ``-``.
    """
    labels = sweep.labels
    x_values = sorted({x for series in sweep.series.values() for x in series.xs})
    header = [sweep.x_label] + labels
    rows: list[list[str]] = []
    for x in x_values:
        row = [f"{x:g}"]
        for label in labels:
            series = sweep.series[label]
            try:
                row.append(f"{series.y_at(x):.4f}")
            except Exception:
                row.append("-")
        rows.append(row)
    return header, rows


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Align a header and rows into a fixed-width text table."""
    columns = len(header)
    widths = [len(str(header[i])) for i in range(columns)]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [format_row(header), format_row(["-" * w for w in widths])]
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)


def format_experiment(result: ExperimentResult) -> str:
    """Render a full experiment (title, parameters, table, notes)."""
    header, rows = series_to_rows(result.sweep)
    lines = [f"{result.figure}: {result.title}"]
    if result.parameters:
        parameter_text = ", ".join(f"{k}={v}" for k, v in result.parameters.items())
        lines.append(f"parameters: {parameter_text}")
    lines.append("")
    lines.append(format_table(header, rows))
    if result.notes:
        lines.append("")
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)
