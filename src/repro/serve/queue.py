"""Bounded asyncio response queue with micro-batch coalescing.

:class:`ResponseQueue` is the front door of the streaming ingestion
subsystem (:mod:`repro.serve`): producers ``await put(event)`` — the bound
gives natural backpressure, a producer outrunning the applier parks on the
queue instead of growing memory — and the single consumer drains with
:meth:`get_batch`, which waits for the *first* event and then greedily
coalesces everything already enqueued (up to ``max_batch``) into one
micro-batch without waiting again.  Coalescing is what turns a trickle of
singleton responses into the batched
:meth:`~repro.core.incremental.IncrementalEvaluator.apply_batch` deltas that
pay one invalidation pass per batch instead of one per event.

FIFO order is preserved end to end: events leave in exactly the order they
were accepted, and batches are consumed by a single applier task, so the
stream's application order is the submission order.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["QueueClosed", "ResponseQueue"]

#: Internal close marker (producers can never enqueue it: ``put`` rejects
#: events after ``close`` and the sentinel is only enqueued by ``close``).
_CLOSE = object()


class QueueClosed(ConfigurationError):
    """Raised when an event is submitted to a closed :class:`ResponseQueue`."""


class ResponseQueue:
    """Bounded, order-preserving asyncio queue of response events.

    Parameters
    ----------
    maxsize:
        Bound on the number of queued events.  ``put`` blocks (asyncio
        backpressure) while the queue is full.
    max_batch:
        Largest micro-batch :meth:`get_batch` will coalesce.  Larger batches
        amortize more invalidation work; smaller ones tighten the staleness
        window between a submission and its visibility to readers.
    """

    def __init__(self, maxsize: int = 4096, max_batch: int = 256) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"maxsize must be at least 1, got {maxsize}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be at least 1, got {max_batch}")
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize)
        self._max_batch = max_batch
        self._closed = False
        self._drained = False

    @property
    def maxsize(self) -> int:
        return self._queue.maxsize

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (no further ``put`` accepted)."""
        return self._closed

    def qsize(self) -> int:
        """Number of events currently queued (excluding the close marker)."""
        size = self._queue.qsize()
        return size - 1 if self._closed and not self._drained and size else size

    async def put(self, event: Any) -> None:
        """Enqueue one event; blocks while the queue is full (backpressure)."""
        if self._closed:
            raise QueueClosed("the response queue is closed")
        await self._queue.put(event)

    def put_nowait(self, event: Any) -> None:
        """Enqueue without waiting; raises ``asyncio.QueueFull`` when full."""
        if self._closed:
            raise QueueClosed("the response queue is closed")
        self._queue.put_nowait(event)

    async def close(self) -> None:
        """Refuse further events and wake the consumer once drained.

        Idempotent.  Events already accepted are still delivered; the
        consumer sees ``None`` from :meth:`get_batch` after the last batch.
        """
        if self._closed:
            return
        self._closed = True
        # The close marker rides the same queue so it cannot overtake data.
        await self._queue.put(_CLOSE)

    async def get_batch(self) -> list[Any] | None:
        """Wait for the next micro-batch (or None once closed and drained).

        Blocks until at least one event is available, then coalesces every
        event already enqueued — up to ``max_batch`` — without waiting
        again.  Returns ``None`` exactly once, after the final event has
        been delivered.
        """
        if self._drained:
            return None
        first = await self._queue.get()
        if first is _CLOSE:
            self._drained = True
            return None
        batch = [first]
        while len(batch) < self._max_batch:
            try:
                event = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if event is _CLOSE:
                self._drained = True
                break
            batch.append(event)
        return batch
