"""Bounded asyncio response queue with micro-batch coalescing.

:class:`ResponseQueue` is the front door of the streaming ingestion
subsystem (:mod:`repro.serve`): producers ``await put(event)`` — the bound
gives natural backpressure, a producer outrunning the applier parks on the
queue instead of growing memory — and the single consumer drains with
:meth:`get_batch`, which waits for the *first* event and then greedily
coalesces everything already enqueued (up to ``max_batch``) into one
micro-batch without waiting again.  Coalescing is what turns a trickle of
singleton responses into the batched
:meth:`~repro.core.incremental.IncrementalEvaluator.apply_batch` deltas that
pay one invalidation pass per batch instead of one per event.

FIFO order is preserved end to end: events leave in exactly the order they
were accepted, and batches are consumed by a single applier task, so the
stream's application order is the submission order.  Multi-writer sessions
(:mod:`repro.serve.multiwriter`) instantiate one queue *per partition*
(the ``maxsize`` / ``max_batch`` knobs of
:class:`~repro.serve.config.SessionConfig` apply per queue): each
partition keeps this single-consumer FIFO discipline, which is how
per-worker order survives partitioned ingestion.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["QueueClosed", "ResponseQueue"]

#: Internal close marker (producers can never enqueue it: ``put`` rejects
#: events after ``close`` and the sentinel is only enqueued by ``close``).
_CLOSE = object()


class QueueClosed(ConfigurationError):
    """Raised when an event is submitted to a closed :class:`ResponseQueue`."""


class ResponseQueue:
    """Bounded, order-preserving asyncio queue of response events.

    Parameters
    ----------
    maxsize:
        Bound on the number of queued events.  ``put`` blocks (asyncio
        backpressure) while the queue is full.
    max_batch:
        Largest micro-batch :meth:`get_batch` will coalesce.  Larger batches
        amortize more invalidation work; smaller ones tighten the staleness
        window between a submission and its visibility to readers.
    base_seq:
        Starting point of the 1-based event sequence numbering (events are
        numbered ``base_seq + 1, base_seq + 2, ...`` in delivery order).
        Zero for a fresh stream; a resumed durable session passes the last
        applied sequence so the reopened write-ahead log continues the
        monotonic numbering of the persisted history.
    """

    def __init__(
        self, maxsize: int = 4096, max_batch: int = 256, base_seq: int = 0
    ) -> None:
        if maxsize < 1:
            raise ConfigurationError(f"maxsize must be at least 1, got {maxsize}")
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be at least 1, got {max_batch}")
        if base_seq < 0:
            raise ConfigurationError(f"base_seq must be non-negative, got {base_seq}")
        self._queue: asyncio.Queue[Any] = asyncio.Queue(maxsize)
        self._max_batch = max_batch
        self._closed = False
        self._drained = False
        self._accepted_seq = base_seq
        self._delivered_seq = base_seq

    @property
    def maxsize(self) -> int:
        return self._queue.maxsize

    @property
    def max_batch(self) -> int:
        return self._max_batch

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called (no further ``put`` accepted)."""
        return self._closed

    def qsize(self) -> int:
        """Number of events currently queued (excluding the close marker)."""
        size = self._queue.qsize()
        return size - 1 if self._closed and not self._drained and size else size

    @property
    def accepted_seq(self) -> int:
        """Highest sequence number assigned to an accepted event so far.

        A running count from ``base_seq`` — sequence numbers themselves are
        assigned positionally at *delivery* (single consumer, so delivery
        order is queue order; concurrent producers resuming from parked
        puts could otherwise count out of order).
        """
        return self._accepted_seq

    @property
    def delivered_seq(self) -> int:
        """Sequence number of the last event handed out in a micro-batch."""
        return self._delivered_seq

    async def put(self, event: Any) -> None:
        """Enqueue one event; blocks while the queue is full (backpressure)."""
        if self._closed:
            raise QueueClosed("the response queue is closed")
        await self._queue.put(event)
        self._accepted_seq += 1

    def put_nowait(self, event: Any) -> None:
        """Enqueue without waiting; raises ``asyncio.QueueFull`` when full."""
        if self._closed:
            raise QueueClosed("the response queue is closed")
        self._queue.put_nowait(event)
        self._accepted_seq += 1

    async def close(self) -> None:
        """Refuse further events and wake the consumer once drained.

        Idempotent.  Events already accepted are still delivered; the
        consumer sees ``None`` from :meth:`get_batch` after the last batch.
        """
        if self._closed:
            return
        self._closed = True
        # The close marker rides the same queue so it cannot overtake data.
        await self._queue.put(_CLOSE)

    async def get_batch(self) -> list[Any] | None:
        """Wait for the next micro-batch (or None once closed and drained).

        Blocks until at least one event is available, then coalesces every
        event already enqueued — up to ``max_batch`` — without waiting
        again.  Returns ``None`` exactly once, after the final event has
        been delivered.
        """
        result = await self.get_batch_with_seq()
        return None if result is None else result[2]

    async def get_batch_with_seq(
        self,
    ) -> tuple[int, int, list[Any]] | None:
        """Like :meth:`get_batch`, plus the batch's inclusive sequence range.

        Returns ``(first_seq, last_seq, batch)`` where the events carry
        sequence numbers ``first_seq .. last_seq`` in delivery (= FIFO
        submission) order, continuing monotonically from ``base_seq``
        across batches with no gaps.  This range is what a durable
        session's write-ahead log records ahead of the apply, and what
        replay matches against the restored state on resume.
        """
        if self._drained:
            return None
        first = await self._queue.get()
        if first is _CLOSE:
            self._drained = True
            return None
        batch = [first]
        while len(batch) < self._max_batch:
            try:
                event = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if event is _CLOSE:
                self._drained = True
                break
            batch.append(event)
        first_seq = self._delivered_seq + 1
        self._delivered_seq += len(batch)
        return first_seq, self._delivered_seq, batch
