"""Event sources for the streaming ingestion subsystem.

Adapters that turn external response feeds into the ``(worker, task,
label)`` tuples a session consumes.  Sessions come from the
:func:`repro.serve.open_session` front door (a
:class:`~repro.serve.config.SessionConfig` decides between the
single-writer :class:`~repro.serve.session.StreamSession` and the
partitioned :class:`~repro.serve.multiwriter.MultiWriterSession`); every
adapter here works with either shape, since both expose ``submit``:

* :func:`parse_event` — one newline-JSON event (``{"worker": 3, "task":
  17, "label": 1}`` or the compact ``[3, 17, 1]`` array form) into a
  record tuple;
* :func:`iter_ndjson` — async iterator over an NDJSON text stream (a file,
  a pipe, stdin), with optional ``follow`` tailing for live feeds;
* :func:`feed_session` — pump any (a)sync record source into a session.

The sources never reorder events: records are yielded in stream order and
submitted FIFO, so the session's ordered-application guarantee extends to
the wire format (under a multi-writer session, per-worker order — the only
order the determinism contract needs — survives the partition routing).
"""

from __future__ import annotations

import asyncio
import json
from collections.abc import AsyncIterable, AsyncIterator, Iterable
from pathlib import Path
from typing import IO, Any

from repro.exceptions import DataValidationError
from repro.serve.session import StreamSession

__all__ = ["feed_session", "iter_ndjson", "parse_event"]

#: Keys of the object event form, in record order.
_EVENT_KEYS = ("worker", "task", "label")


def parse_event(line: str | bytes | dict | list) -> tuple[int, int, int] | None:
    """Parse one NDJSON event into a ``(worker, task, label)`` record.

    Accepts the object form ``{"worker": w, "task": t, "label": l}``
    (extra keys ignored — timestamps, annotator metadata, ...), the
    compact array form ``[w, t, l]``, or an already-decoded dict/list.
    Blank lines decode to ``None`` (callers skip them); anything else
    malformed raises :class:`~repro.exceptions.DataValidationError`.
    """
    if isinstance(line, (str, bytes)):
        text = line.decode() if isinstance(line, bytes) else line
        if not text.strip():
            return None
        try:
            decoded: Any = json.loads(text)
        except json.JSONDecodeError as error:
            raise DataValidationError(f"malformed NDJSON event: {text!r}") from error
    else:
        decoded = line
    if isinstance(decoded, dict):
        try:
            return tuple(int(decoded[key]) for key in _EVENT_KEYS)  # type: ignore[return-value]
        except (KeyError, TypeError, ValueError) as error:
            raise DataValidationError(
                f"NDJSON event needs integer 'worker'/'task'/'label' keys: "
                f"{decoded!r}"
            ) from error
    if isinstance(decoded, (list, tuple)) and len(decoded) == 3:
        try:
            return tuple(int(value) for value in decoded)  # type: ignore[return-value]
        except (TypeError, ValueError) as error:
            raise DataValidationError(
                f"NDJSON array event must be three integers: {decoded!r}"
            ) from error
    raise DataValidationError(f"unrecognized NDJSON event shape: {decoded!r}")


#: Opener used for path inputs — a module-level hook so tests can observe
#: (and assert the closing of) every handle the iterator owns.
_open_text = open


async def iter_ndjson(
    stream: IO[str] | str | Path,
    follow: bool = False,
    poll_interval: float = 0.2,
    idle_timeout: float | None = None,
) -> AsyncIterator[tuple[int, int, int]]:
    """Yield records from an NDJSON text stream, in stream order.

    ``stream`` is an open text handle, or a path — for a path the iterator
    opens the file itself and *always* closes it, including when a
    malformed line raises mid-iteration or the consumer abandons the
    iterator early (caller-provided handles stay caller-owned).

    Reads line by line off the event loop's default executor (so a slow
    pipe never blocks the loop).  A line without its trailing newline is
    buffered, not parsed — reading can race a writer mid-append (the
    ``tail -f`` case), and half a JSON document must not be rejected as
    malformed; the buffered text is parsed once its newline arrives, or as
    the final record at end of stream.  At end of file: stop, unless
    ``follow`` is set — then keep polling every ``poll_interval`` seconds
    for appended lines until ``idle_timeout`` seconds pass without new
    data (``None`` = follow forever).
    """
    loop = asyncio.get_running_loop()
    owns = isinstance(stream, (str, Path))
    handle: IO[str] = (
        _open_text(stream, "r", encoding="utf-8") if owns else stream
    )
    try:
        idle = 0.0
        pending = ""
        while True:
            chunk = await loop.run_in_executor(None, handle.readline)
            if chunk:
                idle = 0.0
                pending += chunk
                if not pending.endswith("\n"):
                    continue  # mid-append: wait for the rest of the line
                record = parse_event(pending)
                pending = ""
                if record is not None:
                    yield record
                continue
            if not follow:
                break
            if idle_timeout is not None and idle >= idle_timeout:
                break
            await asyncio.sleep(poll_interval)
            idle += poll_interval
        if pending.strip():
            # The stream ended mid-line: the buffered text is the final
            # record (files routinely lack the last newline) — or garbage,
            # surfaced as the usual DataValidationError.
            record = parse_event(pending)
            if record is not None:
                yield record
    finally:
        if owns:
            handle.close()


async def feed_session(
    session: StreamSession,
    source: AsyncIterable[tuple[int, int, int]] | Iterable[tuple[int, int, int]],
) -> int:
    """Pump a record source into the session; returns the submitted count.

    Backpressure propagates naturally: when the session queue is full the
    pump (and therefore the source read) pauses until the applier drains.
    """
    return await session.submit_many(source)
