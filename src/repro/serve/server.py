"""Newline-JSON TCP server over a streaming session.

``repro-crowd serve`` exposes the streaming ingestion subsystem on a
socket.  The session underneath comes from the
:func:`repro.serve.open_session` front door — the CLI flags map onto one
:class:`~repro.serve.config.SessionConfig` — so the server runs unchanged
over a single-writer :class:`~repro.serve.session.StreamSession` or a
partitioned :class:`~repro.serve.multiwriter.MultiWriterSession`
(``--writers N``): both expose the ``submit`` / ``flush`` / reader surface
the protocol uses.  Clients write one JSON document per line.  Event lines (the
:func:`~repro.serve.sources.parse_event` shapes) are submitted to the
session — no per-event reply, so a producer can pipeline at queue speed
and the bounded queue's backpressure propagates to the socket via TCP flow
control.  Query lines (``{"query": ...}``) get exactly one JSON reply line
each, served at the last applied batch boundary (queries never force a
flush; send ``{"query": "flush"}`` first for read-your-writes):

``{"query": "evaluate_all"}``
    ``{"estimates": {worker: {n_tasks, lower, mean, upper, status}}}``
``{"query": "worker", "worker": 3}``
    one estimate object (or ``{"error": ...}`` when it has no data yet)
``{"query": "spammers"}``
    ``{"scores": {worker: rate-or-null}}`` majority-disagreement proxies
``{"query": "flush"}``
    ``{"applied": n}`` once everything submitted so far is applied
``{"query": "stats"}``
    queue/batch counters (events, batches, pending, matrix shape)
``{"query": "shutdown"}``
    ``{"ok": true}``, then the server stops accepting and exits

Malformed lines get ``{"error": ...}`` and the connection stays open.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

from repro.exceptions import CrowdAssessmentError
from repro.serve.multiwriter import MultiWriterSession
from repro.serve.session import StreamSession

#: Either session shape serves the protocol: the handlers only touch the
#: shared submit/flush/reader surface.
Session = StreamSession | MultiWriterSession
from repro.serve.sources import parse_event
from repro.types import WorkerErrorEstimate

__all__ = ["serve_ndjson"]


def _estimate_payload(estimate: WorkerErrorEstimate) -> dict:
    return {
        "worker": estimate.worker,
        "n_tasks": estimate.n_tasks,
        "lower": estimate.interval.lower,
        "mean": estimate.interval.mean,
        "upper": estimate.interval.upper,
        "status": estimate.status.value,
    }


async def _answer_query(
    session: Session, query: dict, stop: asyncio.Event
) -> dict:
    kind = query.get("query")
    if kind == "evaluate_all":
        estimates = await session.evaluate_all()
        return {
            "estimates": {
                str(worker): _estimate_payload(estimate)
                for worker, estimate in sorted(estimates.items())
            }
        }
    if kind == "worker":
        return _estimate_payload(await session.evaluate_worker(int(query["worker"])))
    if kind == "spammers":
        scores = await session.spammer_scores()
        return {"scores": {str(worker): rate for worker, rate in scores.items()}}
    if kind == "flush":
        return {"applied": await session.flush()}
    if kind == "stats":
        matrix = session.evaluator.matrix
        return {
            "submitted": session.submitted_events,
            "applied": session.applied_events,
            "pending": session.pending_events,
            "batches": len(session.applied_batches),
            "n_workers": matrix.n_workers,
            "n_tasks": matrix.n_tasks,
            "n_responses": matrix.n_responses,
        }
    if kind == "shutdown":
        stop.set()
        return {"ok": True}
    return {"error": f"unknown query {kind!r}"}


async def serve_ndjson(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Callable[[str, int], None] | None = None,
) -> None:
    """Run the NDJSON ingestion server until a shutdown query arrives.

    ``port=0`` binds an ephemeral port; ``ready(host, port)`` is called
    with the bound address once the server is listening (the CLI prints
    it, tests connect to it).
    """
    stop = asyncio.Event()
    connections: set[asyncio.StreamWriter] = set()

    async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        connections.add(writer)
        try:
            while not stop.is_set():
                line = await reader.readline()
                if not line:
                    break
                try:
                    decoded = json.loads(line)
                except json.JSONDecodeError:
                    reply: dict | None = {"error": "malformed JSON line"}
                else:
                    try:
                        if isinstance(decoded, dict) and "query" in decoded:
                            reply = await _answer_query(session, decoded, stop)
                        else:
                            await session.submit(*parse_event(decoded))
                            reply = None
                    except CrowdAssessmentError as error:
                        reply = {"error": str(error)}
                if reply is not None:
                    writer.write((json.dumps(reply) + "\n").encode())
                    await writer.drain()
        except (ConnectionError, OSError):
            pass  # client vanished, or the shutdown force-close raced a read
        finally:
            connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    server = await asyncio.start_server(handle, host=host, port=port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    async with server:
        await stop.wait()
        # Unblock handlers parked in readline() on OTHER connections:
        # since Python 3.12 Server.wait_closed() (run by the context
        # manager exit) waits for every active handler, so an idle client
        # would otherwise pin the server open after a shutdown query.
        for writer in list(connections):
            writer.close()
