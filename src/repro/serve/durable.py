"""Durable streaming sessions: write-ahead log, atomic snapshots, replay.

The streaming subsystem (:mod:`repro.serve`) keeps all state in memory; a
crash replays the world from scratch.  This module is the persistence layer
behind ``StreamSession(durable=...)`` / ``StreamSession.resume(...)``,
built from two artifacts living in one directory:

* an append-only NDJSON **write-ahead log** (``wal.ndjson``) — the applier
  fsyncs each micro-batch record *before* applying it, so any event whose
  ``flush()`` was acknowledged is on disk;
* periodic **atomic snapshots** (``snapshot-<seq>.snap``) of the full
  evaluator state, written temp-file + rename with a checksum footer, so a
  partially written snapshot is never visible under its final name.

Resume loads the newest snapshot that validates, replays the WAL records
with sequence beyond it, and reopens the log — O(delta) instead of
O(history).  Snapshots carry the evaluator's dependency ledger and its
clean cached estimates (the ``deps.*``/``cache.*`` arrays of
:meth:`~repro.core.incremental.IncrementalEvaluator.export_state`) in
addition to the response data and backend caches, so a resumed session
serves warm intervals for workers the WAL delta never touched — zero
recomputation, bit-identical to the estimates served before the crash.

WAL format (version 1)
----------------------

One JSON document per line.  The first line is the versioned header::

    {"format": "repro-durable-wal", "version": 1}

Every other line is a batch record::

    {"seq": [first, last], "events": [[w, t, l], ...], "crc": <crc32>}

``seq`` is the inclusive 1-based sequence range of the batch's events in
submission order; ``crc`` is the CRC-32 of the canonical JSON encoding of
the record without the ``crc`` key (sorted keys, no whitespace).  Records
written by a multi-writer session (:mod:`repro.serve.multiwriter`) carry
one extra key — ``"epoch"``, the session-global snapshot-fence epoch the
record was appended under — which participates in the CRC; single-writer
logs never write it, so the on-disk ``wal.ndjson`` format is unchanged.  A missing
or future-version header raises
:class:`~repro.exceptions.DurableStateError`; a record that fails to
decode, fails its CRC, or lacks its trailing newline marks the **tail** of
the log — it and everything after it are the un-acknowledged residue of a
crash mid-append and are discarded (the file is truncated back to the last
valid record when the log is reopened, so later appends never interleave
with garbage).  Records are idempotent under replay: a record whose
``last`` sequence is already covered by the restored state is skipped, so
duplicated batches (or replaying twice) cannot double-apply; a *gap* in
the sequence numbering, by contrast, means data loss in the middle of the
log and raises.

Snapshot format (version 1)
---------------------------

A single binary file: one JSON header line (format id, version, the
evaluator meta including the last applied sequence, and an array manifest
of name/dtype/shape in payload order), the raw C-contiguous bytes of each
manifest array concatenated in order, and a fixed-width footer
``sha256:<hex>\\n`` over everything before it.  Snapshots are written to a
``.tmp`` sibling, flushed, fsynced and atomically renamed into place —
visible-or-absent, never partial.  Loading verifies the checksum and
returns fresh *writable* array copies, so the restored backend caches stay
delta-updatable; a snapshot that fails validation is skipped in favour of
the next older one (pure WAL replay when none survives).

The resume determinism contract lives with the streaming contract in
:mod:`repro.core.agreement`: a resumed session is bit-identical to one
that was never interrupted, locked by the ``resumed`` fuzz column of the
cross-backend differential suite and the crash-smoke CI job.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import IO, TYPE_CHECKING

import numpy as np

from repro.exceptions import ConfigurationError, DurableStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (session imports us)
    from repro.core.incremental import IncrementalEvaluator

__all__ = [
    "DurableStore",
    "WAL_FORMAT",
    "WAL_VERSION",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "load_snapshot_file",
    "write_snapshot_file",
]

WAL_FORMAT = "repro-durable-wal"
WAL_VERSION = 1
WAL_NAME = "wal.ndjson"

SNAPSHOT_FORMAT = "repro-durable-snapshot"
SNAPSHOT_VERSION = 1
SNAPSHOT_SUFFIX = ".snap"

#: Fixed-width snapshot footer: b"sha256:" + 64 hex digits + b"\n".
_FOOTER_LEN = 7 + 64 + 1


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def _record_crc(
    seq: list[int], events: list[list[int]], epoch: int | None = None
) -> int:
    payload: dict = {"seq": seq, "events": events}
    if epoch is not None:
        payload["epoch"] = epoch
    return zlib.crc32(_canonical(payload))


# --------------------------------------------------------------------------- #
# Snapshot files
# --------------------------------------------------------------------------- #


def write_snapshot_file(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> Path:
    """Atomically write one snapshot file (temp sibling + rename).

    The caller's ``meta`` must be JSON-serializable; arrays are stored as
    raw C-contiguous bytes in manifest order.  The file only ever appears
    under ``path`` complete and checksummed — a crash mid-write leaves at
    most a ``.tmp`` sibling, which loaders ignore.
    """
    path = Path(path)
    manifest = []
    chunks = []
    for name, array in arrays.items():
        contiguous = np.ascontiguousarray(array)
        manifest.append(
            {
                "name": name,
                "dtype": contiguous.dtype.str,
                "shape": list(contiguous.shape),
            }
        )
        chunks.append(contiguous.tobytes())
    header = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "meta": meta,
        "arrays": manifest,
    }
    payload = json.dumps(header, sort_keys=True).encode() + b"\n" + b"".join(chunks)
    digest = hashlib.sha256(payload).hexdigest()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.write(b"sha256:" + digest.encode() + b"\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path.parent)
    return path


def load_snapshot_file(path: str | Path) -> tuple[dict, dict[str, np.ndarray]]:
    """Load and verify one snapshot; returns ``(meta, writable arrays)``.

    Raises :class:`~repro.exceptions.DurableStateError` on any validation
    failure (truncation, checksum mismatch, unsupported version); callers
    that scan a directory catch it and fall back to an older snapshot.
    """
    data = Path(path).read_bytes()
    if len(data) <= _FOOTER_LEN:
        raise DurableStateError(f"snapshot {path} is truncated")
    payload, footer = data[:-_FOOTER_LEN], data[-_FOOTER_LEN:]
    if not footer.startswith(b"sha256:") or not footer.endswith(b"\n"):
        raise DurableStateError(f"snapshot {path} has a malformed checksum footer")
    expected = footer[7:-1].decode("ascii", errors="replace")
    if hashlib.sha256(payload).hexdigest() != expected:
        raise DurableStateError(f"snapshot {path} failed its checksum")
    newline = payload.index(b"\n")
    try:
        header = json.loads(payload[:newline])
    except json.JSONDecodeError as error:  # pragma: no cover - checksum catches
        raise DurableStateError(f"snapshot {path} header is malformed") from error
    if header.get("format") != SNAPSHOT_FORMAT:
        raise DurableStateError(f"snapshot {path} has unknown format")
    if header.get("version") != SNAPSHOT_VERSION:
        raise DurableStateError(
            f"snapshot {path} has unsupported version {header.get('version')!r}"
        )
    arrays: dict[str, np.ndarray] = {}
    offset = newline + 1
    for entry in header["arrays"]:
        dtype = np.dtype(entry["dtype"])
        shape = tuple(entry["shape"])
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        end = offset + count * dtype.itemsize
        if end > len(payload):
            raise DurableStateError(f"snapshot {path} array payload is truncated")
        # .copy() matters: the restored backend caches must stay writable
        # so post-resume streaming keeps delta-updating them in place.
        arrays[entry["name"]] = (
            np.frombuffer(payload[offset:end], dtype=dtype).reshape(shape).copy()
        )
        offset = end
    return header["meta"], arrays


def _fsync_directory(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform quirk
        pass
    finally:
        os.close(fd)


# --------------------------------------------------------------------------- #
# The durable store
# --------------------------------------------------------------------------- #


class DurableStore:
    """WAL + snapshot manager for one durable session directory.

    Parameters
    ----------
    directory:
        Where the log and snapshots live (created on open).
    snapshot_every:
        Write a snapshot after every N applied batches (and a final one on
        clean close).  ``None`` disables periodic snapshots — the directory
        then holds a pure WAL and resume replays the full history.
    fsync:
        Fsync each WAL append before the batch is applied (the durability
        guarantee behind acknowledged flushes).  Tests disable it for
        speed; the data path defaults to on.
    keep_snapshots:
        How many of the newest snapshots survive pruning.  More than one,
        so a snapshot that fails validation on resume (killed mid-rename
        races are impossible, but torn disks are not) can fall back.
    wal_name:
        Filename of the log inside ``directory``.  The default is the
        single-writer ``wal.ndjson``; multi-writer sessions open one store
        per partition with ``wal-<partition>.ndjson`` segment names.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        snapshot_every: int | None = None,
        fsync: bool = True,
        keep_snapshots: int = 2,
        wal_name: str = WAL_NAME,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be positive or None, got {snapshot_every}"
            )
        if keep_snapshots < 1:
            raise ConfigurationError(
                f"keep_snapshots must be at least 1, got {keep_snapshots}"
            )
        self.directory = Path(directory)
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.keep_snapshots = keep_snapshots
        self.wal_name = wal_name
        self._log: IO[str] | None = None
        self._total_batches = 0
        self._since_snapshot = 0
        #: Byte length of the open log (header + valid records).  Recorded
        #: in each snapshot's meta as ``wal_bytes`` so resume can seek past
        #: the snapshotted prefix instead of re-parsing the whole log.
        self._wal_bytes = 0
        #: Absolute valid-byte offset computed by the last log scan; reused
        #: by ``open(resume=True)`` so the reopen truncation does not pay a
        #: second full parse.
        self._scan_valid_bytes: int | None = None
        #: Snapshot files written by this store instance (cadence tests).
        self.snapshots_written = 0
        #: WAL batch records discarded as a truncated/corrupt tail at the
        #: last :meth:`read_batches` (diagnostics; 0 on a clean log).
        self.discarded_tail_records = 0

    # -- state probing -------------------------------------------------- #

    @property
    def wal_path(self) -> Path:
        return self.directory / self.wal_name

    @property
    def wal_bytes(self) -> int:
        """Byte length of the open log (header + valid records)."""
        return self._wal_bytes

    @classmethod
    def has_state(cls, directory: str | Path) -> bool:
        """True when ``directory`` holds resumable state (WAL or snapshot)."""
        directory = Path(directory)
        wal = directory / WAL_NAME
        if wal.exists() and wal.stat().st_size > 0:
            return True
        return any(directory.glob(f"snapshot-*{SNAPSHOT_SUFFIX}"))

    def snapshot_paths(self) -> list[Path]:
        """Snapshot files, newest (highest applied sequence) first."""
        return sorted(
            self.directory.glob(f"snapshot-*{SNAPSHOT_SUFFIX}"), reverse=True
        )

    # -- lifecycle ------------------------------------------------------- #

    def open(self, resume: bool = False) -> None:
        """Create the directory and open the WAL for appending.

        ``resume=False`` (a fresh session) refuses a directory that already
        holds state — starting a new sequence numbering over live history
        would corrupt it; resume instead.  ``resume=True`` truncates the
        log back to its last valid record (discarding any crash tail found
        by :meth:`read_batches`) before reopening for append.
        """
        if self._log is not None:
            return
        if not resume and self.has_state(self.directory):
            raise DurableStateError(
                f"durable directory {self.directory} already contains state; "
                "use repro.serve.open_session (which resumes existing state) "
                "instead of starting a fresh session over it"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        if resume and self.wal_path.exists():
            if self._scan_valid_bytes is not None:
                valid_bytes = self._scan_valid_bytes
            else:
                _, _, valid_bytes = self._scan_log()
            with open(self.wal_path, "r+b") as handle:
                handle.truncate(valid_bytes)
        self._log = open(self.wal_path, "a", encoding="utf-8")
        self._wal_bytes = self.wal_path.stat().st_size
        if self._wal_bytes == 0:
            header = json.dumps({"format": WAL_FORMAT, "version": WAL_VERSION})
            self._log.write(header + "\n")
            self._log.flush()
            if self.fsync:
                os.fsync(self._log.fileno())
            self._wal_bytes = len(header) + 1

    def close(self) -> None:
        """Close the log handle (idempotent)."""
        if self._log is not None:
            self._log.close()
            self._log = None

    # -- WAL append (the applier's pre-apply hook) ----------------------- #

    def append_batch(
        self,
        first_seq: int,
        last_seq: int,
        events: list[tuple[int, int, int]],
        epoch: int | None = None,
    ) -> None:
        """Append one micro-batch record and (by default) fsync it.

        Called by the session's applier *before* ``apply_batch``: once this
        returns, a crash at any later point replays the batch from the log,
        so a flush acknowledged after the apply can never lose events.
        Multi-writer sessions pass ``epoch`` (the current snapshot-fence
        epoch) so the segment merge on resume has a global order key;
        single-writer appends leave it ``None`` and the record format is
        byte-identical to version-1 logs written before epochs existed.
        """
        if self._log is None:
            raise ConfigurationError("the durable store is not open")
        seq = [int(first_seq), int(last_seq)]
        payload = [[int(w), int(t), int(label)] for w, t, label in events]
        record = {"seq": seq, "events": payload}
        if epoch is not None:
            record["epoch"] = int(epoch)
        record["crc"] = _record_crc(seq, payload, record.get("epoch"))
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._log.write(line)
        self._log.write("\n")
        self._log.flush()
        if self.fsync:
            os.fsync(self._log.fileno())
        self._wal_bytes += len(line) + 1

    # -- WAL replay ------------------------------------------------------ #

    def read_batches(
        self, start_bytes: int = 0
    ) -> list[tuple[int, int, list[tuple[int, int, int]]]]:
        """Valid batch records in log order, tail residue discarded.

        ``start_bytes`` (a snapshot's recorded ``wal_bytes``) skips parsing
        the records the snapshot already covers — the O(delta) seek that
        makes resume cheaper than full replay.  The header is still
        validated, and an offset that no longer lands inside the file
        (the log was truncated below the snapshot) falls back to a full
        scan, which replay then deduplicates by sequence.
        """
        return [
            (first, last, events)
            for _, first, last, events in self.read_batches_with_epoch(start_bytes)
        ]

    def read_batches_with_epoch(
        self, start_bytes: int = 0
    ) -> list[tuple[int, int, int, list[tuple[int, int, int]]]]:
        """Like :meth:`read_batches`, keeping each record's fence epoch.

        Returns ``(epoch, first, last, events)`` tuples; records without an
        ``epoch`` key (single-writer logs) read as epoch 0.  The segment
        merge in :mod:`repro.serve.multiwriter` orders on this.
        """
        batches, discarded, valid_bytes = self._scan_log(start_bytes)
        self.discarded_tail_records = discarded
        self._scan_valid_bytes = valid_bytes
        return batches

    def _scan_log(
        self, start_bytes: int = 0
    ) -> tuple[list[tuple[int, int, int, list[tuple[int, int, int]]]], int, int]:
        """Parse the WAL: ``(valid batches, discarded records, valid bytes)``.

        Stops at the first record that is truncated (no trailing newline),
        undecodable, structurally wrong or CRC-mismatched; everything from
        that point on is the tail residue of a crash and is counted as
        discarded.  ``valid bytes`` is the absolute offset the log must be
        truncated to before it is appended to again.
        """
        if not self.wal_path.exists():
            return [], 0, 0
        data = self.wal_path.read_bytes()
        if not data:
            return [], 0, 0
        lines = data.split(b"\n")
        # A trailing newline leaves one empty sentinel chunk; without it the
        # last chunk is a partial record.
        complete, partial = lines[:-1], lines[-1]
        if not complete:
            return [], 1, 0
        try:
            header = json.loads(complete[0])
        except json.JSONDecodeError as error:
            raise DurableStateError(
                f"WAL {self.wal_path} has a malformed header line"
            ) from error
        if not isinstance(header, dict) or header.get("format") != WAL_FORMAT:
            raise DurableStateError(
                f"WAL {self.wal_path} does not carry the versioned "
                f"{WAL_FORMAT!r} header"
            )
        if header.get("version") != WAL_VERSION:
            raise DurableStateError(
                f"WAL {self.wal_path} has unsupported version "
                f"{header.get('version')!r} (this build reads {WAL_VERSION})"
            )
        header_bytes = len(complete[0]) + 1
        if start_bytes > header_bytes and start_bytes <= len(data):
            # Seek past the snapshot-covered prefix.  Snapshot offsets are
            # recorded at record boundaries of an append-only file, so the
            # suffix starts exactly at a record (or is empty).
            tail_lines = data[start_bytes:].split(b"\n")
            complete, partial = tail_lines[:-1], tail_lines[-1]
            scan_from = 0
            valid_bytes = start_bytes
        else:
            scan_from = 1
            valid_bytes = header_bytes
        batches: list[tuple[int, int, int, list[tuple[int, int, int]]]] = []
        discarded = 1 if partial else 0
        for index, raw in enumerate(complete[scan_from:], start=scan_from):
            record = self._parse_record(raw)
            if record is None:
                # This record and everything after it (including any partial
                # final line) is the crash tail.
                discarded = len(complete) - index + (1 if partial else 0)
                break
            batches.append(record)
            valid_bytes += len(raw) + 1
        return batches, discarded, valid_bytes

    @staticmethod
    def _parse_record(
        raw: bytes,
    ) -> tuple[int, int, int, list[tuple[int, int, int]]] | None:
        try:
            record = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        seq = record.get("seq")
        events = record.get("events")
        crc = record.get("crc")
        epoch = record.get("epoch")
        if (
            not isinstance(seq, list)
            or len(seq) != 2
            or not isinstance(events, list)
            or not isinstance(crc, int)
            or (epoch is not None and not isinstance(epoch, int))
        ):
            return None
        if _record_crc(seq, events, epoch) != crc:
            return None
        try:
            parsed = [(int(w), int(t), int(label)) for w, t, label in events]
        except (TypeError, ValueError):
            return None
        return int(epoch or 0), int(seq[0]), int(seq[1]), parsed

    # -- snapshots -------------------------------------------------------- #

    def load_snapshot_state(self) -> tuple[dict, dict[str, np.ndarray]] | None:
        """The newest snapshot that validates, or None (pure WAL replay).

        Snapshots that fail their checksum (killed mid-write residue, torn
        storage) are skipped in favour of older ones — never fatal.
        """
        for path in self.snapshot_paths():
            try:
                return load_snapshot_file(path)
            except (DurableStateError, OSError):
                continue
        return None

    def record_applied(
        self, evaluator: "IncrementalEvaluator", applied_seq: int
    ) -> None:
        """Post-apply bookkeeping: count the batch, snapshot when due."""
        self._total_batches += 1
        self._since_snapshot += 1
        if (
            self.snapshot_every is not None
            and self._since_snapshot >= self.snapshot_every
        ):
            self.write_snapshot(evaluator, applied_seq)

    def note_resumed(self, total_batches: int, replayed_batches: int) -> None:
        """Seed the counters after a resume (cadence continues from delta)."""
        self._total_batches = total_batches
        self._since_snapshot = replayed_batches

    def finalize(self, evaluator: "IncrementalEvaluator", applied_seq: int) -> None:
        """Clean-shutdown hook: final snapshot (when periodic ones are on).

        A session closed cleanly with ``snapshot_every`` set leaves a
        snapshot at its last applied sequence, so the next resume replays
        nothing.  With ``snapshot_every=None`` the directory stays a pure
        WAL by design.
        """
        if self.snapshot_every is not None and self._since_snapshot > 0:
            self.write_snapshot(evaluator, applied_seq)

    def write_snapshot(
        self, evaluator: "IncrementalEvaluator", applied_seq: int
    ) -> Path:
        """Write one snapshot of the evaluator at ``applied_seq`` and prune."""
        meta, arrays = evaluator.export_state()
        meta["applied_seq"] = int(applied_seq)
        meta["applied_batches"] = self._total_batches
        # The log offset covering everything up to applied_seq: resume
        # seeks here instead of re-parsing the snapshotted prefix.
        meta["wal_bytes"] = (
            self._wal_bytes
            if self._log is not None
            else (self.wal_path.stat().st_size if self.wal_path.exists() else 0)
        )
        path = self.directory / f"snapshot-{int(applied_seq):012d}{SNAPSHOT_SUFFIX}"
        write_snapshot_file(path, meta, arrays)
        self._since_snapshot = 0
        self.snapshots_written += 1
        for stale in self.snapshot_paths()[self.keep_snapshots :]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path
