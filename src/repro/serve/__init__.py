"""Asynchronous streaming ingestion in front of the incremental evaluator.

The paper evaluates a *given* response matrix; a production system serves a
*stream* — responses arrive concurrently while quality queries keep being
answered.  This package is that front-end, layered on the delta machinery
the rest of the library already provides (O(row) ``apply_response`` /
batched ``apply_responses`` on every backend, dependency-tracked cache
invalidation in :class:`~repro.core.incremental.IncrementalEvaluator`):

* :class:`~repro.serve.config.SessionConfig` +
  :func:`~repro.serve.config.open_session` — the canonical construction
  path: one validated frozen config (queue bounds, estimator knobs,
  durability, ``writers``) through one front door that resolves
  create-vs-resume and single- vs multi-writer dispatch;
* :class:`~repro.serve.queue.ResponseQueue` — bounded asyncio queue with
  producer backpressure, coalescing the stream into micro-batches;
* :class:`~repro.serve.session.StreamSession` — the single-writer session
  API: ``await submit(...)``, ``await flush()``, ordered batch application
  under a writer lock, snapshot-consistent reads, per-batch invalidation
  stats (see its module docstring for the determinism contract);
* :mod:`~repro.serve.multiwriter` — N-partition ingestion
  (consistent-hash worker partitioning, per-partition WAL segments,
  epoch-fenced snapshots, k-way merge resume) for
  ``SessionConfig(writers=N)``;
* :mod:`~repro.serve.sources` — NDJSON / async-iterator adapters;
* :mod:`~repro.serve.durable` — write-ahead log + atomic snapshots behind
  ``SessionConfig(durable=...)``;
* :mod:`~repro.serve.server` — the ``repro-crowd serve`` TCP front-end.

The locked contract: estimates served from any interleaving of
micro-batches equal a from-scratch batch build over the accumulated data,
bit for bit, on every backend (``tests/property/
test_cross_backend_differential.py``, ``streamed`` column) — and a durable
session resumed after a kill serves the same bits as one that was never
interrupted (the ``resumed`` and ``multiwriter-resumed`` columns plus the
crash-smoke CI drills).
"""

from repro.serve.config import SessionConfig, open_session
from repro.serve.durable import (
    DurableStore,
    load_snapshot_file,
    write_snapshot_file,
)
from repro.serve.multiwriter import (
    MultiWriterSession,
    MultiWriterStore,
    partition_for,
)
from repro.serve.queue import QueueClosed, ResponseQueue
from repro.serve.session import (
    BatchRecord,
    SessionSnapshot,
    StreamSession,
    replay_stream,
)
from repro.serve.sources import feed_session, iter_ndjson, parse_event

__all__ = [
    "BatchRecord",
    "DurableStore",
    "MultiWriterSession",
    "MultiWriterStore",
    "QueueClosed",
    "ResponseQueue",
    "SessionConfig",
    "SessionSnapshot",
    "StreamSession",
    "feed_session",
    "iter_ndjson",
    "load_snapshot_file",
    "open_session",
    "parse_event",
    "partition_for",
    "replay_stream",
    "write_snapshot_file",
]
