"""Multi-writer durable ingestion: partitioned queues, WAL segments, fences.

The single-writer :class:`~repro.serve.session.StreamSession` drains one
bounded queue with one applier task appending to one WAL — the last serial
axis on the ingest path.  This module parallelizes ingestion itself while
keeping the determinism contract intact:

* **Consistent-hash partitioning** — :func:`partition_for` maps a worker
  id to one of N partitions (CRC-32 of the id's fixed-width encoding,
  modulo N).  The assignment depends only on the id, so it is stable as
  new worker ids appear, and *every event for a given worker lands in the
  same partition* — per-worker submission order is preserved by
  construction, which is all the order the evaluator's last-write-wins
  upserts and order-free dependency ledger require (events for different
  workers commute: they update disjoint response cells).
* **Per-partition pipelines** — each partition owns a bounded
  :class:`~repro.serve.queue.ResponseQueue`, a micro-batcher, and its own
  WAL segment ``wal-<partition>.ndjson`` (same versioned CRC'd record
  format as the single-writer log, with a *per-partition* sequence plus a
  session-global ``epoch`` stamped on each record).  Appends are offloaded
  to a small thread pool so segment fsyncs overlap — the genuinely
  concurrent stage — while ``apply_batch`` calls interleave under the one
  writer lock in whatever order batches complete.
* **Fenced snapshots** — before ``write_snapshot`` a barrier closes the
  intake gate and drains every in-flight batch (appended-but-unapplied),
  then bumps the global epoch and checkpoints.  The invariant: a snapshot
  at epoch E covers *exactly* the records with epoch < E in every
  segment — a snapshot never splits a partition's batch, and the
  per-partition applied sequences in its meta are mutually consistent.
* **Segment-merge resume** — :meth:`MultiWriterStore.read_merged`
  truncates each segment's corrupt tail independently, drops records the
  snapshot already covers (slicing records that straddle the boundary),
  checks per-partition sequence contiguity, and k-way merges the deltas
  by ``(epoch, partition_seq, partition)``.  Any merge that preserves
  per-partition order rebuilds the same response matrix (cross-partition
  events commute), so the resumed session is bit-identical to a serial
  uninterrupted run — locked by the ``multiwriter-resumed`` fuzz column
  of the cross-backend differential suite.

Construction goes through the one front door::

    from repro.serve import SessionConfig, open_session

    config = SessionConfig(writers=3, durable="state/", snapshot_every=8)
    async with open_session(config) as session:
        await session.submit(worker, task, label)

``open_session`` resumes a directory holding ``wal-<p>.ndjson`` segments
under any new writer count: old segments keep their per-partition sequence
continuity, and the new count only governs where *new* events land.
"""

from __future__ import annotations

import asyncio
import heapq
import zlib
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.core.incremental import IncrementalEvaluator
from repro.core.spammer_filter import DEFAULT_SPAMMER_THRESHOLD
from repro.exceptions import ConfigurationError, DurableStateError
from repro.serve.config import SessionConfig
from repro.serve.durable import (
    SNAPSHOT_SUFFIX,
    WAL_NAME,
    DurableStore,
    write_snapshot_file,
)
from repro.serve.queue import ResponseQueue
from repro.serve.session import (
    BatchRecord,
    SessionSnapshot,
    _majority_rates,
)
from repro.types import WorkerErrorEstimate

__all__ = [
    "MultiWriterSession",
    "MultiWriterStore",
    "partition_for",
    "segment_name",
]

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".ndjson"


def segment_name(partition: int) -> str:
    """The WAL segment filename owned by ``partition``."""
    return f"{SEGMENT_PREFIX}{int(partition)}{SEGMENT_SUFFIX}"


def partition_for(worker: int, n_partitions: int) -> int:
    """Consistent-hash partition owning ``worker``'s events.

    CRC-32 of the worker id's fixed-width little-endian encoding, modulo
    the partition count: deterministic across processes and Python builds
    (unsalted, unlike ``hash()``), and dependent only on the id itself —
    so the assignment is stable however many *other* worker ids appear
    later.  All events for one worker therefore share a partition, which
    preserves their submission order by construction.
    """
    if n_partitions < 1:
        raise ConfigurationError(
            f"partition count must be at least 1, got {n_partitions}"
        )
    if n_partitions == 1:
        return 0
    digest = zlib.crc32(int(worker).to_bytes(8, "little", signed=True))
    return digest % n_partitions


# --------------------------------------------------------------------------- #
# The multi-writer store: N WAL segments + fenced snapshots
# --------------------------------------------------------------------------- #


class MultiWriterStore:
    """Per-partition WAL segments plus epoch-fenced snapshots.

    One :class:`~repro.serve.durable.DurableStore` per partition handles
    the segment format (CRC'd records, tail truncation, O(delta) seeks);
    this class owns what is global: the fence epoch stamped on every
    record, snapshot files whose meta carries the per-partition applied
    sequences and segment offsets, and the k-way merge that rebuilds a
    deterministic replay order on resume.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        writers: int,
        snapshot_every: int | None = None,
        fsync: bool = True,
        keep_snapshots: int = 2,
    ) -> None:
        if writers < 1:
            raise ConfigurationError(
                f"writers must be at least 1, got {writers}"
            )
        if snapshot_every is not None and snapshot_every < 1:
            raise ConfigurationError(
                f"snapshot_every must be positive or None, got {snapshot_every}"
            )
        if keep_snapshots < 1:
            raise ConfigurationError(
                f"keep_snapshots must be at least 1, got {keep_snapshots}"
            )
        self.directory = Path(directory)
        self.writers = writers
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.keep_snapshots = keep_snapshots
        self._segments: dict[int, DurableStore] = {}
        self._epoch = 0
        self._opened = False
        self._total_batches = 0
        self._since_snapshot = 0
        #: Snapshot files written by this store instance (cadence tests).
        self.snapshots_written = 0
        #: Records discarded as corrupt tails across all segments at the
        #: last :meth:`read_merged` (diagnostics; 0 on clean segments).
        self.discarded_tail_records = 0

    # -- state probing --------------------------------------------------- #

    @staticmethod
    def segment_paths(directory: str | Path) -> dict[int, Path]:
        """Existing ``wal-<p>.ndjson`` segments keyed by partition."""
        found: dict[int, Path] = {}
        for path in Path(directory).glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}"):
            stem = path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
            if stem.isdigit():
                found[int(stem)] = path
        return found

    @classmethod
    def has_segments(cls, directory: str | Path) -> bool:
        """True when ``directory`` holds multi-writer WAL segments."""
        return bool(cls.segment_paths(directory))

    @classmethod
    def has_state(cls, directory: str | Path) -> bool:
        """True when ``directory`` holds resumable multi-writer state."""
        directory = Path(directory)
        if cls.has_segments(directory):
            return True
        return any(directory.glob(f"snapshot-*{SNAPSHOT_SUFFIX}"))

    @property
    def epoch(self) -> int:
        """The session-global fence epoch new records are stamped with."""
        return self._epoch

    def segment(self, partition: int) -> DurableStore:
        """The per-partition segment store (after :meth:`discover`)."""
        return self._segments[partition]

    def snapshot_paths(self) -> list[Path]:
        """Snapshot files, newest (highest applied count) first."""
        return sorted(
            self.directory.glob(f"snapshot-*{SNAPSHOT_SUFFIX}"), reverse=True
        )

    # -- lifecycle -------------------------------------------------------- #

    def discover(self) -> None:
        """Instantiate segment stores: one per writer plus any on disk.

        Segments beyond the current writer count (a resume with fewer
        writers) are still opened — their history participates in the
        merge and their sizes in snapshot meta — they just never receive
        new appends.  Idempotent.
        """
        partitions = set(range(self.writers))
        partitions.update(self.segment_paths(self.directory))
        for partition in sorted(partitions):
            if partition not in self._segments:
                self._segments[partition] = DurableStore(
                    self.directory,
                    fsync=self.fsync,
                    wal_name=segment_name(partition),
                )

    def open(self, resume: bool = False) -> None:
        """Create the directory and open every segment for appending.

        ``resume=False`` refuses a directory already holding state (either
        layout) — ``open_session`` resumes it instead.  Each segment opens
        in resume mode regardless: a segment's own crash tail was already
        located by the merge scan (or a fresh segment simply writes its
        header), and a *new* partition joining an old directory must not
        trip over the single-writer freshness check when snapshots exist.
        """
        if self._opened:
            return
        if not resume and (
            self.has_state(self.directory)
            or DurableStore.has_state(self.directory)
        ):
            raise DurableStateError(
                f"durable directory {self.directory} already contains state; "
                "use repro.serve.open_session (which resumes existing state) "
                "instead of starting a fresh session over it"
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self.discover()
        for partition in sorted(self._segments):
            self._segments[partition].open(resume=True)
        self._opened = True

    def close(self) -> None:
        """Close every segment handle (idempotent)."""
        for store in self._segments.values():
            store.close()
        self._opened = False

    # -- appends (called from the session's I/O thread pool) -------------- #

    def append_batch(
        self,
        partition: int,
        first_seq: int,
        last_seq: int,
        events: list[tuple[int, int, int]],
        epoch: int,
    ) -> None:
        """Append one batch to ``partition``'s segment, stamped ``epoch``.

        Runs on the session's I/O pool so fsyncs across partitions
        overlap; safe because each partition's appends are serialized by
        its single applier task and segments never share a file.
        """
        self._segments[partition].append_batch(
            first_seq, last_seq, events, epoch=epoch
        )

    # -- snapshots --------------------------------------------------------- #

    def seed_epoch(self, epoch: int) -> None:
        """Set the fence epoch restored from a snapshot (resume path)."""
        self._epoch = int(epoch)

    def record_applied(self) -> bool:
        """Count one applied batch; True when a fenced snapshot is due."""
        self._total_batches += 1
        self._since_snapshot += 1
        return (
            self.snapshot_every is not None
            and self._since_snapshot >= self.snapshot_every
        )

    def note_resumed(self, total_batches: int, replayed_batches: int) -> None:
        """Seed the counters after a resume (cadence continues from delta)."""
        self._total_batches = total_batches
        self._since_snapshot = replayed_batches

    def write_snapshot(
        self,
        evaluator: IncrementalEvaluator,
        applied_map: dict[int, int],
        applied_events: int,
    ) -> Path:
        """Checkpoint the evaluator under the fence; bumps the epoch first.

        The caller (the session's fence) guarantees no batch is in flight:
        every record appended so far has been applied, so after the bump
        the snapshot covers exactly the records with epoch < the new
        epoch — the fencing invariant the resume merge relies on.  Meta
        carries the per-partition applied sequences and segment byte
        offsets so resume can seek each segment in O(delta).
        """
        self._epoch += 1
        meta, arrays = evaluator.export_state()
        meta["applied_seq"] = int(applied_events)
        meta["applied_batches"] = self._total_batches
        meta["multiwriter"] = {
            "epoch": self._epoch,
            "writers": self.writers,
            "partitions": {
                str(p): int(seq) for p, seq in sorted(applied_map.items())
            },
            "wal_bytes": {
                str(p): store.wal_bytes
                for p, store in sorted(self._segments.items())
            },
        }
        path = (
            self.directory
            / f"snapshot-{int(applied_events):012d}{SNAPSHOT_SUFFIX}"
        )
        write_snapshot_file(path, meta, arrays)
        self._since_snapshot = 0
        self.snapshots_written += 1
        for stale in self.snapshot_paths()[self.keep_snapshots :]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        return path

    def finalize(
        self,
        evaluator: IncrementalEvaluator,
        applied_map: dict[int, int],
        applied_events: int,
    ) -> None:
        """Clean-shutdown hook: final snapshot (when periodic ones are on).

        The session only calls this after draining every queue, so the
        no-in-flight precondition of :meth:`write_snapshot` holds without
        a fence.
        """
        if self.snapshot_every is not None and self._since_snapshot > 0:
            self.write_snapshot(evaluator, applied_map, applied_events)

    def load_snapshot_state(self) -> tuple[dict, dict[str, np.ndarray]] | None:
        """The newest snapshot that validates, or None (pure segment replay)."""
        from repro.serve.durable import load_snapshot_file

        for path in self.snapshot_paths():
            try:
                return load_snapshot_file(path)
            except (DurableStateError, OSError):
                continue
        return None

    # -- resume: the k-way segment merge ----------------------------------- #

    def read_merged(
        self,
        applied_map: dict[int, int],
        wal_bytes_map: dict[int, int],
    ) -> list[tuple[int, int, int, list[tuple[int, int, int]], int]]:
        """Merge every segment's uncovered records into one replay order.

        Per segment (independently): the corrupt tail is located and
        discarded, records the snapshot covers (``last <= applied``) are
        skipped, a record straddling the boundary is sliced to its
        uncovered suffix, and a per-partition sequence *gap* raises —
        that is data loss inside a segment, not crash residue.  The
        surviving deltas are k-way merged by ``(epoch, partition_seq,
        partition)``: per-partition order (the one the determinism
        contract requires) is preserved because each segment's records are
        non-decreasing in epoch and strictly increasing in sequence; the
        cross-partition tie-break only makes the merge reproducible.

        Returns ``(epoch, first, last, events, partition)`` tuples and
        leaves :attr:`epoch` at the maximum epoch seen, so new appends
        sort after everything replayed.
        """
        streams: list[list[tuple[int, int, int, list, int]]] = []
        self.discarded_tail_records = 0
        max_epoch = self._epoch
        for partition in sorted(self._segments):
            store = self._segments[partition]
            applied = applied_map.get(partition, 0)
            records = store.read_batches_with_epoch(
                wal_bytes_map.get(partition, 0)
            )
            self.discarded_tail_records += store.discarded_tail_records
            pending: list[tuple[int, int, int, list, int]] = []
            for epoch, first, last, events in records:
                if last <= applied:
                    continue  # covered by the snapshot (or a duplicate)
                if first > applied + 1:
                    raise DurableStateError(
                        f"sequence gap in {store.wal_path}: restored state "
                        f"ends at {applied} but the next surviving record "
                        f"starts at {first}"
                    )
                if first <= applied:
                    events = events[applied - first + 1 :]
                    first = applied + 1
                pending.append((epoch, first, last, events, partition))
                applied = last
                max_epoch = max(max_epoch, epoch)
            streams.append(pending)
        self._epoch = max_epoch
        return list(
            heapq.merge(*streams, key=lambda r: (r[0], r[1], r[4]))
        )


# --------------------------------------------------------------------------- #
# The multi-writer session
# --------------------------------------------------------------------------- #


class MultiWriterSession:
    """N-partition ingestion session behind the same surface as
    :class:`~repro.serve.session.StreamSession`.

    Each partition owns a bounded queue and an applier task; ``submit``
    routes by :func:`partition_for`, so per-worker order is preserved by
    construction while partitions make progress independently.  WAL
    appends run on a small thread pool (segment fsyncs overlap across
    partitions); ``apply_batch`` calls interleave under one writer lock —
    safe in any completion order because events for different workers
    commute and the dependency ledger's invalidation is order-free.
    Readers (``evaluate_worker`` / ``evaluate_all`` / ``spammer_scores``
    / ``snapshot``) keep the single-writer lock discipline and
    snapshot-consistency semantics.

    Built by :func:`repro.serve.open_session` from a
    :class:`~repro.serve.config.SessionConfig` with ``writers > 1`` (or
    with existing multi-writer state on disk); not constructed directly.
    """

    def __init__(
        self,
        evaluator: IncrementalEvaluator | None = None,
        *,
        config: SessionConfig,
        _store: MultiWriterStore | None = None,
    ) -> None:
        self._config = config
        self._writers = config.resolved_writers()
        if evaluator is None:
            evaluator = IncrementalEvaluator(
                n_workers=3,
                n_tasks=1,
                confidence=config.resolved_confidence,
                optimize_weights=config.resolved_optimize_weights,
                backend=config.resolved_backend,
                shards=config.shards,
            )
        self._evaluator = evaluator
        self._store = _store
        self._auto_extend = config.auto_extend
        self._lock = asyncio.Lock()
        self._applied = asyncio.Condition()
        self._queues: dict[int, ResponseQueue] = {
            partition: ResponseQueue(
                maxsize=config.maxsize, max_batch=config.max_batch
            )
            for partition in range(self._writers)
        }
        #: Per-partition sequence high-water marks (submission / apply).
        self._submitted_map: dict[int, int] = dict.fromkeys(self._queues, 0)
        self._applied_map: dict[int, int] = dict.fromkeys(self._queues, 0)
        self._submitted_total = 0
        self._applied_total = 0
        self._batches: list[BatchRecord] = []
        self._appliers: list[asyncio.Task] = []
        self._error: BaseException | None = None
        self._io_pool: ThreadPoolExecutor | None = None
        # The snapshot fence: gate open = appliers may enter the
        # append+apply critical section; _in_flight counts batches inside
        # it (taken off a queue, not yet fully applied).
        self._gate = asyncio.Event()
        self._gate.set()
        self._in_flight = 0
        self._fencing = False

    # -- construction (via open_session) ---------------------------------- #

    @classmethod
    def open(cls, config: SessionConfig) -> "MultiWriterSession":
        """Fresh or resumed multi-writer session for ``config``."""
        if config.durable is None:
            return cls(config=config)
        store = MultiWriterStore(
            config.durable,
            writers=config.resolved_writers(),
            snapshot_every=config.snapshot_every,
            fsync=config.fsync,
        )
        directory = Path(config.durable)
        if MultiWriterStore.has_state(directory):
            return cls._resume(config, store)
        if DurableStore.has_state(directory):
            raise DurableStateError(
                f"durable directory {directory} holds single-writer state "
                f"({WAL_NAME}); resume it with writers=1 — multi-writer "
                "segments cannot continue a single-writer history"
            )
        return cls(config=config, _store=store)

    @classmethod
    def _resume(
        cls, config: SessionConfig, store: MultiWriterStore
    ) -> "MultiWriterSession":
        """Snapshot restore + k-way segment merge; O(delta) per segment."""
        loaded = store.load_snapshot_state()
        applied_map: dict[int, int] = {}
        wal_bytes_map: dict[int, int] = {}
        applied_events = 0
        applied_batches = 0
        if loaded is not None:
            meta, arrays = loaded
            evaluator = IncrementalEvaluator.from_state(
                meta,
                arrays,
                confidence=config.confidence,
                optimize_weights=config.optimize_weights,
                backend=config.backend,
                shards=config.shards,
            )
            fences = meta.get("multiwriter") or {}
            applied_map = {
                int(p): int(seq)
                for p, seq in (fences.get("partitions") or {}).items()
            }
            wal_bytes_map = {
                int(p): int(offset)
                for p, offset in (fences.get("wal_bytes") or {}).items()
            }
            applied_events = int(meta.get("applied_seq", 0))
            applied_batches = int(meta.get("applied_batches", 0))
            store.seed_epoch(int(fences.get("epoch", 0)))
        else:
            evaluator = IncrementalEvaluator(
                n_workers=3,
                n_tasks=1,
                confidence=config.resolved_confidence,
                optimize_weights=config.resolved_optimize_weights,
                backend=config.resolved_backend,
                shards=config.shards,
            )
        # Open first (crash tails are truncated per segment, fresh
        # partitions write their headers), then merge-replay the deltas.
        store.open(resume=True)
        replayed = 0
        for _, _, last, events, partition in store.read_merged(
            applied_map, wal_bytes_map
        ):
            evaluator.apply_batch(events, auto_extend=True)
            applied_map[partition] = last
            applied_events += len(events)
            replayed += 1
        store.note_resumed(
            total_batches=applied_batches + replayed,
            replayed_batches=replayed,
        )
        session = cls(evaluator, config=config, _store=store)
        for partition in range(session._writers):
            base = applied_map.get(partition, 0)
            session._queues[partition] = ResponseQueue(
                maxsize=config.maxsize,
                max_batch=config.max_batch,
                base_seq=base,
            )
            session._submitted_map[partition] = base
        # Carry every partition's high-water mark (including retired
        # partitions beyond the current writer count) into future
        # snapshots, so later resumes skip their covered records.
        session._applied_map = dict(applied_map)
        for partition in range(session._writers):
            session._applied_map.setdefault(partition, 0)
        session._submitted_total = applied_events
        session._applied_total = applied_events
        return session

    # -- lifecycle --------------------------------------------------------- #

    async def __aenter__(self) -> "MultiWriterSession":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # Mirror StreamSession: drain and stop without masking the
            # propagating exception; no final snapshot on a failing path.
            await self._drain_and_stop()
            self._shutdown_io_pool()
            if self._store is not None:
                self._store.close()
            return
        await self.close()

    def start(self) -> None:
        """Start one applier task per partition (idempotent)."""
        if self._appliers:
            return
        if self._store is not None:
            # No-op for a store _resume() already opened; a fresh open
            # refuses a directory with existing state.
            self._store.open(resume=False)
            self._io_pool = ThreadPoolExecutor(
                max_workers=self._writers, thread_name_prefix="repro-wal"
            )
        loop = asyncio.get_running_loop()
        for partition, queue in self._queues.items():
            self._appliers.append(
                loop.create_task(self._run(partition, queue))
            )

    async def close(self) -> None:
        """Drain every partition, then stop; final snapshot on clean close."""
        await self._drain_and_stop()
        self._shutdown_io_pool()
        if self._store is not None:
            if self._error is None:
                self._store.finalize(
                    self._evaluator, self._applied_map, self._applied_total
                )
            self._store.close()
        self._raise_if_failed()

    async def abort(self) -> None:
        """Stop immediately without draining — a process-internal "crash".

        Cancels every applier mid-flight; WAL appends already handed to
        the I/O pool still complete (the pool is drained before the
        segment handles close), exactly as a SIGKILL leaves fsynced
        appends on disk while un-appended batches vanish.
        """
        for task in self._appliers:
            task.cancel()
        for task in self._appliers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._appliers = []
        self._shutdown_io_pool()
        if self._store is not None:
            self._store.close()

    async def _drain_and_stop(self) -> None:
        for queue in self._queues.values():
            await queue.close()
        for task in self._appliers:
            await task
        self._appliers = []

    def _shutdown_io_pool(self) -> None:
        if self._io_pool is not None:
            # wait=True: never close a segment under an in-flight append.
            self._io_pool.shutdown(wait=True)
            self._io_pool = None

    # -- producer side ------------------------------------------------------ #

    @property
    def config(self) -> SessionConfig:
        """The validated configuration this session was built from."""
        return self._config

    @property
    def evaluator(self) -> IncrementalEvaluator:
        """The shared evaluator (take the session lock for direct reads)."""
        return self._evaluator

    @property
    def durable(self) -> MultiWriterStore | None:
        """The persistence layer, or None for an in-memory session."""
        return self._store

    @property
    def writers(self) -> int:
        """The resolved ingest partition count."""
        return self._writers

    @property
    def submitted_events(self) -> int:
        return self._submitted_total

    @property
    def applied_events(self) -> int:
        return self._applied_total

    @property
    def pending_events(self) -> int:
        """Events submitted but not yet applied (clamped at zero)."""
        return max(0, self._submitted_total - self._applied_total)

    @property
    def applied_batches(self) -> list[BatchRecord]:
        """Applied-batch records in completion order, tagged by partition."""
        return list(self._batches)

    @property
    def applied_map(self) -> dict[int, int]:
        """Per-partition applied sequence high-water marks (a copy)."""
        return dict(self._applied_map)

    async def submit(self, worker: int, task: int, label: int) -> int:
        """Route one response to its partition; returns the submit count.

        Blocks while that partition's queue is full (backpressure).
        Unlike the single-writer session the return value is the *total*
        number of events submitted, not a global sequence — sequence
        numbers are per partition here.
        """
        self._raise_if_failed()
        if not self._appliers:
            raise ConfigurationError(
                "the session is not running; use 'async with' or call "
                "start() first"
            )
        partition = partition_for(int(worker), self._writers)
        await self._queues[partition].put(
            (int(worker), int(task), int(label))
        )
        # Post-put, yield-free increments: same lost-update discipline as
        # the single-writer session.
        self._submitted_map[partition] += 1
        self._submitted_total += 1
        return self._submitted_total

    async def submit_many(self, records) -> int:
        """Submit a collection (sync or async iterable); returns the count."""
        count = 0
        if hasattr(records, "__aiter__"):
            async for record in records:
                await self.submit(*record)
                count += 1
        else:
            for record in records:
                await self.submit(*record)
                count += 1
        return count

    async def flush(self) -> int:
        """Wait until everything submitted so far is applied, everywhere.

        Per-partition targets are captured up front, so progress on one
        partition cannot satisfy another's backlog.  Returns the total
        number of applied events; raises the first applier error.
        """
        targets = dict(self._submitted_map)
        async with self._applied:
            await self._applied.wait_for(
                lambda: self._error is not None
                or all(
                    self._applied_map.get(partition, 0) >= seq
                    for partition, seq in targets.items()
                )
            )
        self._raise_if_failed()
        return self._applied_total

    # -- reader side (same snapshot-consistency discipline as single-writer) #

    async def evaluate_worker(self, worker: int) -> WorkerErrorEstimate:
        """Estimate for one worker at the last applied batch boundary."""
        cached = self._evaluator.cached_estimate(worker)
        if cached is not None:
            return cached
        async with self._lock:
            return self._evaluator.estimate(worker)

    async def evaluate_all(self) -> dict[int, WorkerErrorEstimate]:
        """Estimates for every worker with data, at the last batch boundary."""
        if not self._evaluator.needs_recompute:
            return self._evaluator.estimate_all()
        async with self._lock:
            return self._evaluator.estimate_all()

    async def spammer_scores(
        self, threshold: float = DEFAULT_SPAMMER_THRESHOLD
    ) -> dict[int, float | None]:
        """Majority-disagreement spammer proxies at the last batch boundary."""
        async with self._lock:
            return _majority_rates(self._evaluator)

    async def snapshot(self) -> SessionSnapshot:
        """Deep-copied consistent state at the last applied batch boundary."""
        async with self._lock:
            return SessionSnapshot(
                matrix=self._evaluator.matrix.copy(),
                estimates=self._evaluator.estimate_all(),
                applied_events=self._applied_total,
                applied_batches=len(self._batches),
            )

    # -- appliers + the snapshot fence -------------------------------------- #

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise self._error

    async def _run(self, partition: int, queue: ResponseQueue) -> None:
        while True:
            result = await queue.get_batch_with_seq()
            if result is None:
                return
            first_seq, last_seq, batch = result
            # The fence gate: closed while a snapshot drains in-flight
            # batches to a common epoch.  Waiting *before* entering the
            # critical section means a parked batch is not in flight.
            await self._gate.wait()
            self._in_flight += 1
            error: BaseException | None = None
            try:
                if self._store is not None:
                    # WAL first (fsynced on the I/O pool, so segment
                    # fsyncs overlap across partitions), stamped with the
                    # epoch read before the append — the fence only bumps
                    # it once in-flight batches like this one drained.
                    epoch = self._store.epoch
                    await asyncio.get_running_loop().run_in_executor(
                        self._io_pool,
                        self._store.append_batch,
                        partition,
                        first_seq,
                        last_seq,
                        batch,
                        epoch,
                    )
                async with self._lock:
                    stats = self._evaluator.apply_batch(
                        batch, auto_extend=self._auto_extend
                    )
                self._applied_map[partition] = last_seq
                self._applied_total += len(batch)
                self._batches.append(
                    BatchRecord(
                        index=len(self._batches),
                        first_seq=first_seq,
                        last_seq=last_seq,
                        stats=stats,
                        partition=partition,
                    )
                )
            except BaseException as caught:  # surfaced at submit()/flush()
                error = caught
            finally:
                self._in_flight -= 1
            if error is not None:
                self._error = error
                async with self._applied:
                    self._applied.notify_all()
                # Keep draining this partition's queue so parked
                # producers wake (their next submit() raises) and
                # close()'s marker always lands.
                while await queue.get_batch() is not None:
                    pass
                return
            snapshot_due = False
            if self._store is not None:
                snapshot_due = self._store.record_applied()
            if snapshot_due and not self._fencing:
                await self._fence_and_snapshot()
            async with self._applied:
                self._applied.notify_all()

    async def _fence_and_snapshot(self) -> None:
        """Drain all partitions to a common epoch, then checkpoint.

        Closes the gate (no applier may *start* an append+apply), waits
        until every in-flight batch has been appended and applied, then
        writes the snapshot — which bumps the epoch, so the snapshot
        covers exactly the records with epoch below the new value and
        never splits a partition's batch.  The gate reopens even if the
        snapshot write fails (the error fails the session via the caller).
        """
        self._fencing = True
        self._gate.clear()
        try:
            async with self._applied:
                await self._applied.wait_for(lambda: self._in_flight == 0)
            self._store.write_snapshot(
                self._evaluator, self._applied_map, self._applied_total
            )
        finally:
            self._fencing = False
            self._gate.set()
