"""Streaming ingestion session over an :class:`IncrementalEvaluator`.

:class:`StreamSession` is the asyncio layer the ROADMAP's async-ingestion
item asked for: a single writer task drains the bounded
:class:`~repro.serve.queue.ResponseQueue` into micro-batches and applies
each under the session's writer lock via
:meth:`~repro.core.incremental.IncrementalEvaluator.apply_batch`, while
concurrent readers (``evaluate_worker`` / ``evaluate_all`` /
``spammer_scores`` / ``snapshot``) observe a *whole number of applied
batches* — never a torn batch.  Readers that must recompute take the same
writer lock; reads the dependency ledger proves still current are served
straight from the cache in one synchronous event-loop step, so they never
queue behind ingestion.

Determinism contract (locked by the differential suite's ``streamed``
column)
-----------------------------------------------------------------------

* **Ordering** — events are applied in submission order: ``submit`` is
  FIFO into the queue, batches are drained by one applier task, and
  :meth:`IncrementalEvaluator.apply_batch` replays each batch in order.
* **Batch boundaries are invisible in results** — however the stream is
  chopped into micro-batches (queue timing, ``max_batch``, explicit
  ``flush`` calls), the estimates served after the stream equal a
  from-scratch batch build over the accumulated responses, bit for bit,
  on every backend.  Batching changes *when* bookkeeping is paid, never
  what is computed.
* **Snapshot semantics** — a read between batches serves the state at the
  last applied batch boundary: estimates over exactly the responses whose
  batches have been applied, with cached intervals reused unless a
  statistic they depend on changed (the evaluator's dependency-tracked
  invalidation).  ``await flush()`` before a read gives read-your-writes.

Unseen worker/task ids grow the evaluator through the delta extension path
(no backend rebuild) once per batch, so a live stream never needs
pre-declared dimensions.

Construction — :class:`~repro.serve.config.SessionConfig` is canonical
----------------------------------------------------------------------

The canonical way to build a session is a validated, frozen
:class:`~repro.serve.config.SessionConfig` handed to
:func:`repro.serve.open_session`, which resolves create-vs-resume and the
single- vs multi-writer dispatch in one place.  The legacy keyword
arguments on ``StreamSession.__init__`` and the ``resume`` /
``open_durable`` classmethods keep working as thin shims that build the
equivalent config and emit a :class:`DeprecationWarning`.

Durability (``SessionConfig(durable=...)``)
-------------------------------------------

A session given a durable directory (or a
:class:`~repro.serve.durable.DurableStore`) appends every micro-batch to a
write-ahead log — fsynced *before* ``apply_batch`` — and, when
``snapshot_every`` is set, periodically checkpoints the full evaluator
state with atomic temp-file + rename snapshots.  After a crash,
``open_session`` on the same directory restores the newest valid snapshot,
replays only the WAL records beyond it (idempotently — duplicated or
partially-covered records cannot double-apply) and reopens the log,
restarting in O(delta).  The resumed session serves estimates bit-identical
to a session that was never interrupted; the contract and on-disk formats
are documented in :mod:`repro.serve.durable` and the capability matrix in
:mod:`repro.core.agreement`.  Multi-writer ingestion (N partitioned
queues, per-partition WAL segments, fenced snapshots) lives in
:mod:`repro.serve.multiwriter` and reuses this module's applier discipline
per partition.
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterable, Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.core.incremental import BatchApplyStats, IncrementalEvaluator
from repro.core.spammer_filter import DEFAULT_SPAMMER_THRESHOLD
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import (
    ConfigurationError,
    DurableStateError,
    InsufficientDataError,
)
from repro.serve.config import SessionConfig, _warn_legacy
from repro.serve.durable import DurableStore
from repro.serve.queue import ResponseQueue
from repro.types import WorkerErrorEstimate

__all__ = ["BatchRecord", "SessionSnapshot", "StreamSession", "replay_stream"]

#: The keyword knobs the pre-``SessionConfig`` constructor accepted; they
#: map one-to-one onto ``SessionConfig`` fields.
_LEGACY_INIT_KWARGS = frozenset(
    {
        "maxsize",
        "max_batch",
        "auto_extend",
        "confidence",
        "backend",
        "shards",
        "durable",
        "snapshot_every",
        "fsync",
    }
)


def _majority_rates(
    evaluator: IncrementalEvaluator,
) -> dict[int, float | None]:
    """Per-worker majority-disagreement rates (None = not scorable yet).

    Shared by the single- and multi-writer sessions' ``spammer_scores``;
    callers hold the session writer lock.
    """
    matrix = evaluator.matrix
    backend = evaluator._backend
    if backend is not None:
        rates = backend.majority_disagreement_rates()
    else:
        rates = []
        for worker in range(matrix.n_workers):
            try:
                rates.append(matrix.disagreement_with_majority(worker))
            except InsufficientDataError:
                rates.append(None)
    return dict(enumerate(rates))


def replay_stream(
    events: Iterable[tuple[int, int, int]],
    *,
    confidence: float = 0.95,
    backend: str = "auto",
    max_batch: int = 256,
    maxsize: int = 4096,
    shards: int | str = 1,
) -> dict[int, WorkerErrorEstimate]:
    """Drive a finite event stream through a session, synchronously.

    Spins up a fresh :class:`StreamSession`, submits every
    ``(worker, task, label)`` event in order — later events for the same
    ``(worker, task)`` are label *revisions* — flushes, and returns the
    final ``evaluate_all`` estimates.  This is the revision-storm driver
    the scenario gauntlet uses as its ``"streamed"`` estimator path: the
    estimates come from the full asyncio queue -> micro-batch ->
    ``apply_batch`` pipeline and are bit-identical to a batch build over
    the settled matrix (the streaming determinism contract in
    :mod:`repro.core.agreement`).

    Must be called from synchronous code (it owns its own event loop).
    """

    async def run() -> dict[int, WorkerErrorEstimate]:
        async with StreamSession(
            config=SessionConfig(
                confidence=confidence,
                backend=backend,
                max_batch=max_batch,
                maxsize=maxsize,
                shards=shards,
            )
        ) as session:
            await session.submit_many(events)
            await session.flush()
            return await session.evaluate_all()

    return asyncio.run(run())


@dataclass(frozen=True)
class BatchRecord:
    """One applied micro-batch: position in the stream plus its effects.

    ``partition`` is the ingest partition the batch came from — always 0
    for the single-writer :class:`StreamSession`; multi-writer sessions
    record the consistent-hash partition, and ``first_seq``/``last_seq``
    are then *per-partition* sequence numbers.
    """

    index: int
    first_seq: int
    last_seq: int
    stats: BatchApplyStats
    partition: int = 0


@dataclass(frozen=True)
class SessionSnapshot:
    """A consistent view taken at an applied-batch boundary."""

    matrix: ResponseMatrix
    estimates: dict[int, WorkerErrorEstimate]
    applied_events: int
    applied_batches: int


class StreamSession:
    """Async front-end that feeds a response stream into the evaluator.

    The canonical construction path is a
    :class:`~repro.serve.config.SessionConfig` through
    :func:`repro.serve.open_session` (which also resolves create-vs-resume
    for durable directories and dispatches to the multi-writer session for
    ``writers > 1``)::

        from repro.serve import SessionConfig, open_session

        async with open_session(SessionConfig(max_batch=64)) as session:
            await session.submit(worker, task, label)
            await session.flush()
            estimates = await session.evaluate_all()

    Parameters
    ----------
    evaluator:
        The incremental evaluator to feed; constructed from the config's
        estimator fields with small default dimensions when omitted (the
        stream grows it on demand).  The config's ``shards`` spec only
        applies to a default-constructed evaluator — configure an explicit
        one directly.
    config:
        The :class:`~repro.serve.config.SessionConfig` for this session.
        ``writers`` must resolve to 1 (multi-writer sessions are built by
        ``open_session``).
    **legacy:
        The pre-``SessionConfig`` keyword knobs (``maxsize`` /
        ``max_batch`` / ``auto_extend`` / ``confidence`` / ``backend`` /
        ``shards`` / ``durable`` / ``snapshot_every`` / ``fsync``).
        Deprecated: they are folded into an equivalent config (field names
        match one-to-one) with a :class:`DeprecationWarning`; ``durable``
        may still be a prepared :class:`~repro.serve.durable.DurableStore`.
        Mutually exclusive with ``config``.
    """

    def __init__(
        self,
        evaluator: IncrementalEvaluator | None = None,
        *,
        config: SessionConfig | None = None,
        _store: DurableStore | None = None,
        **legacy,
    ) -> None:
        store = _store
        if config is not None:
            if legacy:
                raise ConfigurationError(
                    "pass either config=SessionConfig(...) or the legacy "
                    "keyword arguments, not both"
                )
            if not isinstance(config, SessionConfig):
                raise ConfigurationError(
                    "config must be a repro.serve.SessionConfig, got "
                    f"{type(config).__name__}"
                )
        else:
            unknown = set(legacy) - _LEGACY_INIT_KWARGS
            if unknown:
                raise TypeError(
                    "StreamSession() got unexpected keyword arguments "
                    f"{sorted(unknown)}"
                )
            if legacy:
                _warn_legacy(
                    "constructing StreamSession from keyword arguments"
                )
            durable = legacy.pop("durable", None)
            if isinstance(durable, DurableStore):
                # A prepared store keeps its own cadence/fsync settings;
                # the config records where it lives.
                store = durable
                durable = durable.directory
            config = SessionConfig(durable=durable, **legacy)
        if config.resolved_writers() != 1:
            raise ConfigurationError(
                "StreamSession is single-writer; use repro.serve."
                f"open_session() for writers={config.writers!r}"
            )
        if evaluator is None:
            evaluator = IncrementalEvaluator(
                n_workers=3,
                n_tasks=1,
                confidence=config.resolved_confidence,
                optimize_weights=config.resolved_optimize_weights,
                backend=config.resolved_backend,
                shards=config.shards,
            )
        if store is None and config.durable is not None:
            store = DurableStore(
                config.durable,
                snapshot_every=config.snapshot_every,
                fsync=config.fsync,
            )
        self._config = config
        self._evaluator = evaluator
        self._queue = ResponseQueue(
            maxsize=config.maxsize, max_batch=config.max_batch
        )
        self._auto_extend = config.auto_extend
        self._durable = store
        self._lock = asyncio.Lock()
        self._applied = asyncio.Condition()
        self._submitted_seq = 0
        self._applied_seq = 0
        self._batches: list[BatchRecord] = []
        self._applier: asyncio.Task | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def __aenter__(self) -> "StreamSession":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # An exception is already propagating out of the block (often
            # the applier's own error, re-raised at submit()/flush()):
            # drain and stop without masking it with a second raise.  The
            # durable log is closed without a final snapshot — the WAL
            # already holds everything applied, and a snapshot taken on a
            # failing path could checkpoint state the caller considers bad.
            await self._drain_and_stop()
            if self._durable is not None:
                self._durable.close()
            return
        await self.close()

    def start(self) -> None:
        """Start the applier task (idempotent; ``async with`` does this)."""
        if self._applier is None:
            if self._durable is not None:
                # No-op for a store resume() already opened; a fresh open
                # refuses a directory with existing state.
                self._durable.open(resume=False)
            self._applier = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Drain and stop: apply everything submitted, then stop the applier.

        A clean close of a durable session writes a final snapshot when
        periodic snapshots are enabled (so the next resume replays nothing)
        and closes the log.  Raises the applier's error if ingestion failed
        (unless it was already surfaced by the exception leaving an
        ``async with`` block).
        """
        await self._drain_and_stop()
        if self._durable is not None:
            if self._error is None:
                self._durable.finalize(self._evaluator, self._applied_seq)
            self._durable.close()
        self._raise_if_failed()

    async def abort(self) -> None:
        """Stop immediately without draining — a process-internal "crash".

        Cancels the applier mid-flight and closes the log handle without a
        final snapshot, leaving the durable directory exactly as a SIGKILL
        would (modulo the OS page cache): acknowledged batches in the WAL,
        possibly a half-applied one.  The kill/resume fuzz suite uses this
        to exercise :meth:`resume` at arbitrary cut points in-process.
        """
        if self._applier is not None:
            self._applier.cancel()
            try:
                await self._applier
            except asyncio.CancelledError:
                pass
            self._applier = None
        if self._durable is not None:
            self._durable.close()

    async def _drain_and_stop(self) -> None:
        await self._queue.close()
        if self._applier is not None:
            await self._applier
            self._applier = None

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> SessionConfig:
        """The validated configuration this session was built from."""
        return self._config

    @property
    def evaluator(self) -> IncrementalEvaluator:
        """The wrapped evaluator (take the session lock for direct reads)."""
        return self._evaluator

    @property
    def durable(self) -> DurableStore | None:
        """The persistence layer, or None for an in-memory session."""
        return self._durable

    @property
    def submitted_events(self) -> int:
        return self._submitted_seq

    @property
    def applied_events(self) -> int:
        return self._applied_seq

    @property
    def pending_events(self) -> int:
        """Events submitted but not yet applied.

        Clamped at zero: between a parked ``put`` completing and its
        producer task resuming to count it, the applier may already have
        applied the event, making ``applied`` transiently exceed
        ``submitted``.
        """
        return max(0, self._submitted_seq - self._applied_seq)

    @property
    def applied_batches(self) -> list[BatchRecord]:
        """Per-batch application records (size, sequence range, stats)."""
        return list(self._batches)

    async def submit(self, worker: int, task: int, label: int) -> int:
        """Enqueue one response; returns its 1-based sequence number.

        Blocks while the queue is full (backpressure).  Application is
        asynchronous — ``await flush()`` to wait for visibility.
        """
        self._raise_if_failed()
        if self._applier is None:
            raise ConfigurationError(
                "the session is not running; use 'async with StreamSession()' "
                "or call start() first"
            )
        await self._queue.put((int(worker), int(task), int(label)))
        # Increment only after the (possibly parked) put succeeds, in one
        # yield-free step: concurrent producers that both read the counter
        # before awaiting would otherwise lose increments, letting flush()
        # return before everything submitted was applied.
        self._submitted_seq += 1
        return self._submitted_seq

    async def submit_many(
        self, records: Iterable[tuple[int, int, int]] | AsyncIterable
    ) -> int:
        """Submit a collection (sync or async iterable); returns the count."""
        count = 0
        if hasattr(records, "__aiter__"):
            async for record in records:  # type: ignore[union-attr]
                await self.submit(*record)
                count += 1
        else:
            for record in records:  # type: ignore[union-attr]
                await self.submit(*record)
                count += 1
        return count

    async def flush(self) -> int:
        """Wait until everything submitted so far is applied.

        Returns the number of applied events.  Raises the applier's error
        if ingestion failed.
        """
        target = self._submitted_seq
        async with self._applied:
            await self._applied.wait_for(
                lambda: self._applied_seq >= target or self._error is not None
            )
        self._raise_if_failed()
        return self._applied_seq

    # ------------------------------------------------------------------ #
    # Reader side (snapshot-consistent: whole batches only)
    # ------------------------------------------------------------------ #

    async def evaluate_worker(self, worker: int) -> WorkerErrorEstimate:
        """Estimate for one worker at the last applied batch boundary.

        When the dependency ledger proves the cached estimate current, it
        is returned without touching the writer lock: the check-and-return
        is a single synchronous step on the event loop (no await between
        them), so it cannot observe a torn batch — ``apply_batch`` runs
        synchronously under the lock and invalidates affected caches in the
        same step that changes the statistics.  Only a recompute serializes
        behind the writer.
        """
        cached = self._evaluator.cached_estimate(worker)
        if cached is not None:
            return cached
        async with self._lock:
            return self._evaluator.estimate(worker)

    async def evaluate_all(self) -> dict[int, WorkerErrorEstimate]:
        """Estimates for every worker with data, at the last batch boundary.

        Same lock discipline as :meth:`evaluate_worker`: if no worker needs
        a recompute, the cached estimates are assembled without the writer
        lock (single synchronous step — snapshot-consistent); otherwise the
        bulk recompute takes the lock.
        """
        if not self._evaluator.needs_recompute:
            return self._evaluator.estimate_all()
        async with self._lock:
            return self._evaluator.estimate_all()

    async def spammer_scores(
        self, threshold: float = DEFAULT_SPAMMER_THRESHOLD
    ) -> dict[int, float | None]:
        """Majority-disagreement spammer proxies at the last batch boundary.

        ``None`` marks workers that cannot be scored yet (no responses, or
        no task shared with anyone); scores above ``threshold`` flag
        near-spammers (Section III-E2's filter criterion).
        """
        async with self._lock:
            return _majority_rates(self._evaluator)

    async def snapshot(self) -> SessionSnapshot:
        """Deep-copied consistent state at the last applied batch boundary.

        The returned matrix and estimates cannot be mutated by later
        batches, which makes this the tool for auditing snapshot
        consistency (the test suite compares it against a from-scratch
        batch build over the copied matrix).
        """
        async with self._lock:
            return SessionSnapshot(
                matrix=self._evaluator.matrix.copy(),
                estimates=self._evaluator.estimate_all(),
                applied_events=self._applied_seq,
                applied_batches=len(self._batches),
            )

    # ------------------------------------------------------------------ #
    # Applier
    # ------------------------------------------------------------------ #

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise self._error

    async def _run(self) -> None:
        while True:
            result = await self._queue.get_batch_with_seq()
            if result is None:
                return
            first_seq, last_seq, batch = result
            try:
                if self._durable is not None:
                    # WAL first, fsynced: once apply_batch runs (and a
                    # flush() is acknowledged), the batch is on disk and a
                    # crash at any later point replays it.
                    self._durable.append_batch(first_seq, last_seq, batch)
                async with self._lock:
                    stats = self._evaluator.apply_batch(
                        batch, auto_extend=self._auto_extend
                    )
                self._applied_seq = last_seq
                self._batches.append(
                    BatchRecord(
                        index=len(self._batches),
                        first_seq=first_seq,
                        last_seq=last_seq,
                        stats=stats,
                    )
                )
                if self._durable is not None:
                    self._durable.record_applied(self._evaluator, last_seq)
            except BaseException as error:  # surfaced at submit()/flush()
                self._error = error
                async with self._applied:
                    self._applied.notify_all()
                # Keep draining (and discarding) so producers parked on the
                # full queue wake up — their next submit() raises the
                # stored error — and close()'s marker can always land
                # instead of deadlocking against a dead consumer.
                while await self._queue.get_batch() is not None:
                    pass
                return
            async with self._applied:
                self._applied.notify_all()

    # ------------------------------------------------------------------ #
    # Durable resume
    # ------------------------------------------------------------------ #

    @classmethod
    def resume(
        cls,
        directory: str | Path | DurableStore,
        *,
        confidence: float | None = None,
        backend: str | None = None,
        optimize_weights: bool | None = None,
        shards: int | str = 1,
        maxsize: int = 4096,
        max_batch: int = 256,
        auto_extend: bool = True,
        snapshot_every: int | None = None,
        fsync: bool = True,
    ) -> "StreamSession":
        """Rebuild a session from a durable directory in O(delta).

        Deprecated shim: build a :class:`~repro.serve.config.SessionConfig`
        and call :func:`repro.serve.open_session` instead (it resumes a
        directory that holds state).  The resume semantics are unchanged:
        newest valid snapshot, idempotent replay of the WAL delta, crash
        tail truncated, sequence numbering continued; ``confidence`` /
        ``backend`` / ``optimize_weights`` default to the persisted
        configuration and override it when passed.  Raises
        :class:`~repro.exceptions.DurableStateError` on a sequence *gap*
        between the restored state and the surviving log — data loss in
        the middle of the history, not crash residue.
        """
        _warn_legacy("StreamSession.resume()")
        store = directory if isinstance(directory, DurableStore) else None
        config = SessionConfig(
            confidence=confidence,
            backend=backend,
            optimize_weights=optimize_weights,
            shards=shards,
            maxsize=maxsize,
            max_batch=max_batch,
            auto_extend=auto_extend,
            durable=store.directory if store is not None else directory,
            snapshot_every=snapshot_every,
            fsync=fsync,
        )
        return _resume_session(config, store=store)

    @classmethod
    def open_durable(
        cls,
        directory: str | Path,
        *,
        confidence: float | None = None,
        backend: str | None = None,
        optimize_weights: bool | None = None,
        shards: int | str = 1,
        maxsize: int = 4096,
        max_batch: int = 256,
        auto_extend: bool = True,
        snapshot_every: int | None = None,
        fsync: bool = True,
    ) -> "StreamSession":
        """Resume ``directory`` when it holds state, else start fresh in it.

        Deprecated shim for :func:`repro.serve.open_session`, which is the
        create-or-resume front door now.
        """
        _warn_legacy("StreamSession.open_durable()")
        from repro.serve.config import open_session

        return open_session(
            SessionConfig(
                confidence=confidence,
                backend=backend,
                optimize_weights=optimize_weights,
                shards=shards,
                maxsize=maxsize,
                max_batch=max_batch,
                auto_extend=auto_extend,
                durable=directory,
                snapshot_every=snapshot_every,
                fsync=fsync,
            )
        )


def _resume_session(
    config: SessionConfig, store: DurableStore | None = None
) -> StreamSession:
    """Rebuild a single-writer session from ``config.durable`` in O(delta).

    The non-warning internals behind ``open_session`` (and the legacy
    ``StreamSession.resume`` shim): loads the newest snapshot that
    validates (checksum-failed or truncated ones fall back to older, then
    to pure WAL replay), replays the WAL records whose sequences exceed
    the snapshot — idempotently, so duplicated records or a second replay
    cannot double-apply — truncates any crash tail off the log and reopens
    it for append.  The returned session is not yet started; sequence
    numbering continues from the last applied event.
    """
    if store is None:
        if config.durable is None:
            raise ConfigurationError("resume requires a durable directory")
        store = DurableStore(
            config.durable,
            snapshot_every=config.snapshot_every,
            fsync=config.fsync,
        )
    loaded = store.load_snapshot_state()
    wal_start = 0
    if loaded is not None:
        meta, arrays = loaded
        evaluator = IncrementalEvaluator.from_state(
            meta,
            arrays,
            confidence=config.confidence,
            optimize_weights=config.optimize_weights,
            backend=config.backend,
            shards=config.shards,
        )
        applied = int(meta["applied_seq"])
        applied_batches = int(meta.get("applied_batches", 0))
        # Seek past the log prefix the snapshot covers; replay then
        # only parses the delta (the O(delta) half of resume).
        wal_start = int(meta.get("wal_bytes", 0))
    else:
        evaluator = IncrementalEvaluator(
            n_workers=3,
            n_tasks=1,
            confidence=config.resolved_confidence,
            optimize_weights=config.resolved_optimize_weights,
            backend=config.resolved_backend,
            shards=config.shards,
        )
        applied = 0
        applied_batches = 0
    replayed = 0
    for first, last, events in store.read_batches(wal_start):
        if last <= applied:
            continue  # already covered by the snapshot (or a duplicate)
        if first > applied + 1:
            raise DurableStateError(
                f"sequence gap in {store.wal_path}: restored state ends "
                f"at {applied} but the next surviving record starts at "
                f"{first}"
            )
        if first <= applied:
            events = events[applied - first + 1 :]
        evaluator.apply_batch(events, auto_extend=True)
        applied = last
        replayed += 1
    store.open(resume=True)
    store.note_resumed(
        total_batches=applied_batches + replayed, replayed_batches=replayed
    )
    session = StreamSession(evaluator, config=config, _store=store)
    session._queue = ResponseQueue(
        maxsize=config.maxsize, max_batch=config.max_batch, base_seq=applied
    )
    session._submitted_seq = applied
    session._applied_seq = applied
    return session
