"""Streaming ingestion session over an :class:`IncrementalEvaluator`.

:class:`StreamSession` is the asyncio layer the ROADMAP's async-ingestion
item asked for: a single writer task drains the bounded
:class:`~repro.serve.queue.ResponseQueue` into micro-batches and applies
each under the session's writer lock via
:meth:`~repro.core.incremental.IncrementalEvaluator.apply_batch`, while
concurrent readers (``evaluate_worker`` / ``evaluate_all`` /
``spammer_scores`` / ``snapshot``) take the same lock and therefore always
observe a *whole number of applied batches* — never a torn batch.

Determinism contract (locked by the differential suite's ``streamed``
column)
-----------------------------------------------------------------------

* **Ordering** — events are applied in submission order: ``submit`` is
  FIFO into the queue, batches are drained by one applier task, and
  :meth:`IncrementalEvaluator.apply_batch` replays each batch in order.
* **Batch boundaries are invisible in results** — however the stream is
  chopped into micro-batches (queue timing, ``max_batch``, explicit
  ``flush`` calls), the estimates served after the stream equal a
  from-scratch batch build over the accumulated responses, bit for bit,
  on every backend.  Batching changes *when* bookkeeping is paid, never
  what is computed.
* **Snapshot semantics** — a read between batches serves the state at the
  last applied batch boundary: estimates over exactly the responses whose
  batches have been applied, with cached intervals reused unless a
  statistic they depend on changed (the evaluator's dependency-tracked
  invalidation).  ``await flush()`` before a read gives read-your-writes.

Unseen worker/task ids grow the evaluator through the delta extension path
(no backend rebuild) once per batch, so a live stream never needs
pre-declared dimensions.
"""

from __future__ import annotations

import asyncio
from collections.abc import AsyncIterable, Iterable
from dataclasses import dataclass

from repro.core.incremental import BatchApplyStats, IncrementalEvaluator
from repro.core.spammer_filter import DEFAULT_SPAMMER_THRESHOLD
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.serve.queue import ResponseQueue
from repro.types import WorkerErrorEstimate

__all__ = ["BatchRecord", "SessionSnapshot", "StreamSession"]


@dataclass(frozen=True)
class BatchRecord:
    """One applied micro-batch: position in the stream plus its effects."""

    index: int
    first_seq: int
    last_seq: int
    stats: BatchApplyStats


@dataclass(frozen=True)
class SessionSnapshot:
    """A consistent view taken at an applied-batch boundary."""

    matrix: ResponseMatrix
    estimates: dict[int, WorkerErrorEstimate]
    applied_events: int
    applied_batches: int


class StreamSession:
    """Async front-end that feeds a response stream into the evaluator.

    Parameters
    ----------
    evaluator:
        The incremental evaluator to feed; constructed with small default
        dimensions when omitted (the stream grows it on demand).
    maxsize, max_batch:
        Queue bound (producer backpressure) and micro-batch cap — see
        :class:`~repro.serve.queue.ResponseQueue`.
    auto_extend:
        Grow the evaluator for unseen worker/task ids (default).  With
        ``False`` an out-of-range event fails the session (surfaced at the
        next ``submit``/``flush``).
    shards:
        Execution spec forwarded to the default evaluator's wrapped
        estimator (validated at construction; ignored when an explicit
        ``evaluator`` is passed — configure that evaluator directly).
        Incremental recomputes stay serial regardless — see
        :class:`~repro.core.incremental.IncrementalEvaluator` — so this is
        configuration passthrough, not a throughput lever for live
        streams.

    Use as an async context manager::

        async with StreamSession() as session:
            await session.submit(worker, task, label)
            await session.flush()
            estimates = await session.evaluate_all()
    """

    def __init__(
        self,
        evaluator: IncrementalEvaluator | None = None,
        *,
        maxsize: int = 4096,
        max_batch: int = 256,
        auto_extend: bool = True,
        confidence: float = 0.95,
        backend: str = "auto",
        shards: int | str = 1,
    ) -> None:
        if evaluator is None:
            evaluator = IncrementalEvaluator(
                n_workers=3,
                n_tasks=1,
                confidence=confidence,
                backend=backend,
                shards=shards,
            )
        self._evaluator = evaluator
        self._queue = ResponseQueue(maxsize=maxsize, max_batch=max_batch)
        self._auto_extend = auto_extend
        self._lock = asyncio.Lock()
        self._applied = asyncio.Condition()
        self._submitted_seq = 0
        self._applied_seq = 0
        self._batches: list[BatchRecord] = []
        self._applier: asyncio.Task | None = None
        self._error: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def __aenter__(self) -> "StreamSession":
        self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            # An exception is already propagating out of the block (often
            # the applier's own error, re-raised at submit()/flush()):
            # drain and stop without masking it with a second raise.
            await self._drain_and_stop()
            return
        await self.close()

    def start(self) -> None:
        """Start the applier task (idempotent; ``async with`` does this)."""
        if self._applier is None:
            self._applier = asyncio.get_running_loop().create_task(self._run())

    async def close(self) -> None:
        """Drain and stop: apply everything submitted, then stop the applier.

        Raises the applier's error if ingestion failed (unless it was
        already surfaced by the exception leaving an ``async with`` block).
        """
        await self._drain_and_stop()
        self._raise_if_failed()

    async def _drain_and_stop(self) -> None:
        await self._queue.close()
        if self._applier is not None:
            await self._applier
            self._applier = None

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #

    @property
    def evaluator(self) -> IncrementalEvaluator:
        """The wrapped evaluator (take the session lock for direct reads)."""
        return self._evaluator

    @property
    def submitted_events(self) -> int:
        return self._submitted_seq

    @property
    def applied_events(self) -> int:
        return self._applied_seq

    @property
    def pending_events(self) -> int:
        """Events submitted but not yet applied.

        Clamped at zero: between a parked ``put`` completing and its
        producer task resuming to count it, the applier may already have
        applied the event, making ``applied`` transiently exceed
        ``submitted``.
        """
        return max(0, self._submitted_seq - self._applied_seq)

    @property
    def applied_batches(self) -> list[BatchRecord]:
        """Per-batch application records (size, sequence range, stats)."""
        return list(self._batches)

    async def submit(self, worker: int, task: int, label: int) -> int:
        """Enqueue one response; returns its 1-based sequence number.

        Blocks while the queue is full (backpressure).  Application is
        asynchronous — ``await flush()`` to wait for visibility.
        """
        self._raise_if_failed()
        if self._applier is None:
            raise ConfigurationError(
                "the session is not running; use 'async with StreamSession()' "
                "or call start() first"
            )
        await self._queue.put((int(worker), int(task), int(label)))
        # Increment only after the (possibly parked) put succeeds, in one
        # yield-free step: concurrent producers that both read the counter
        # before awaiting would otherwise lose increments, letting flush()
        # return before everything submitted was applied.
        self._submitted_seq += 1
        return self._submitted_seq

    async def submit_many(
        self, records: Iterable[tuple[int, int, int]] | AsyncIterable
    ) -> int:
        """Submit a collection (sync or async iterable); returns the count."""
        count = 0
        if hasattr(records, "__aiter__"):
            async for record in records:  # type: ignore[union-attr]
                await self.submit(*record)
                count += 1
        else:
            for record in records:  # type: ignore[union-attr]
                await self.submit(*record)
                count += 1
        return count

    async def flush(self) -> int:
        """Wait until everything submitted so far is applied.

        Returns the number of applied events.  Raises the applier's error
        if ingestion failed.
        """
        target = self._submitted_seq
        async with self._applied:
            await self._applied.wait_for(
                lambda: self._applied_seq >= target or self._error is not None
            )
        self._raise_if_failed()
        return self._applied_seq

    # ------------------------------------------------------------------ #
    # Reader side (snapshot-consistent: whole batches only)
    # ------------------------------------------------------------------ #

    async def evaluate_worker(self, worker: int) -> WorkerErrorEstimate:
        """Estimate for one worker at the last applied batch boundary."""
        async with self._lock:
            return self._evaluator.estimate(worker)

    async def evaluate_all(self) -> dict[int, WorkerErrorEstimate]:
        """Estimates for every worker with data, at the last batch boundary."""
        async with self._lock:
            return self._evaluator.estimate_all()

    async def spammer_scores(
        self, threshold: float = DEFAULT_SPAMMER_THRESHOLD
    ) -> dict[int, float | None]:
        """Majority-disagreement spammer proxies at the last batch boundary.

        ``None`` marks workers that cannot be scored yet (no responses, or
        no task shared with anyone); scores above ``threshold`` flag
        near-spammers (Section III-E2's filter criterion).
        """
        async with self._lock:
            matrix = self._evaluator.matrix
            backend = self._evaluator._backend
            if backend is not None:
                rates = backend.majority_disagreement_rates()
            else:
                rates = []
                for worker in range(matrix.n_workers):
                    try:
                        rates.append(matrix.disagreement_with_majority(worker))
                    except InsufficientDataError:
                        rates.append(None)
            return dict(enumerate(rates))

    async def snapshot(self) -> SessionSnapshot:
        """Deep-copied consistent state at the last applied batch boundary.

        The returned matrix and estimates cannot be mutated by later
        batches, which makes this the tool for auditing snapshot
        consistency (the test suite compares it against a from-scratch
        batch build over the copied matrix).
        """
        async with self._lock:
            return SessionSnapshot(
                matrix=self._evaluator.matrix.copy(),
                estimates=self._evaluator.estimate_all(),
                applied_events=self._applied_seq,
                applied_batches=len(self._batches),
            )

    # ------------------------------------------------------------------ #
    # Applier
    # ------------------------------------------------------------------ #

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise self._error

    async def _run(self) -> None:
        while True:
            batch = await self._queue.get_batch()
            if batch is None:
                return
            try:
                async with self._lock:
                    stats = self._evaluator.apply_batch(
                        batch, auto_extend=self._auto_extend
                    )
                first_seq = self._applied_seq + 1
                self._applied_seq += len(batch)
                self._batches.append(
                    BatchRecord(
                        index=len(self._batches),
                        first_seq=first_seq,
                        last_seq=self._applied_seq,
                        stats=stats,
                    )
                )
            except BaseException as error:  # surfaced at submit()/flush()
                self._error = error
                async with self._applied:
                    self._applied.notify_all()
                # Keep draining (and discarding) so producers parked on the
                # full queue wake up — their next submit() raises the
                # stored error — and close()'s marker can always land
                # instead of deadlocking against a dead consumer.
                while await self._queue.get_batch() is not None:
                    pass
                return
            async with self._applied:
                self._applied.notify_all()
