"""Unified session configuration and the ``open_session`` front door.

Session construction used to sprawl across ~10 keyword knobs repeated on
``StreamSession.__init__``, ``StreamSession.resume`` and
``StreamSession.open_durable``, with the create-vs-resume decision left to
the caller.  :class:`SessionConfig` consolidates every knob into one frozen,
validated dataclass — including the multi-writer ``writers`` axis — and
:func:`open_session` is the single front door that turns a config into the
right session object:

* ``writers == 1`` — a :class:`~repro.serve.session.StreamSession`
  (resumed from ``durable`` when the directory holds single-writer state,
  fresh otherwise);
* ``writers > 1`` (or ``"auto"`` resolving above 1) — a
  :class:`~repro.serve.multiwriter.MultiWriterSession` with consistent-hash
  worker partitioning and per-partition WAL segments (resumed via the
  k-way segment merge when the directory holds multi-writer state).

The legacy keyword arguments and the ``resume``/``open_durable``
classmethods keep working as thin shims that build a :class:`SessionConfig`
and emit a :class:`DeprecationWarning`; field names are identical to the
old keywords, so migration is mechanical::

    from repro.serve import SessionConfig, open_session

    config = SessionConfig(durable="state/", snapshot_every=8, writers=3)
    async with open_session(config) as session:
        await session.submit(worker, task, label)
        await session.flush()
        estimates = await session.evaluate_all()

``None`` for ``confidence`` / ``backend`` / ``optimize_weights`` means
"the default for a fresh session, the persisted value on resume" — exactly
the override semantics the old ``resume`` keywords had.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import ConfigurationError, DurableStateError

__all__ = ["SessionConfig", "open_session"]

#: Default confidence level of a fresh session (the paper's headline level).
DEFAULT_CONFIDENCE = 0.95

#: ``writers="auto"`` never resolves above this many ingest partitions —
#: beyond a handful, per-partition queues add bookkeeping without adding
#: overlap (the WAL fsyncs are the only genuinely concurrent stage).
AUTO_WRITERS_CAP = 4


def _warn_legacy(what: str, *, stacklevel: int = 3) -> None:
    """Deprecation funnel for the pre-``SessionConfig`` construction paths."""
    warnings.warn(
        f"{what} is deprecated; build a repro.serve.SessionConfig and call "
        "repro.serve.open_session(config) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


@dataclass(frozen=True)
class SessionConfig:
    """Every streaming-session knob, validated once, in one place.

    Field names match the legacy keyword arguments one-to-one (so a legacy
    call site round-trips by passing the same names), plus the multi-writer
    ``writers`` axis introduced with :mod:`repro.serve.multiwriter`.

    Parameters
    ----------
    confidence, backend, optimize_weights:
        Estimator configuration.  ``None`` (the default) means "fresh
        default" for a new session and "persisted value" on resume;
        setting a value overrides the persisted configuration (a backend
        override rebuilds statistics from the restored matrix).
    shards:
        Execution spec for incremental recomputes (``1``, ``"auto"``,
        ``"thread:N"``, ``"process:N"`` — see :mod:`repro.core.parallel`).
    writers:
        Ingest partition count: ``1`` (the classic single-applier
        session), an integer ``> 1`` (that many consistent-hash
        partitions, each with its own queue, micro-batcher and WAL
        segment), or ``"auto"`` (one per CPU, capped at
        :data:`AUTO_WRITERS_CAP`).
    maxsize, max_batch:
        Per-queue bound (producer backpressure) and micro-batch cap.
    auto_extend:
        Grow the evaluator for unseen worker/task ids (default).
    durable:
        Directory to persist the stream into, or ``None`` for in-memory.
        :func:`open_session` resumes a directory that already holds state
        and starts fresh otherwise.
    snapshot_every, fsync:
        Snapshot cadence in applied batches (requires ``durable``;
        ``None`` = pure WAL) and whether WAL appends are fsynced before
        the apply.
    """

    confidence: float | None = None
    backend: str | None = None
    optimize_weights: bool | None = None
    shards: int | str = 1
    writers: int | str = 1
    maxsize: int = 4096
    max_batch: int = 256
    auto_extend: bool = True
    durable: str | Path | None = None
    snapshot_every: int | None = None
    fsync: bool = True

    def __post_init__(self) -> None:
        from repro.core.parallel import parse_shard_spec
        from repro.data.dense_backend import BACKEND_CHOICES

        if self.confidence is not None and not 0.0 < self.confidence < 1.0:
            raise ConfigurationError(
                f"confidence must lie in (0, 1), got {self.confidence}"
            )
        if self.backend is not None and self.backend not in BACKEND_CHOICES:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{sorted(BACKEND_CHOICES)}"
            )
        parse_shard_spec(self.shards)  # raises ConfigurationError when malformed
        if self.writers != "auto" and (
            not isinstance(self.writers, int)
            or isinstance(self.writers, bool)
            or self.writers < 1
        ):
            raise ConfigurationError(
                f"writers must be a positive integer or 'auto', got "
                f"{self.writers!r}"
            )
        if self.maxsize < 1:
            raise ConfigurationError(
                f"maxsize must be at least 1, got {self.maxsize}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be at least 1, got {self.max_batch}"
            )
        if self.snapshot_every is not None:
            if self.snapshot_every < 1:
                raise ConfigurationError(
                    f"snapshot_every must be positive or None, got "
                    f"{self.snapshot_every}"
                )
            if self.durable is None:
                raise ConfigurationError(
                    "snapshot_every requires a durable directory"
                )

    # -- resolution of the None-means-default fields --------------------- #

    @property
    def resolved_confidence(self) -> float:
        return DEFAULT_CONFIDENCE if self.confidence is None else self.confidence

    @property
    def resolved_backend(self) -> str:
        return "auto" if self.backend is None else self.backend

    @property
    def resolved_optimize_weights(self) -> bool:
        return True if self.optimize_weights is None else self.optimize_weights

    def resolved_writers(self) -> int:
        """The concrete ingest partition count (``"auto"`` resolved)."""
        if self.writers == "auto":
            return max(1, min(AUTO_WRITERS_CAP, os.cpu_count() or 1))
        return int(self.writers)

    def replace(self, **changes) -> "SessionConfig":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


def open_session(config: SessionConfig | None = None, **fields):
    """Build the right (unstarted) session for ``config`` — the front door.

    Handles create-vs-resume and the single- vs multi-writer dispatch in
    one place:

    * no ``durable`` — a fresh in-memory session;
    * ``durable`` holding multi-writer state (``wal-<p>.ndjson`` segments)
      — a :class:`~repro.serve.multiwriter.MultiWriterSession` resumed via
      the k-way segment merge, whatever ``writers`` says (the new count
      only governs where *new* events land);
    * ``durable`` holding single-writer state — a resumed
      :class:`~repro.serve.session.StreamSession` (``writers`` must be 1:
      multi-writer segments cannot continue a ``wal.ndjson`` history);
    * ``durable`` empty or unset — a fresh session of the requested shape.

    Accepts a prepared :class:`SessionConfig`, bare fields
    (``open_session(writers=3, durable=...)``), or both (fields override
    the config).  The returned session is not yet running: enter it with
    ``async with`` (or call ``start()`` under a running event loop).
    """
    if config is None:
        config = SessionConfig(**fields)
    elif not isinstance(config, SessionConfig):
        raise ConfigurationError(
            f"open_session expects a SessionConfig, got {type(config).__name__}"
        )
    elif fields:
        config = config.replace(**fields)

    from repro.serve.durable import DurableStore
    from repro.serve.multiwriter import MultiWriterSession, MultiWriterStore
    from repro.serve.session import StreamSession, _resume_session

    writers = config.resolved_writers()
    if config.durable is not None:
        directory = Path(config.durable)
        if MultiWriterStore.has_segments(directory):
            return MultiWriterSession.open(config)
        if DurableStore.has_state(directory):
            if writers > 1:
                raise DurableStateError(
                    f"durable directory {directory} holds single-writer state "
                    "(wal.ndjson); resume it with writers=1 — multi-writer "
                    "segments cannot continue a single-writer history"
                )
            return _resume_session(config)
    if writers > 1:
        return MultiWriterSession.open(config)
    return StreamSession(config=config)
