"""Worker-pool simulation: hiring and firing over rounds of tasks.

The simulation reproduces the paper's operational argument: a requester runs
rounds of tasks, evaluates the current workers after each round (with the
paper's intervals, or a point-estimate policy), fires the workers the policy
rejects, replaces them with fresh hires, and keeps going.  The figure of
merit is the average true error rate of the final pool and the number of
*good* workers wrongly fired along the way (the cost the introduction warns
about: firing good workers hurts the requester's reputation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.m_worker import MWorkerEstimator
from repro.simulation.binary import BinaryWorkerPopulation, sample_error_rates
from repro.workforce.policy import Decision, FiringPolicy

__all__ = ["PoolSimulationResult", "simulate_worker_pool"]


@dataclass
class PoolSimulationResult:
    """Outcome of a hire/fire simulation run.

    Attributes
    ----------
    final_error_rates:
        True error rates of the workers in the pool after the last round.
    fired_good_workers:
        Number of fired workers whose true error rate was at or below the
        policy threshold (unfair firings).
    fired_bad_workers:
        Number of fired workers whose true error rate exceeded the threshold.
    rounds_run:
        Number of evaluation rounds simulated.
    mean_final_error_rate:
        Average of ``final_error_rates``.
    history:
        Mean true error rate of the pool after each round.
    """

    final_error_rates: list[float]
    fired_good_workers: int
    fired_bad_workers: int
    rounds_run: int
    history: list[float] = field(default_factory=list)

    @property
    def mean_final_error_rate(self) -> float:
        """Average true error rate of the final pool."""
        return float(np.mean(self.final_error_rates))


def simulate_worker_pool(
    policy: FiringPolicy,
    rng: np.random.Generator,
    n_workers: int = 9,
    tasks_per_round: int = 60,
    n_rounds: int = 5,
    density: float = 0.8,
    confidence: float = 0.9,
    error_rate_palette: tuple[float, ...] = (0.05, 0.1, 0.2, 0.35, 0.45),
    good_threshold: float = 0.25,
) -> PoolSimulationResult:
    """Run a hire/fire loop and report the quality of the resulting pool.

    Parameters
    ----------
    policy:
        The retention policy under test.
    rng:
        Randomness source for worker quality, attempts and errors.
    n_workers:
        Pool size (kept constant: every fired worker is replaced).
    tasks_per_round:
        Number of fresh tasks per evaluation round.
    n_rounds:
        Number of evaluation rounds.
    density:
        Attempt probability per worker-task pair.
    confidence:
        Confidence level used when computing the intervals.
    error_rate_palette:
        Palette new hires draw their true error rate from (includes clearly
        bad workers so the policies have something to find).
    good_threshold:
        True error rate at or below which a fired worker counts as a wrongly
        fired good worker.
    """
    if n_rounds <= 0:
        raise ConfigurationError(f"n_rounds must be positive, got {n_rounds}")
    if n_workers < 3:
        raise ConfigurationError("the evaluation needs at least 3 workers in the pool")

    error_rates = sample_error_rates(n_workers, rng, palette=error_rate_palette)
    estimator = MWorkerEstimator(confidence=confidence)
    fired_good = 0
    fired_bad = 0
    history: list[float] = []

    for _ in range(n_rounds):
        population = BinaryWorkerPopulation(error_rates=error_rates)
        matrix = population.generate(tasks_per_round, rng, densities=density)
        estimates = estimator.evaluate_all(matrix)
        replacements = []
        for estimate in estimates:
            decision = policy.decide(estimate)
            if decision is Decision.FIRE:
                true_rate = float(error_rates[estimate.worker])
                if true_rate <= good_threshold:
                    fired_good += 1
                else:
                    fired_bad += 1
                replacements.append(estimate.worker)
        if replacements:
            new_rates = sample_error_rates(
                len(replacements), rng, palette=error_rate_palette
            )
            for slot, worker in enumerate(replacements):
                error_rates[worker] = new_rates[slot]
        history.append(float(np.mean(error_rates)))

    return PoolSimulationResult(
        final_error_rates=[float(rate) for rate in error_rates],
        fired_good_workers=fired_good,
        fired_bad_workers=fired_bad,
        rounds_run=n_rounds,
        history=history,
    )
