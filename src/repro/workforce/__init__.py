"""Worker-pool management driven by confidence intervals.

The paper's motivation for confidence intervals is operational: deciding
which workers to *fire* (replace) and which to retain, without firing good
workers who were merely unlucky.  This package provides the policy layer —
retention decisions driven by interval bounds versus point estimates — and a
worker-pool simulation that measures how quickly each policy converges to a
high-quality pool, reproducing the argument of the introduction and
conclusion.
"""

from repro.workforce.policy import (
    Decision,
    FiringPolicy,
    IntervalFiringPolicy,
    PointEstimateFiringPolicy,
)
from repro.workforce.pool import PoolSimulationResult, simulate_worker_pool

__all__ = [
    "Decision",
    "FiringPolicy",
    "IntervalFiringPolicy",
    "PointEstimateFiringPolicy",
    "PoolSimulationResult",
    "simulate_worker_pool",
]
