"""Retention policies: decide firing/retention from worker-quality estimates.

Two families are provided:

* :class:`PointEstimateFiringPolicy` fires a worker whenever the *point
  estimate* of their error rate exceeds the threshold — the behaviour one
  gets from estimators without confidence intervals (EM and friends).
* :class:`IntervalFiringPolicy` fires only when the interval shows, at the
  configured confidence, that the error rate exceeds the threshold (the
  interval's lower bound is above it), and can symmetrically "clear" workers
  whose upper bound is below it.  This is the paper's recommended use of the
  intervals: it avoids firing good workers who were merely unlucky.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.types import WorkerErrorEstimate

__all__ = [
    "Decision",
    "FiringPolicy",
    "PointEstimateFiringPolicy",
    "IntervalFiringPolicy",
]


class Decision(enum.Enum):
    """Outcome of a retention review for one worker."""

    FIRE = "fire"
    RETAIN = "retain"
    #: Only the interval policy distinguishes "cleared" (confidently good)
    #: from "retain" (not enough evidence either way).
    CLEARED = "cleared"


class FiringPolicy:
    """Interface: map a worker estimate to a retention decision."""

    def decide(self, estimate: WorkerErrorEstimate) -> Decision:
        """Return the decision for one worker."""
        raise NotImplementedError


@dataclass
class PointEstimateFiringPolicy(FiringPolicy):
    """Fire whenever the point estimate exceeds ``max_error_rate``."""

    max_error_rate: float = 0.25

    def __post_init__(self) -> None:
        if not (0.0 < self.max_error_rate < 1.0):
            raise ConfigurationError(
                f"max_error_rate must lie in (0, 1), got {self.max_error_rate}"
            )

    def decide(self, estimate: WorkerErrorEstimate) -> Decision:
        """Fire iff the interval centre exceeds the threshold."""
        if estimate.interval.mean > self.max_error_rate:
            return Decision.FIRE
        return Decision.RETAIN


@dataclass
class IntervalFiringPolicy(FiringPolicy):
    """Fire only when the interval proves the error rate is too high.

    A worker is fired when the interval's *lower* bound exceeds the threshold
    (we are confident they are bad), cleared when the *upper* bound is below
    it (we are confident they are good), and retained-for-more-evidence
    otherwise.
    """

    max_error_rate: float = 0.25

    def __post_init__(self) -> None:
        if not (0.0 < self.max_error_rate < 1.0):
            raise ConfigurationError(
                f"max_error_rate must lie in (0, 1), got {self.max_error_rate}"
            )

    def decide(self, estimate: WorkerErrorEstimate) -> Decision:
        """Decision from the interval bounds (see class docstring)."""
        if estimate.interval.lower > self.max_error_rate:
            return Decision.FIRE
        if estimate.interval.upper <= self.max_error_rate:
            return Decision.CLEARED
        return Decision.RETAIN
