"""Unit tests for the m-worker binary estimator (Algorithm A2, Lemma 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.m_worker import MWorkerEstimator, evaluate_all_workers, evaluate_worker
from repro.data.response_matrix import ResponseMatrix
from repro.exceptions import ConfigurationError, InsufficientDataError
from repro.simulation.binary import BinaryWorkerPopulation
from repro.simulation.density import per_worker_density_ramp
from repro.types import EstimateStatus


class TestConfiguration:
    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            MWorkerEstimator(confidence=0.0)
        with pytest.raises(ConfigurationError):
            MWorkerEstimator(confidence=1.0)

    def test_rejects_bad_min_overlap(self):
        with pytest.raises(ConfigurationError):
            MWorkerEstimator(min_overlap=0)

    def test_rejects_kary_data(self, simulated_kary):
        matrix, _ = simulated_kary
        with pytest.raises(ConfigurationError):
            MWorkerEstimator(confidence=0.9).evaluate_worker(matrix, 0)

    def test_rejects_too_few_workers(self):
        matrix = ResponseMatrix(2, 10)
        matrix.add_response(0, 0, 1)
        matrix.add_response(1, 0, 1)
        with pytest.raises(InsufficientDataError):
            MWorkerEstimator(confidence=0.9).evaluate_worker(matrix, 0)


class TestEvaluation:
    def test_one_estimate_per_worker(self, simulated_binary):
        matrix, _ = simulated_binary
        estimates = evaluate_all_workers(matrix, confidence=0.9)
        assert [e.worker for e in estimates] == list(range(matrix.n_workers))

    def test_interval_bounds_are_probabilities(self, simulated_binary):
        matrix, _ = simulated_binary
        for estimate in evaluate_all_workers(matrix, confidence=0.8):
            assert 0.0 <= estimate.interval.lower <= estimate.interval.upper <= 1.0

    def test_triple_count_for_m_workers(self, simulated_binary):
        matrix, _ = simulated_binary  # 5 workers -> 2 triples per evaluation
        estimate = evaluate_worker(matrix, 0, confidence=0.9)
        assert len(estimate.triples) == 2
        assert len(estimate.weights) == len(estimate.triples)

    def test_weights_sum_to_one(self, simulated_binary):
        matrix, _ = simulated_binary
        estimate = evaluate_worker(matrix, 2, confidence=0.9)
        assert sum(estimate.weights) == pytest.approx(1.0)

    def test_three_workers_single_triple(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.array([0.1, 0.2, 0.3]))
        matrix = population.generate(150, rng)
        estimate = evaluate_worker(matrix, 0, confidence=0.9)
        assert len(estimate.triples) == 1
        assert estimate.weights == (1.0,)

    def test_point_estimates_near_truth_on_large_data(self, rng):
        rates = np.array([0.1, 0.2, 0.3, 0.15, 0.25, 0.1, 0.2])
        population = BinaryWorkerPopulation(error_rates=rates)
        matrix = population.generate(3000, rng, densities=0.9)
        estimates = evaluate_all_workers(matrix, confidence=0.9)
        for estimate in estimates:
            assert estimate.interval.mean == pytest.approx(
                rates[estimate.worker], abs=0.05
            )

    def test_more_workers_tighter_intervals(self, rng):
        sizes = {}
        for n_workers in (3, 9):
            population = BinaryWorkerPopulation(error_rates=np.full(n_workers, 0.2))
            matrix = population.generate(200, rng)
            estimates = evaluate_all_workers(matrix, confidence=0.9)
            sizes[n_workers] = float(np.mean([e.interval.size for e in estimates]))
        assert sizes[9] < sizes[3]

    def test_optimized_weights_not_worse_than_uniform(self, rng):
        population = BinaryWorkerPopulation(error_rates=np.full(7, 0.2))
        densities = per_worker_density_ramp(7)
        matrix = population.generate(120, rng, densities=densities)
        optimized = evaluate_all_workers(matrix, confidence=0.8, optimize_weights=True)
        uniform = evaluate_all_workers(matrix, confidence=0.8, optimize_weights=False)
        mean_optimized = np.mean([e.interval.size for e in optimized])
        mean_uniform = np.mean([e.interval.size for e in uniform])
        assert mean_optimized <= mean_uniform * 1.05

    def test_random_pairing_strategy_runs(self, simulated_binary, rng):
        matrix, _ = simulated_binary
        estimator = MWorkerEstimator(confidence=0.9, pairing_strategy="random", rng=rng)
        estimates = estimator.evaluate_all(matrix)
        assert len(estimates) == matrix.n_workers

    def test_worker_with_no_usable_partners_is_degenerate(self):
        # Worker 0 shares tasks with nobody; the others overlap heavily.
        matrix = ResponseMatrix(4, 12)
        for task in range(0, 4):
            matrix.add_response(0, task, 0)
        for worker in (1, 2, 3):
            for task in range(4, 12):
                matrix.add_response(worker, task, task % 2)
        estimate = evaluate_worker(matrix, 0, confidence=0.9)
        assert estimate.status is EstimateStatus.DEGENERATE
        assert estimate.interval.lower == 0.0
        assert estimate.interval.upper == 1.0

    def test_status_propagates_clamping(self, rng):
        # A random-answering worker drags agreement rates towards 1/2.
        population = BinaryWorkerPopulation(error_rates=np.array([0.05, 0.05, 0.05, 0.499]))
        matrix = population.generate(80, rng)
        estimates = evaluate_all_workers(matrix, confidence=0.9)
        assert any(
            estimate.status in (EstimateStatus.CLAMPED, EstimateStatus.OK)
            for estimate in estimates
        )

    def test_coverage_reasonable_on_moderate_simulation(self, rng):
        """End-to-end statistical sanity: ~80% of 80%-intervals cover the truth."""
        hits = 0
        total = 0
        for _ in range(40):
            population = BinaryWorkerPopulation.from_paper_palette(5, rng)
            matrix = population.generate(120, rng, densities=0.8)
            estimates = evaluate_all_workers(matrix, confidence=0.8)
            for estimate in estimates:
                total += 1
                if estimate.interval.contains(population.error_rates[estimate.worker]):
                    hits += 1
        assert hits / total > 0.65
